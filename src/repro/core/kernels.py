"""Vectorized per-pass pagerank kernels shared by all engines.

Both the synchronous reference solver and the chaotic distributed
engine compute, once per pass, the quantity

    new(i) = (1 - d) + d * Σ_{j -> i} value(j) / outdeg(j)

over every in-link of every document (paper Eq. 1).  The kernels here
express that as two flat vectorized operations over precomputed
per-edge arrays: a gather (``value[src] * inv_outdeg[src]``) and a
scatter-add (``bincount`` by edge target).  No per-edge Python executes
per pass, which is what lets the engines run the paper's multi-million
node graphs.

:class:`EdgeWorkspace` holds the precomputed per-edge arrays plus the
reusable output buffers (allocated once, reused every pass — "be easy
on the memory" per the optimization guide).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graphs.linkgraph import LinkGraph

__all__ = ["EdgeWorkspace", "relative_change"]


@dataclass
class EdgeWorkspace:
    """Precomputed per-edge arrays + scratch buffers for pass kernels.

    Attributes
    ----------
    src:
        Source document of every edge (length E).
    dst:
        Target document of every edge (length E).
    inv_outdeg:
        ``1 / outdeg`` per *node* (0.0 for dangling nodes so a gather
        through it contributes nothing).
    edge_weight:
        ``inv_outdeg[src]`` per edge — the share of the source's rank
        this edge carries.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    inv_outdeg: np.ndarray
    edge_weight: np.ndarray
    _contrib: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def from_graph(cls, graph: LinkGraph) -> "EdgeWorkspace":
        """Build the workspace for ``graph`` (O(E) one-time setup)."""
        n = graph.num_nodes
        out_deg = graph.out_degrees()
        src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
        dst = graph.indices
        inv = np.zeros(n, dtype=np.float64)
        nz = out_deg > 0
        inv[nz] = 1.0 / out_deg[nz]
        ws = cls(
            num_nodes=n,
            src=src,
            dst=dst,
            inv_outdeg=inv,
            edge_weight=inv[src],
        )
        ws._contrib = np.empty(src.size, dtype=np.float64)
        return ws

    def pull(self, values: np.ndarray, damping: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One full pull pass: ``(1-d) + d * Σ_in values[src]/outdeg``.

        Parameters
        ----------
        values:
            Per-node values visible to receivers (current ranks for the
            synchronous solver; last-*sent* ranks for the chaotic one).
        damping:
            The damping factor ``d``.
        out:
            Optional preallocated length-N output buffer.

        Returns
        -------
        numpy.ndarray
            The new rank of every node.
        """
        np.multiply(values[self.src], self.edge_weight, out=self._contrib)
        acc = np.bincount(self.dst, weights=self._contrib, minlength=self.num_nodes)
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out

    def pull_edges(
        self,
        edge_values: np.ndarray,
        damping: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pull pass where each edge carries its own delivered value.

        Used by the churn-aware engine: ``edge_values[e]`` is the last
        value actually *delivered* along edge ``e`` (deliveries fail
        while the receiving peer is absent), so different out-edges of
        the same document may carry different vintages of its rank —
        exactly the store-and-resend behaviour of §3.1.
        """
        np.multiply(edge_values, self.edge_weight, out=self._contrib)
        acc = np.bincount(self.dst, weights=self._contrib, minlength=self.num_nodes)
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out


def relative_change(old: np.ndarray, new: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-document relative error ``|old - new| / new`` (paper Fig. 1).

    ``new`` is bounded below by ``(1 - d) > 0`` for every computed
    document, so the division is safe there; entries where ``new`` is 0
    (never-computed documents in edge cases) are reported as 0 change.
    """
    if out is None:
        out = np.empty_like(new)
    np.subtract(old, new, out=out)
    np.abs(out, out=out)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(out, new, out=out, where=new != 0)
    out[new == 0] = 0.0
    return out
