"""Vectorized per-pass pagerank kernels shared by all engines.

Both the synchronous reference solver and the chaotic distributed
engine compute, once per pass, the quantity

    new(i) = (1 - d) + d * Σ_{j -> i} value(j) / outdeg(j)

over every in-link of every document (paper Eq. 1).  Two kernel
backends implement that contract, selected by the ``REPRO_KERNEL``
environment variable (read once per workspace construction):

* ``csr`` (default) — :class:`CSRWorkspace`, a precomputed reverse-CSR
  (in-adjacency) layout of flat numpy ``indptr``/``indices``/``data``
  arrays (no scipy).  Besides the full pull it supports **selective
  row recomputation** (:meth:`CSRWorkspace.pull_rows`): only the rows
  whose in-edge inputs changed since the last pass are re-summed.  A
  row whose inputs are untouched would re-sum to bit-identical values,
  so skipping it cannot change any result — the speedup is mechanical,
  not semantic (the differential suite proves byte-identical ranks and
  pass counts against the naive backend on every seed).
* ``naive`` — :class:`EdgeWorkspace`, the original per-edge layout
  (full gather + scatter-add over every edge, every pass).  Kept as
  the reference the differential tests compare against; select it with
  ``REPRO_KERNEL=naive``.

Bit-identity rests on one numerical fact the test suite pins down:
``np.bincount`` accumulates its weights *sequentially* in array order,
so per-target sums come out identical whether the edges are walked in
forward (source-major) order or grouped per row of the reverse CSR —
within one target, both orders list in-edges by ascending source.
(``np.add.reduceat`` is *not* used: it sums pairwise, which rounds
differently.)

Workspaces hold precomputed arrays plus reusable output buffers
(allocated once, reused every pass — "be easy on the memory" per the
optimization guide).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from repro.graphs.linkgraph import LinkGraph

__all__ = [
    "EdgeWorkspace",
    "CSRWorkspace",
    "ShardCSRView",
    "Workspace",
    "kernel_backend",
    "make_workspace",
    "expand_rows",
    "relative_change",
]

#: Environment variable selecting the kernel backend (``csr``/``naive``).
_KERNEL_ENV = "REPRO_KERNEL"


def kernel_backend() -> str:
    """The kernel backend selected by ``REPRO_KERNEL`` (default ``csr``).

    Read at every workspace construction, so tests can flip the
    environment between engine instantiations.  Unknown values raise
    immediately rather than silently running the wrong kernel.
    """
    backend = os.environ.get(_KERNEL_ENV, "csr").strip().lower()
    if backend not in ("csr", "naive"):
        raise ValueError(
            f"{_KERNEL_ENV} must be 'csr' or 'naive', got {backend!r}"
        )
    return backend


def expand_rows(
    indptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat positions of every CSR entry of ``rows``, plus row lengths.

    Returns ``(pos, lens)`` where ``pos`` indexes the CSR data/indices
    arrays and ``lens[k]`` is the entry count of ``rows[k]``; entries of
    one row are contiguous in ``pos`` and keep their CSR order.  Pure
    vectorized index arithmetic, O(total entries) — shared by the
    selective pull kernel, the engines' frontier expansion, and the
    incremental-update propagation.
    """
    starts = indptr[rows]
    lens = indptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lens
    cum = np.cumsum(lens)
    pos = np.repeat(starts, lens) + np.arange(total, dtype=np.int64)
    pos -= np.repeat(cum - lens, lens)
    return pos, lens


@dataclass
class EdgeWorkspace:
    """Per-edge arrays + scratch buffers (the ``naive`` kernel backend).

    Attributes
    ----------
    src:
        Source document of every edge (length E).
    dst:
        Target document of every edge (length E).
    inv_outdeg:
        ``1 / outdeg`` per *node* (0.0 for dangling nodes so a gather
        through it contributes nothing).
    edge_weight:
        ``inv_outdeg[src]`` per edge — the share of the source's rank
        this edge carries.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    inv_outdeg: np.ndarray
    edge_weight: np.ndarray
    _contrib: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def from_graph(cls, graph: LinkGraph) -> "EdgeWorkspace":
        """Build the workspace for ``graph`` (O(E) one-time setup)."""
        n = graph.num_nodes
        out_deg = graph.out_degrees()
        src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
        dst = graph.indices
        inv = np.zeros(n, dtype=np.float64)
        nz = out_deg > 0
        inv[nz] = 1.0 / out_deg[nz]
        ws = cls(
            num_nodes=n,
            src=src,
            dst=dst,
            inv_outdeg=inv,
            edge_weight=inv[src],
        )
        ws._contrib = np.empty(src.size, dtype=np.float64)
        return ws

    def pull(self, values: np.ndarray, damping: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One full pull pass: ``(1-d) + d * Σ_in values[src]/outdeg``.

        Parameters
        ----------
        values:
            Per-node values visible to receivers (current ranks for the
            synchronous solver; last-*sent* ranks for the chaotic one).
        damping:
            The damping factor ``d``.
        out:
            Optional preallocated length-N output buffer.

        Returns
        -------
        numpy.ndarray
            The new rank of every node.
        """
        np.multiply(values[self.src], self.edge_weight, out=self._contrib)
        acc = np.bincount(self.dst, weights=self._contrib, minlength=self.num_nodes)
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out

    def pull_edges(
        self,
        edge_values: np.ndarray,
        damping: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pull pass where each edge carries its own delivered value.

        Used by the churn-aware engine: ``edge_values[e]`` is the last
        value actually *delivered* along edge ``e`` (deliveries fail
        while the receiving peer is absent), so different out-edges of
        the same document may carry different vintages of its rank —
        exactly the store-and-resend behaviour of §3.1.
        """
        np.multiply(edge_values, self.edge_weight, out=self._contrib)
        acc = np.bincount(self.dst, weights=self._contrib, minlength=self.num_nodes)
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out


@dataclass
class CSRWorkspace:
    """Reverse-CSR pull kernel with selective row recomputation.

    The layout is three flat numpy arrays (no scipy): ``rindptr`` of
    length ``N + 1``, ``rindices`` listing the *source* document of
    every in-edge grouped by target, and ``rdata`` carrying the edge
    weight ``1/outdeg(source)``.  Within one target the sources appear
    in ascending order — the same per-target order ``np.bincount``
    accumulates the forward (source-major) edge walk in, which is what
    makes every kernel here bit-identical to :class:`EdgeWorkspace`.

    The forward per-edge arrays (``src``/``dst``/``edge_weight``) are
    kept too: the churn engine's §3.1 per-edge delivered-value state
    and the frontier expansion of the selective path both need them.

    Attributes
    ----------
    rindptr:
        In-adjacency row pointers (length N + 1).
    rindices:
        In-edge source document per reverse-CSR entry (length E).
    rdata:
        ``inv_outdeg[rindices]`` — the weight of each in-edge.
    """

    num_nodes: int
    src: np.ndarray
    dst: np.ndarray
    inv_outdeg: np.ndarray
    edge_weight: np.ndarray
    rindptr: np.ndarray
    rindices: np.ndarray
    rdata: np.ndarray
    _contrib: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    _rev_rowids: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def from_graph(cls, graph: LinkGraph) -> "CSRWorkspace":
        """Build forward + reverse layouts for ``graph`` (O(E) setup)."""
        n = graph.num_nodes
        out_deg = graph.out_degrees()
        src = np.repeat(np.arange(n, dtype=np.int64), out_deg)
        dst = graph.indices
        inv = np.zeros(n, dtype=np.float64)
        nz = out_deg > 0
        inv[nz] = 1.0 / out_deg[nz]
        edge_weight = inv[src]
        # Reverse CSR: stable sort of the forward edge list by target
        # keeps, within each target, the ascending-source order the
        # forward bincount accumulates in.
        order = np.argsort(dst, kind="stable")
        rindices = src[order]
        rdata = edge_weight[order]
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dst, minlength=n), out=rindptr[1:])
        ws = cls(
            num_nodes=n,
            src=src,
            dst=dst,
            inv_outdeg=inv,
            edge_weight=edge_weight,
            rindptr=rindptr,
            rindices=rindices,
            rdata=rdata,
        )
        ws._contrib = np.empty(src.size, dtype=np.float64)
        ws._rev_rowids = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(rindptr)
        )
        return ws

    # ------------------------------------------------------------------
    def pull(self, values: np.ndarray, damping: float, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One full pull pass over the reverse layout.

        Bit-identical to :meth:`EdgeWorkspace.pull`: the per-target
        accumulation order (ascending source) and the scalar epilogue
        (multiply by ``d``, add ``1 - d``) are the same.
        """
        np.multiply(values[self.rindices], self.rdata, out=self._contrib)
        acc = np.bincount(
            self._rev_rowids, weights=self._contrib, minlength=self.num_nodes
        )
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out

    def pull_rows(
        self, values: np.ndarray, damping: float, rows: np.ndarray
    ) -> np.ndarray:
        """Selective pull: recompute only ``rows`` (sorted node ids).

        Returns the new rank of each requested row, bit-identical to
        what a full pull would produce there: each row's in-edges are
        walked in the same ascending-source order and summed by the
        same sequential ``bincount``.
        """
        pos, lens = expand_rows(self.rindptr, rows)
        k = rows.size
        if pos.size == 0:
            return np.full(k, 1.0 - damping, dtype=np.float64)
        contrib = values[self.rindices[pos]]
        contrib *= self.rdata[pos]
        local = np.repeat(np.arange(k, dtype=np.int64), lens)
        acc = np.bincount(local, weights=contrib, minlength=k)
        np.multiply(acc, damping, out=acc)
        acc += 1.0 - damping
        return acc

    def out_neighbors_mask(
        self, rows: np.ndarray, indptr: np.ndarray, indices: np.ndarray,
        out: np.ndarray,
    ) -> np.ndarray:
        """Mark (in ``out``, a length-N bool buffer) every out-link
        target of ``rows`` — the frontier whose inputs just changed."""
        out[:] = False
        pos, _ = expand_rows(indptr, rows)
        if pos.size:
            out[indices[pos]] = True
        return out

    def pull_edges(
        self,
        edge_values: np.ndarray,
        damping: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pull pass where each edge carries its own delivered value
        (§3.1 churn state; see :meth:`EdgeWorkspace.pull_edges`).

        Operates on the forward per-edge arrays, so it is the very same
        computation as the naive backend's.
        """
        np.multiply(edge_values, self.edge_weight, out=self._contrib)
        acc = np.bincount(self.dst, weights=self._contrib, minlength=self.num_nodes)
        if out is None:
            out = np.empty(self.num_nodes, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out


@dataclass
class ShardCSRView:
    """Read-only sub-CSR over a fixed row subset of a :class:`CSRWorkspace`.

    The multi-process sharded engine (:mod:`repro.parallel`) gives each
    worker shard a slice of the reverse CSR covering only its own rows;
    source indices stay *global* so a shard pulls straight out of the
    shared last-sent array without any id translation.  Because every
    row keeps its complete in-edge list in the original ascending-source
    order and the accumulation is the same sequential ``np.bincount``,
    the values a shard computes for its rows are bit-identical to what
    a full :meth:`CSRWorkspace.pull` over the whole graph would put
    there — the partition cannot change any result, only who computes
    it (the differential suite pins this down per seed).

    Attributes
    ----------
    rows:
        Global ids of the rows this view covers (sorted ascending).
    rindptr:
        Local in-adjacency row pointers (length ``rows.size + 1``).
    rindices:
        Global source id per in-edge of the covered rows.
    rdata:
        ``1/outdeg(source)`` weight per in-edge.
    """

    num_nodes: int
    rows: np.ndarray
    rindptr: np.ndarray
    rindices: np.ndarray
    rdata: np.ndarray
    _contrib: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    _rowids: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def from_workspace(
        cls, ws: CSRWorkspace, rows: np.ndarray
    ) -> "ShardCSRView":
        """Slice the reverse CSR of ``ws`` down to ``rows`` (O(shard
        edges) one-time setup; ``rows`` must be sorted and unique)."""
        rows = np.asarray(rows, dtype=np.int64)
        pos, lens = expand_rows(ws.rindptr, rows)
        rindptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lens, out=rindptr[1:])
        view = cls(
            num_nodes=ws.num_nodes,
            rows=rows,
            rindptr=rindptr,
            rindices=ws.rindices[pos].copy(),
            rdata=ws.rdata[pos].copy(),
        )
        view._contrib = np.empty(pos.size, dtype=np.float64)
        view._rowids = np.repeat(np.arange(rows.size, dtype=np.int64), lens)
        return view

    @property
    def num_rows(self) -> int:
        """Rows covered by this view."""
        return int(self.rows.size)

    @property
    def num_edges(self) -> int:
        """In-edges of the covered rows."""
        return int(self.rindices.size)

    def row_edges(self, local_rows: np.ndarray) -> int:
        """Total in-edge count of the given *local* row indices."""
        return int(
            (self.rindptr[local_rows + 1] - self.rindptr[local_rows]).sum()
        )

    def pull(
        self,
        values: np.ndarray,
        damping: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Recompute every covered row from the global ``values`` array.

        Returns a length-``num_rows`` array aligned with :attr:`rows`,
        bit-identical to the same rows of a full-graph pull.
        """
        np.multiply(values[self.rindices], self.rdata, out=self._contrib)
        acc = np.bincount(
            self._rowids, weights=self._contrib, minlength=self.rows.size
        )
        if out is None:
            out = np.empty(self.rows.size, dtype=np.float64)
        np.multiply(acc, damping, out=out)
        out += 1.0 - damping
        return out

    def pull_rows(
        self, values: np.ndarray, damping: float, local_rows: np.ndarray
    ) -> np.ndarray:
        """Selective pull of the given *local* row indices (sorted).

        The shard-local twin of :meth:`CSRWorkspace.pull_rows`: same
        expansion, same sequential ``bincount``, so the returned values
        are bit-identical to a full pull's at ``rows[local_rows]``.
        """
        pos, lens = expand_rows(self.rindptr, local_rows)
        k = local_rows.size
        if pos.size == 0:
            return np.full(k, 1.0 - damping, dtype=np.float64)
        contrib = values[self.rindices[pos]]
        contrib *= self.rdata[pos]
        local = np.repeat(np.arange(k, dtype=np.int64), lens)
        acc = np.bincount(local, weights=contrib, minlength=k)
        np.multiply(acc, damping, out=acc)
        acc += 1.0 - damping
        return acc


#: Either kernel backend; engines accept both interchangeably.
Workspace = Union[CSRWorkspace, EdgeWorkspace]


def make_workspace(graph: LinkGraph) -> Workspace:
    """Build the pass-kernel workspace for ``graph`` under the backend
    selected by ``REPRO_KERNEL`` (see :func:`kernel_backend`)."""
    if kernel_backend() == "naive":
        return EdgeWorkspace.from_graph(graph)
    return CSRWorkspace.from_graph(graph)


def relative_change(old: np.ndarray, new: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-document relative error ``|old - new| / new`` (paper Fig. 1).

    ``new`` is bounded below by ``(1 - d) > 0`` for every computed
    document, so the division is safe there; entries where ``new`` is 0
    (never-computed documents in edge cases) are reported as 0 change.
    """
    if out is None:
        out = np.empty_like(new)
    np.subtract(old, new, out=out)
    np.abs(out, out=out)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(out, new, out=out, where=new != 0)
    out[new == 0] = 0.0
    return out
