"""Personalized / topic-sensitive pagerank (paper §7 lineage).

The paper cites Haveliwala's topic-sensitive pagerank [12] and
Jeh & Widom's personalized search [13] as the related centralized
work.  Both replace the uniform teleport with a preference vector:

    R = d·Aᵀ D⁻¹ R + (1-d)·N·v,    Σv = 1

so rank mass re-enters the graph at preferred documents (a topic's
seed set, a user's bookmarks) instead of uniformly.  This module
provides the preference-vector variants of both solvers:

* :func:`personalized_reference` — synchronous solve with teleport
  vector ``v`` (the uniform ``v = 1/N`` reproduces
  :func:`repro.core.pagerank.pagerank_reference` exactly);
* :func:`personalized_chaotic` — the same distributed chaotic engine
  semantics with a per-document teleport term, showing the paper's
  scheme extends unchanged to topic-sensitive ranking: the teleport
  term is local state, so no extra messages are needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.convergence import ConvergenceTracker, PassStats, RunReport
from repro.core.kernels import make_workspace, relative_change
from repro.core.pagerank import DEFAULT_DAMPING, PagerankResult
from repro.graphs.linkgraph import LinkGraph

__all__ = ["personalized_reference", "personalized_chaotic", "topic_vector"]


def topic_vector(num_docs: int, topic_docs, *, weight: float = 1.0) -> np.ndarray:
    """Build a teleport preference vector concentrated on a seed set.

    ``weight`` of the teleport mass is spread uniformly over
    ``topic_docs``; the remainder uniformly over all documents (Haveliwala
    uses weight 1.0; fractional weights blend topic and global rank).
    """
    if num_docs < 1:
        raise ValueError(f"num_docs must be >= 1, got {num_docs}")
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0, 1], got {weight}")
    topic = np.asarray(list(topic_docs), dtype=np.int64)
    if topic.size == 0:
        raise ValueError("topic_docs must be non-empty")
    if topic.min() < 0 or topic.max() >= num_docs:
        raise ValueError("topic_docs out of range")
    v = np.full(num_docs, (1.0 - weight) / num_docs, dtype=np.float64)
    v[topic] += weight / topic.size
    return v


def _validate_preference(v: np.ndarray, n: int) -> np.ndarray:
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (n,):
        raise ValueError(f"preference vector must have shape ({n},), got {v.shape}")
    if np.any(v < 0):
        raise ValueError("preference vector must be non-negative")
    total = v.sum()
    if total <= 0:
        raise ValueError("preference vector must have positive mass")
    return v / total


def personalized_reference(
    graph: LinkGraph,
    preference: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
) -> PagerankResult:
    """Synchronous personalized pagerank with teleport vector ``v``.

    Uses the paper's unnormalized scale: the teleport term is
    ``(1-d)·N·v`` so the uniform ``v`` gives the familiar per-document
    floor of ``1-d`` and ranks comparable to the global solver's.
    """
    check_threshold("damping", damping)
    check_positive("tol", tol)
    n = graph.num_nodes
    if n == 0:
        return PagerankResult(np.zeros(0), 0, True, 0.0)
    v = _validate_preference(preference, n)
    teleport = (1.0 - damping) * n * v

    ws = make_workspace(graph)
    rank = np.full(n, 1.0)
    new = np.empty_like(rank)
    err = np.empty_like(rank)
    residual = np.inf
    for iterations in range(1, max_iter + 1):
        ws.pull(rank, damping, out=new)
        # replace the uniform (1-d) the kernel added with the teleport
        new += teleport - (1.0 - damping)
        relative_change(rank, new, out=err)
        residual = float(err.max())
        rank, new = new, rank
        if residual < tol:
            return PagerankResult(rank.copy(), iterations, True, residual)
    return PagerankResult(rank.copy(), iterations, False, residual)


def personalized_chaotic(
    graph: LinkGraph,
    preference: np.ndarray,
    assignment: Optional[np.ndarray] = None,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-4,
    max_passes: int = 100_000,
    keep_history: bool = True,
) -> RunReport:
    """Distributed chaotic personalized pagerank.

    Identical message protocol to :class:`~repro.core.distributed.
    ChaoticPagerank` — the teleport term is purely local to each
    document's owner, which is the point: topic-sensitive ranking costs
    the P2P system nothing extra in communication.
    """
    check_threshold("damping", damping)
    check_threshold("epsilon", epsilon)
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    n = graph.num_nodes
    tracker = ConvergenceTracker(epsilon, keep_history=keep_history)
    if n == 0:
        return tracker.finish(np.zeros(0), True)
    v = _validate_preference(preference, n)
    teleport = (1.0 - damping) * n * v

    if assignment is None:
        assignment = np.arange(n, dtype=np.int64)
    else:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (n,):
            raise ValueError(f"assignment must have shape ({n},)")

    ws = make_workspace(graph)
    src = ws.src
    cross = assignment[src] != assignment[ws.dst]
    remote_outdeg = np.bincount(src[cross], minlength=n).astype(np.int64)
    num_peers = int(assignment.max()) + 1 if n else 0

    rank = np.full(n, 1.0)
    last_sent = rank.copy()
    new = np.empty_like(rank)
    err = np.empty_like(rank)

    converged = False
    for t in range(max_passes):
        ws.pull(last_sent, damping, out=new)
        new += teleport - (1.0 - damping)
        relative_change(rank, new, out=err)
        active = err > epsilon
        messages = int(remote_outdeg[active].sum())
        last_sent[active] = new[active]
        rank, new = new, rank
        tracker.record(
            PassStats(
                pass_index=t,
                max_rel_change=float(err.max()),
                active_documents=int(active.sum()),
                messages=messages,
                deferred_messages=0,
                live_peers=num_peers,
                computed_documents=n,
            )
        )
        if not active.any():
            converged = True
            break
    return tracker.finish(rank.copy(), converged)
