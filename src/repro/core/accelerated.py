"""Extrapolation-accelerated centralized pagerank (paper §7 comparators).

The paper's related-work section claims, "on the basis of our limited
results, that the asynchronous iteration may converge more rapidly than
the acceleration methods studied in [14]" — Kamvar et al.'s
extrapolation methods for accelerating pagerank.  To make that claim
testable, this module implements two standard accelerations of the
synchronous solver:

* **Aitken Δ² extrapolation** — per-component quadratic convergence
  boost applied periodically to the iterate sequence;
* **Kamvar-style quadratic extrapolation** — estimates the second
  eigenvector's contamination from three successive iterates and
  subtracts it (the simplified power-series form of [14]).

Both are *centralized* algorithms: they need synchronized access to
whole iterate vectors, which is exactly why the paper's distributed
setting cannot use them — the ablation benchmark quantifies what that
synchronisation buys and costs versus the chaotic scheme.

Measured result (``benchmarks/test_ablation_acceleration.py``): on the
§4.1 power-law graphs these extrapolations do **not** reduce sweep
counts — the iteration error carries several eigenmodes of magnitude
near the damping factor with complex phases, which single-real-mode
extrapolants overcorrect.  That observation lines up with the paper's
§7 remark that its asynchronous iteration "may converge more rapidly
than the acceleration methods studied in [14]"; both implementations
are kept as the honest comparators behind that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.kernels import make_workspace, relative_change
from repro.core.pagerank import DEFAULT_DAMPING, PagerankResult
from repro.graphs.linkgraph import LinkGraph

__all__ = ["aitken_pagerank", "quadratic_extrapolation_pagerank"]


def aitken_pagerank(
    graph: LinkGraph,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    extrapolate_every: int = 10,
    init_rank: float = 1.0,
) -> PagerankResult:
    """Power iteration with periodic per-component Aitken Δ².

    Every ``extrapolate_every`` sweeps, three consecutive iterates
    x⁰, x¹, x² are combined as

        x* = x² − (Δx¹)² / Δ²x⁰     (component-wise, guarded)

    which cancels the dominant geometric error mode.  Components whose
    second difference is numerically zero are left at x².
    """
    check_threshold("damping", damping)
    check_positive("tol", tol)
    if extrapolate_every < 3:
        raise ValueError(
            f"extrapolate_every must be >= 3, got {extrapolate_every}"
        )
    n = graph.num_nodes
    if n == 0:
        return PagerankResult(np.zeros(0), 0, True, 0.0)
    ws = make_workspace(graph)

    x = np.full(n, float(init_rank))
    prev1 = x.copy()
    prev2 = x.copy()
    err = np.empty_like(x)

    iterations = 0
    residual = np.inf
    for iterations in range(1, max_iter + 1):
        new = ws.pull(x, damping)
        relative_change(x, new, out=err)
        residual = float(err.max())
        prev2, prev1 = prev1, x
        x = new
        if residual < tol:
            return PagerankResult(x.copy(), iterations, True, residual)
        if iterations % extrapolate_every == 0 and iterations >= 3:
            d1 = prev1 - prev2
            d2 = x - prev1
            denom = d2 - d1
            safe = np.abs(denom) > 1e-300
            accel = x.copy()
            accel[safe] = x[safe] - d2[safe] ** 2 / denom[safe]
            # Guard: extrapolation can overshoot below the (1-d) floor,
            # which is impossible for the true solution.
            floor = 1.0 - damping
            accel = np.maximum(accel, floor)
            x = accel
    return PagerankResult(x.copy(), iterations, False, residual)


def quadratic_extrapolation_pagerank(
    graph: LinkGraph,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    extrapolate_every: int = 20,
    init_rank: float = 1.0,
) -> PagerankResult:
    """Kamvar-style quadratic extrapolation (simplified [14]).

    Models the iterate as the fixed point plus contamination from the
    two subdominant eigenvectors; solves a tiny least-squares problem
    on three successive differences to cancel them.  Falls back to the
    plain iterate whenever the local problem is degenerate.
    """
    check_threshold("damping", damping)
    check_positive("tol", tol)
    if extrapolate_every < 4:
        raise ValueError(
            f"extrapolate_every must be >= 4, got {extrapolate_every}"
        )
    n = graph.num_nodes
    if n == 0:
        return PagerankResult(np.zeros(0), 0, True, 0.0)
    ws = make_workspace(graph)

    history = []
    x = np.full(n, float(init_rank))
    err = np.empty_like(x)

    iterations = 0
    residual = np.inf
    for iterations in range(1, max_iter + 1):
        new = ws.pull(x, damping)
        relative_change(x, new, out=err)
        residual = float(err.max())
        history.append(new.copy())
        if len(history) > 4:
            history.pop(0)
        x = new
        if residual < tol:
            return PagerankResult(x.copy(), iterations, True, residual)
        if iterations % extrapolate_every == 0 and len(history) == 4:
            x_k3, x_k2, x_k1, x_k = history
            y1 = x_k2 - x_k3
            y2 = x_k1 - x_k3
            y3 = x_k - x_k3
            # Solve  [y1 y2] [g1 g2]^T ~= -y3  in least squares; the
            # extrapolated point is a combination cancelling the two
            # slowest modes (Kamvar et al., eq. simplified).
            basis = np.column_stack([y1, y2])
            coef, *_ = np.linalg.lstsq(basis, -y3, rcond=None)
            g1, g2 = float(coef[0]), float(coef[1])
            denom = 1.0 + g1 + g2
            if abs(denom) > 1e-8:
                accel = (x_k + g2 * x_k1 + g1 * x_k2) / denom
                floor = 1.0 - damping
                if np.all(np.isfinite(accel)):
                    x = np.maximum(accel, floor)
                    history.clear()
    return PagerankResult(x.copy(), iterations, False, residual)
