"""General chaotic (asynchronous) iterative linear solver.

The paper's §6 proposes investigating "the effectiveness of distributed
asynchronous linear solutions executing on P2P systems in other problem
domains, where the generation of the elements of the matrices can be,
or are, distributed across a network".  Pagerank is one instance of the
fixed-point problem

    x = M x + c

with ``spectral_radius(|M|) < 1`` (for pagerank, ``M = d·Aᵀ D⁻¹`` and
``c = (1-d)·1``).  This module implements that general problem under
the same distributed execution model as the pagerank engine:

* unknowns are assigned to peers (``assignment``);
* each pass, every unknown recomputes from the values its in-links
  last *announced*;
* an unknown whose relative change falls below ε stops announcing —
  the chaotic stop-sending rule, with the same message accounting.

Chazan & Miranker (1969, the paper's ref. [5]) prove such iterations
converge whenever ``rho(|M|) < 1`` for any bounded-delay interleaving;
the property-based tests draw random contraction systems and check
exactly that, with the synchronous solve (``scipy``) as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix, issparse

from repro._util import check_threshold
from repro.core.convergence import ConvergenceTracker, PassStats, RunReport

__all__ = ["ChaoticLinearSolver", "LinearSystem"]


@dataclass(frozen=True)
class LinearSystem:
    """A fixed-point system ``x = M x + c``.

    Attributes
    ----------
    matrix:
        Sparse ``(n, n)`` iteration matrix ``M``.  Convergence of the
        chaotic iteration requires ``rho(|M|) < 1`` (sufficient:
        any induced norm of ``|M|`` below 1, e.g. max absolute row sum).
    constant:
        The affine term ``c`` (length n).
    """

    matrix: csr_matrix
    constant: np.ndarray

    def __post_init__(self) -> None:
        m = self.matrix
        if not issparse(m):
            raise TypeError("matrix must be a scipy sparse matrix")
        if m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got {m.shape}")
        c = np.asarray(self.constant, dtype=np.float64)
        if c.shape != (m.shape[0],):
            raise ValueError(
                f"constant must have shape ({m.shape[0]},), got {c.shape}"
            )
        object.__setattr__(self, "matrix", m.tocsr())
        object.__setattr__(self, "constant", c)

    @property
    def size(self) -> int:
        return self.matrix.shape[0]

    def contraction_bound(self) -> float:
        """Max absolute row sum of ``M`` — an upper bound on the
        sup-norm contraction factor (safe when < 1)."""
        return float(np.abs(self.matrix).sum(axis=1).max()) if self.size else 0.0

    def synchronous_solve(self, *, tol: float = 1e-13, max_iter: int = 100_000) -> np.ndarray:
        """Reference fixed point by plain synchronous iteration."""
        x = self.constant.copy()
        for _ in range(max_iter):
            new = self.matrix @ x + self.constant
            if np.max(np.abs(new - x)) < tol:
                return new
            x = new
        return x


class ChaoticLinearSolver:
    """Distributed chaotic iteration for ``x = M x + c`` (paper §6).

    Parameters
    ----------
    system:
        The fixed-point system.
    assignment:
        Unknown → peer mapping (``None``: each unknown its own peer).
    epsilon:
        Stop-announcing threshold on the relative change of an unknown.

    Notes
    -----
    Exactly the pagerank engine's semantics, generalised: receivers
    compute from last-announced values; announcements (and the network
    messages they imply for cross-peer dependents) stop below ε.  The
    pagerank engine remains a separate, specialised implementation
    because its kernels exploit the uniform ``1/outdeg`` edge weights;
    the cross-check test confirms the two agree on pagerank systems.
    """

    def __init__(
        self,
        system: LinearSystem,
        assignment: Optional[np.ndarray] = None,
        *,
        epsilon: float = 1e-6,
    ) -> None:
        check_threshold("epsilon", epsilon)
        self.system = system
        self.epsilon = float(epsilon)
        n = system.size
        if assignment is None:
            assignment = np.arange(n, dtype=np.int64)
        else:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != (n,):
                raise ValueError(f"assignment must have shape ({n},)")
        self.assignment = assignment
        # remote_dependents[j] = number of unknowns on *other* peers
        # that read x_j — the messages one announcement of j costs.
        m = system.matrix.tocoo()
        cross = assignment[m.row] != assignment[m.col]
        self._remote_dependents = np.bincount(
            m.col[cross], minlength=n
        ).astype(np.int64)

    def run(self, *, max_passes: int = 100_000, keep_history: bool = True) -> RunReport:
        """Iterate to the strong convergence criterion.

        Returns a :class:`~repro.core.convergence.RunReport`; ``ranks``
        holds the solution vector.
        """
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        sys_ = self.system
        n = sys_.size
        tracker = ConvergenceTracker(self.epsilon, keep_history=keep_history)
        if n == 0:
            return tracker.finish(np.zeros(0), True)

        x = sys_.constant.copy()
        announced = x.copy()
        num_peers = int(self.assignment.max()) + 1 if n else 0

        converged = False
        for t in range(max_passes):
            new = sys_.matrix @ announced + sys_.constant
            denom = np.where(new != 0, np.abs(new), 1.0)
            rel = np.abs(x - new) / denom
            rel[(new == 0) & (x == 0)] = 0.0
            active = rel > self.epsilon
            messages = int(self._remote_dependents[active].sum())
            announced[active] = new[active]
            x = new
            tracker.record(
                PassStats(
                    pass_index=t,
                    max_rel_change=float(rel.max()),
                    active_documents=int(active.sum()),
                    messages=messages,
                    deferred_messages=0,
                    live_peers=num_peers,
                    computed_documents=n,
                )
            )
            if not active.any():
                converged = True
                break
        return tracker.finish(x.copy(), converged)
