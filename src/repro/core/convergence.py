"""Per-pass convergence bookkeeping for the distributed engines.

The paper reports several quantities per run — passes to convergence
(Table 1), message totals (Table 3), and error-versus-reference
distributions (Table 2).  :class:`ConvergenceTracker` accumulates the
per-pass series once so every experiment reads from the same record,
and :class:`PassStats`/:class:`RunReport` are the frozen result types
the engines hand back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["PassStats", "RunReport", "ConvergenceTracker"]


@dataclass(frozen=True)
class PassStats:
    """Statistics of a single simulation pass.

    Attributes
    ----------
    pass_index:
        0-based pass number.
    max_rel_change:
        Maximum per-document relative change among documents that
        recomputed this pass (the paper's convergence measure).
    active_documents:
        Documents whose change exceeded ε and therefore sent updates.
    messages:
        Network (cross-peer) update messages generated this pass,
        including store-and-resend deliveries.
    deferred_messages:
        Updates that could not be delivered because the receiving peer
        was absent (stored at the sender per §3.1).
    live_peers:
        Number of peers present during the pass.
    computed_documents:
        Documents that recomputed (i.e. reside on live peers).
    """

    pass_index: int
    max_rel_change: float
    active_documents: int
    messages: int
    deferred_messages: int
    live_peers: int
    computed_documents: int


@dataclass(frozen=True)
class RunReport:
    """Aggregate outcome of a distributed pagerank run.

    Attributes
    ----------
    ranks:
        Final per-document ranks (``R_d`` in the paper's notation).
    passes:
        Passes executed until convergence (or budget exhaustion).
    converged:
        True if the strong criterion held: a pass in which every
        computed document changed by less than ε and no stored updates
        remained undelivered.
    total_messages:
        Total cross-peer update messages over the whole run.
    history:
        Per-pass statistics (empty if tracking was disabled).
    epsilon:
        The convergence threshold the run used.
    diagnostics:
        ``None`` for a normal run.  When a faulted run is aborted by
        the residual-stagnation detector this carries the
        :class:`repro.faults.FaultDiagnostics` report (black-holed
        links, undelivered update mass) explaining *why* convergence
        was unreachable.
    """

    ranks: np.ndarray
    passes: int
    converged: bool
    total_messages: int
    history: tuple
    epsilon: float
    diagnostics: Optional[object] = None

    @property
    def messages_per_document(self) -> float:
        """Average update messages per document (Table 3's per-node
        metric, which the paper uses as its size-independent measure)."""
        n = self.ranks.size
        return self.total_messages / n if n else 0.0

    def messages_by_pass(self) -> np.ndarray:
        """Per-pass message counts as an array (empty if untracked)."""
        return np.array([p.messages for p in self.history], dtype=np.int64)

    def max_change_by_pass(self) -> np.ndarray:
        """Per-pass max relative change (empty if untracked)."""
        return np.array([p.max_rel_change for p in self.history], dtype=np.float64)

    def bytes_by_pass(self, *, message_size_bytes: int = 24) -> np.ndarray:
        """Per-pass network bytes under the paper's 24-byte message
        accounting (empty if untracked) — the bandwidth-over-time
        series the §4.6.1 transfer model consumes."""
        return self.messages_by_pass() * int(message_size_bytes)


class ConvergenceTracker:
    """Mutable accumulator the engines feed one :class:`PassStats` per
    pass; converts to the immutable :class:`RunReport` at the end.

    Parameters
    ----------
    epsilon:
        Convergence threshold, recorded in the report.
    keep_history:
        When false, only totals are kept (saves memory on
        multi-thousand-pass full-scale runs).
    """

    def __init__(self, epsilon: float, *, keep_history: bool = True) -> None:
        self.epsilon = float(epsilon)
        self.keep_history = keep_history
        self.total_messages = 0
        self.passes = 0
        self._history: List[PassStats] = []

    def record(self, stats: PassStats) -> None:
        """Add one pass's statistics."""
        self.passes += 1
        self.total_messages += stats.messages
        if self.keep_history:
            self._history.append(stats)

    def finish(
        self, ranks: np.ndarray, converged: bool, diagnostics=None
    ) -> RunReport:
        """Freeze into a :class:`RunReport`."""
        return RunReport(
            ranks=ranks,
            passes=self.passes,
            converged=converged,
            total_messages=self.total_messages,
            history=tuple(self._history),
            epsilon=self.epsilon,
            diagnostics=diagnostics,
        )
