"""Chaotic (asynchronous-iteration) distributed PageRank engine.

This is the paper's primary contribution (§2.3, Figure 1) under the
simulation methodology of §4.2: all peers recompute concurrently in
passes; update messages are delivered instantaneously between passes;
a document whose relative rank change drops below the threshold ε
**stops sending updates**, so its downstream consumers keep using the
last value it actually sent.  That last rule is what distinguishes the
scheme from plain Jacobi iteration — it is the source of both the
message savings (Table 3) and the residual error versus the
synchronous solution (Table 2).

Two execution paths share the same semantics:

* **fast path** (no churn): per-node ``last_sent`` state, two
  vectorized kernel calls per pass.  This is what runs the paper's
  5,000,000-node graph.
* **churn path** (peer availability given): per-*edge* delivered-value
  state, because §3.1's store-and-resend means different out-edges of
  one document can hold different vintages of its rank while receiving
  peers are absent.

Document-to-peer placement is an integer array ``assignment`` mapping
each document to its peer; only cross-peer deliveries count as network
messages (intra-peer updates are free, §2.3 step 2).  When no
assignment is given, every document is treated as living on its own
peer, making every link a network link (the conservative default).

The object-message-level twin of this engine — real peers, Chord
lookups, message objects — lives in :mod:`repro.simulation.engine`;
integration tests assert both produce identical ranks and message
counts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.convergence import ConvergenceTracker, PassStats, RunReport
from repro.core.kernels import (
    CSRWorkspace,
    Workspace,
    expand_rows,
    make_workspace,
    relative_change,
)
from repro.core.pagerank import DEFAULT_DAMPING
from repro.faults.plan import FaultPlan
from repro.graphs.linkgraph import LinkGraph
from repro.obs import MetricsRegistry, get_registry, get_trace_sink

#: Per-pass observer: called as ``on_pass(pass_index, ranks)`` with a
#: read-only view of the rank vector after each completed pass.
PassObserver = Callable[[int, np.ndarray], None]

__all__ = [
    "ChaoticPagerank",
    "AvailabilityModel",
    "distributed_pagerank",
    "scheduled_pagerank",
]


class _CoreInstruments:
    """Registry handles for the engine's per-pass emissions.

    Fetched once per run; under the default (disabled) registry every
    handle is a shared no-op singleton, so the per-pass cost of the
    instrumentation is a handful of empty method calls — it never
    touches the numerical state.  Names are documented in
    docs/OBSERVABILITY.md.
    """

    __slots__ = (
        "passes",
        "updates",
        "messages",
        "deferred",
        "resent",
        "dropped",
        "dead_passes",
        "residual",
        "active",
        "live_peers",
        "pass_timer",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.passes = reg.counter(
            "core.passes", unit="passes",
            description="engine passes executed (Table 1 x-axis)",
        )
        self.updates = reg.counter(
            "core.updates_applied", unit="documents",
            description="document recomputes that crossed epsilon and published",
        )
        self.messages = reg.counter(
            "core.messages_sent", unit="messages",
            description="epsilon-gated cross-peer update messages (Table 3)",
        )
        self.deferred = reg.counter(
            "core.messages_deferred", unit="messages",
            description="updates stored for absent receivers (section 3.1)",
        )
        self.resent = reg.counter(
            "core.messages_resent", unit="messages",
            description="store-and-resend deliveries to returned peers",
        )
        self.dropped = reg.counter(
            "core.messages_dropped", unit="messages",
            description="cross-peer deliveries lost to injected faults "
                        "(parked for retransmission next pass)",
        )
        self.dead_passes = reg.counter(
            "core.dead_passes", unit="passes",
            description="passes skipped because zero peers were live",
        )
        self.residual = reg.gauge(
            "core.residual", unit="rel. change",
            description="max per-document relative change of the latest pass",
        )
        self.active = reg.gauge(
            "core.active_documents", unit="documents",
            description="documents above epsilon in the latest pass",
        )
        self.live_peers = reg.gauge(
            "core.live_peers", unit="peers",
            description="peers present during the latest pass",
        )
        self.pass_timer = reg.timer(
            "core.pass_seconds",
            description="wall-clock seconds per vectorized engine pass",
        )


@runtime_checkable
class AvailabilityModel(Protocol):
    """Anything that can say which peers are up during a pass.

    Implementations live in :mod:`repro.p2p.churn`; the engine only
    requires this one method so tests can pass plain lambdas wrapped in
    tiny shims.
    """

    def sample(self, pass_index: int) -> np.ndarray:
        """Boolean array of length ``num_peers``: True = peer present."""
        ...  # pragma: no cover


class _AllLive:
    """Trivial availability model: every peer present every pass.  Used
    to route fault-injected runs through the per-edge churn path when no
    real availability model was supplied."""

    def __init__(self, num_peers: int) -> None:
        self._mask = np.ones(num_peers, dtype=bool)

    def sample(self, pass_index: int) -> np.ndarray:
        return self._mask


class ChaoticPagerank:
    """Distributed chaotic-iteration pagerank on a document link graph.

    Parameters
    ----------
    graph:
        The document link graph.
    assignment:
        Integer array mapping document -> peer id, or ``None`` to place
        every document on its own peer (all links become cross-peer).
    num_peers:
        Explicit peer count (defaults to ``assignment.max() + 1``).
    damping:
        Damping factor ``d`` (paper/Google default 0.85).
    epsilon:
        Convergence / stop-sending threshold ε (paper evaluates 0.2
        and 1e-3 … 1e-7).
    init_rank:
        Initial rank of every document; 1.0 per the paper.  The initial
        value is a global constant every peer knows, so no messages are
        needed to establish it.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> engine = ChaoticPagerank(cycle_graph(4), epsilon=1e-6)
    >>> report = engine.run()
    >>> bool(report.converged)
    True
    >>> np.allclose(report.ranks, 1.0)   # cycle pagerank is uniform
    True
    """

    def __init__(
        self,
        graph: LinkGraph,
        assignment: Optional[np.ndarray] = None,
        *,
        num_peers: Optional[int] = None,
        damping: float = DEFAULT_DAMPING,
        epsilon: float = 1e-3,
        init_rank: float = 1.0,
    ) -> None:
        check_threshold("damping", damping)
        check_threshold("epsilon", epsilon)
        check_positive("init_rank", init_rank)
        self.graph = graph
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.init_rank = float(init_rank)

        n = graph.num_nodes
        if assignment is None:
            assignment = np.arange(n, dtype=np.int64)
            inferred_peers = n
        else:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != (n,):
                raise ValueError(
                    f"assignment must have shape ({n},), got {assignment.shape}"
                )
            if n and assignment.min() < 0:
                raise ValueError("peer ids must be non-negative")
            inferred_peers = int(assignment.max()) + 1 if n else 0
        self.assignment = assignment
        self.num_peers = int(num_peers) if num_peers is not None else inferred_peers
        if n and self.num_peers <= int(assignment.max()):
            raise ValueError(
                f"num_peers={self.num_peers} too small for assignment max {int(assignment.max())}"
            )

        self.workspace: Workspace = make_workspace(graph)
        # Per-edge cross-peer mask and per-node remote out-degree: only
        # cross-peer deliveries are counted as network messages.
        src, dst = self.workspace.src, self.workspace.dst
        self._cross_edge = assignment[src] != assignment[dst]
        self._remote_outdeg = np.bincount(
            src[self._cross_edge], minlength=n
        ).astype(np.int64)

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_passes: int = 100_000,
        availability: Optional[AvailabilityModel] = None,
        initial_ranks: Optional[np.ndarray] = None,
        keep_history: bool = True,
        on_pass: Optional[PassObserver] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_dead_passes: int = 50,
    ) -> RunReport:
        """Iterate until the strong convergence criterion or the pass
        budget is hit.

        Parameters
        ----------
        max_passes:
            Upper bound on passes; the report carries
            ``converged=False`` if exhausted.
        availability:
            Optional peer-availability model (see
            :class:`AvailabilityModel`); ``None`` means all peers are
            always present (Table 1's 100 % column).
        fault_plan:
            Optional seeded :class:`repro.faults.FaultPlan`.  The
            vectorized engine honours the plan's *message loss* only: a
            dropped cross-peer delivery is parked in the §3.1
            store-and-resend state and retransmitted next pass, which
            is exactly what a reliable transport converges to at
            pass granularity.  Duplicates are no-ops on the engine's
            idempotent per-edge state, and crash/partition faults need
            the message-level simulator
            (:class:`repro.simulation.engine.P2PPagerankSimulation`).
            Passing a plan routes the run through the per-edge churn
            path (with an all-live shim when ``availability`` is None).
        max_dead_passes:
            Cap on *consecutive* passes with zero live peers; exceeded
            → ``RuntimeError`` instead of a silent stall (dead passes
            are skipped, never evaluated for convergence).
        initial_ranks:
            Warm-start ranks (e.g. resuming after an incremental
            insert); defaults to ``init_rank`` everywhere.  Warm-start
            values are assumed to have been propagated already.
        keep_history:
            Record per-pass :class:`PassStats` (disable on full-scale
            runs to save memory).
        on_pass:
            Optional observer called after every pass as
            ``on_pass(pass_index, ranks)`` with a read-only view of the
            current ranks — used by the convergence-trajectory analysis
            (§4.3's "99 % of nodes within 1 % in under 10 passes").
            The array is reused between passes; copy it to keep it.

        Returns
        -------
        RunReport
        """
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        if max_dead_passes < 1:
            raise ValueError(
                f"max_dead_passes must be >= 1, got {max_dead_passes}"
            )
        if availability is None:
            if fault_plan is None:
                return self._run_static(
                    max_passes, initial_ranks, keep_history, on_pass
                )
            availability = _AllLive(self.num_peers)
        return self._run_churn(
            max_passes, availability, initial_ranks, keep_history, on_pass,
            fault_plan=fault_plan, max_dead_passes=max_dead_passes,
        )

    # ------------------------------------------------------------------
    # Fast path: all peers always present
    # ------------------------------------------------------------------
    def _run_static(
        self,
        max_passes: int,
        initial_ranks: Optional[np.ndarray],
        keep_history: bool,
        on_pass: Optional[PassObserver] = None,
    ) -> RunReport:
        n = self.graph.num_nodes
        ws = self.workspace
        tracker = ConvergenceTracker(self.epsilon, keep_history=keep_history)
        if n == 0:
            return tracker.finish(np.zeros(0), True)

        rank = self._initial_rank_vector(initial_ranks)
        last_sent = rank.copy()
        new = np.empty_like(rank)
        err = np.empty_like(rank)

        # Selective recomputation (CSR backend only): a document whose
        # in-edge inputs (its sources' last-*sent* values) did not
        # change since the previous pass would recompute to the very
        # same bits, so its relative change is exactly 0.0 and it can
        # be skipped.  The affected set of pass t is the out-targets of
        # the documents that published during pass t-1 — `None` means
        # "everything" (first pass, or naive backend).  Small passes
        # run entirely on index arrays (no O(N) masks); when the
        # frontier still covers most of the graph a full flat pull is
        # cheaper — and equally byte-identical, since recomputing an
        # unaffected row reproduces its bits exactly.
        selective = isinstance(ws, CSRWorkspace)
        indptr, indices = self.graph.indptr, self.graph.indices
        published: Optional[np.ndarray] = None
        num_edges = ws.dst.size
        frontier = np.empty(n, dtype=bool) if selective else None

        obs = _CoreInstruments(get_registry())
        sink = get_trace_sink()
        converged = False
        with sink.span(
            "core.run", mode="static", documents=n,
            peers=self.num_peers, epsilon=self.epsilon,
        ):
            for t in range(max_passes):
                with obs.pass_timer:
                    rows: Optional[np.ndarray] = None
                    if (
                        selective
                        and published is not None
                        and 4 * published.size <= n
                    ):
                        # Frontier: out-targets of last pass's senders —
                        # the only rows whose inputs changed.  Skipped
                        # (O(1) check) while most documents are still
                        # active and the frontier would cover the graph.
                        assert frontier is not None
                        tpos, _ = expand_rows(indptr, published)
                        frontier[:] = False
                        frontier[indices[tpos]] = True
                        rows = np.flatnonzero(frontier)
                    if rows is None:
                        # Dense pass (always taken by the naive backend).
                        ws.pull(last_sent, self.damping, out=new)
                        relative_change(rank, new, out=err)
                        active = err > self.epsilon
                        n_active = int(active.sum())
                        messages = int(self._remote_outdeg[active].sum())
                        # Senders propagate their fresh value; quiet
                        # documents' last-sent stays stale — the chaotic
                        # rule.
                        last_sent[active] = new[active]
                        if selective:
                            published = np.flatnonzero(active)
                        rank, new = new, rank
                        max_change = float(err.max())
                    elif rows.size == 0:
                        published = rows
                        n_active = 0
                        messages = 0
                        max_change = 0.0
                    else:
                        assert isinstance(ws, CSRWorkspace)
                        row_edges = int(
                            (ws.rindptr[rows + 1] - ws.rindptr[rows]).sum()
                        )
                        old_rows = rank[rows]
                        # Row-gathered bookkeeping costs ~2.5x per edge
                        # vs the flat kernel, so past ~0.4E frontier
                        # in-edges pull everything and gather the rows
                        # out of the dense result — either way only the
                        # frontier rows can differ from their old bits.
                        if 5 * row_edges >= 2 * num_edges:
                            ws.pull(last_sent, self.damping, out=new)
                            vals = new[rows]
                            rank, new = new, rank
                        else:
                            vals = ws.pull_rows(last_sent, self.damping, rows)
                            rank[rows] = vals
                        err_rows = relative_change(old_rows, vals)
                        act = err_rows > self.epsilon
                        published = rows[act]
                        n_active = published.size
                        messages = int(self._remote_outdeg[published].sum())
                        if n_active:
                            last_sent[published] = vals[act]
                        max_change = float(err_rows.max())
                if on_pass is not None:
                    on_pass(t, rank)
                obs.passes.inc()
                obs.updates.inc(n_active)
                obs.messages.inc(messages)
                obs.residual.set(max_change)
                obs.active.set(n_active)
                obs.live_peers.set(self.num_peers)
                if sink.enabled:
                    sink.event(
                        "core.pass", pass_index=t, residual=max_change,
                        active_documents=n_active, messages=messages,
                    )
                tracker.record(
                    PassStats(
                        pass_index=t,
                        max_rel_change=max_change,
                        active_documents=n_active,
                        messages=messages,
                        deferred_messages=0,
                        live_peers=self.num_peers,
                        computed_documents=n,
                    )
                )
                if n_active == 0:
                    converged = True
                    break
        return tracker.finish(rank.copy(), converged)

    # ------------------------------------------------------------------
    # Churn path: peers leave and join between passes (§3.1)
    # ------------------------------------------------------------------
    def _run_churn(
        self,
        max_passes: int,
        availability: AvailabilityModel,
        initial_ranks: Optional[np.ndarray],
        keep_history: bool,
        on_pass: Optional[PassObserver] = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
        max_dead_passes: int = 50,
    ) -> RunReport:
        n = self.graph.num_nodes
        ws = self.workspace
        src, dst = ws.src, ws.dst
        cross = self._cross_edge
        tracker = ConvergenceTracker(self.epsilon, keep_history=keep_history)
        if n == 0:
            return tracker.finish(np.zeros(0), True)

        rank = self._initial_rank_vector(initial_ranks)
        # Per-edge receiver-side view of the source's rank: initialized
        # to the globally known initial value.
        delivered = rank[src].copy()
        pending = np.zeros(src.size, dtype=bool)
        pending_val = np.zeros(src.size, dtype=np.float64)
        # dirty[i]: document i received a delivery it has not yet
        # folded into a recompute (prevents declaring convergence while
        # an absent peer still owes a recompute).
        dirty = np.zeros(n, dtype=bool)

        new = np.empty_like(rank)
        err = np.empty_like(rank)

        obs = _CoreInstruments(get_registry())
        sink = get_trace_sink()
        converged = False
        dead_streak = 0
        with sink.span(
            "core.run", mode="churn", documents=n,
            peers=self.num_peers, epsilon=self.epsilon,
        ):
            for t in range(max_passes):
                live_peer = np.asarray(availability.sample(t), dtype=bool)
                if live_peer.shape != (self.num_peers,):
                    raise ValueError(
                        f"availability.sample must return shape ({self.num_peers},), "
                        f"got {live_peer.shape}"
                    )
                if not live_peer.any():
                    # All peers down: skip the pass — with nothing live,
                    # active/pending/dirty are vacuously quiet and the
                    # convergence check would falsely fire.
                    dead_streak += 1
                    obs.passes.inc()
                    obs.dead_passes.inc()
                    obs.live_peers.set(0)
                    tracker.record(
                        PassStats(
                            pass_index=t,
                            max_rel_change=0.0,
                            active_documents=0,
                            messages=0,
                            deferred_messages=int(pending.sum()),
                            live_peers=0,
                            computed_documents=0,
                        )
                    )
                    if dead_streak >= max_dead_passes:
                        raise RuntimeError(
                            f"no live peers for {dead_streak} consecutive "
                            f"passes (pass {t}); the availability model "
                            "starves the computation — raise availability "
                            "or max_dead_passes"
                        )
                    continue
                dead_streak = 0
                with obs.pass_timer:
                    live_doc = live_peer[self.assignment]
                    src_live = live_doc[src]
                    dst_live = live_doc[dst]

                    # 1) Store-and-resend: stored updates whose sender and
                    #    receiver are both now present get delivered.
                    resend = pending & src_live & dst_live
                    n_dropped = 0
                    if fault_plan is not None and resend.any():
                        # Retransmissions travel the same lossy links: a
                        # dropped one simply stays pending for next pass.
                        cand = np.flatnonzero(resend)
                        kept = fault_plan.edge_delivery_mask(t, cand.size)
                        if not kept.all():
                            resend[cand[~kept]] = False
                            n_dropped += int((~kept).sum())
                    n_resent = int(resend.sum())
                    if n_resent:
                        delivered[resend] = pending_val[resend]
                        pending[resend] = False
                        dirty[dst[resend]] = True

                    # 2) Live documents recompute from their delivered inputs.
                    ws.pull_edges(delivered, self.damping, out=new)
                    np.copyto(new, rank, where=~live_doc)
                    relative_change(rank, new, out=err)
                    err[~live_doc] = 0.0
                    dirty[live_doc] = False

                    active = live_doc & (err > self.epsilon)
                    send_edge = active[src]
                    deliver_edge = send_edge & dst_live
                    defer_edge = send_edge & ~dst_live

                    if fault_plan is not None:
                        # Lossy-send hook: each cross-peer delivery rolls
                        # the plan; a lost copy is parked in the
                        # store-and-resend state and retried next pass —
                        # the pass-granular equivalent of a reliable
                        # transport's ack-timeout retransmission.
                        lossy = np.flatnonzero(deliver_edge & cross)
                        if lossy.size:
                            kept = fault_plan.edge_delivery_mask(t, lossy.size)
                            if not kept.all():
                                lost = lossy[~kept]
                                deliver_edge[lost] = False
                                pending_val[lost] = new[src[lost]]
                                pending[lost] = True
                                n_dropped += lost.size
                        # A fresh value that does get through supersedes
                        # any staler copy still awaiting retransmission.
                        pending[deliver_edge] = False

                    # 3) Deliver to present receivers; store for absent ones.
                    if deliver_edge.any():
                        delivered[deliver_edge] = new[src[deliver_edge]]
                        dirty[dst[deliver_edge]] = True
                    if defer_edge.any():
                        pending_val[defer_edge] = new[src[defer_edge]]
                        pending[defer_edge] = True

                    messages = int((deliver_edge & cross).sum()) + n_resent
                    deferred = int(defer_edge.sum())
                    np.copyto(rank, new)
                if on_pass is not None:
                    on_pass(t, rank)

                max_change = float(err.max())
                n_active = int(active.sum())
                n_live = int(live_peer.sum())
                obs.passes.inc()
                obs.updates.inc(n_active)
                obs.messages.inc(messages)
                obs.deferred.inc(deferred)
                obs.resent.inc(n_resent)
                obs.dropped.inc(n_dropped)
                obs.residual.set(max_change)
                obs.active.set(n_active)
                obs.live_peers.set(n_live)
                if sink.enabled:
                    sink.event(
                        "core.pass", pass_index=t, residual=max_change,
                        active_documents=n_active, messages=messages,
                        deferred=deferred, resent=n_resent, live_peers=n_live,
                    )
                tracker.record(
                    PassStats(
                        pass_index=t,
                        max_rel_change=max_change,
                        active_documents=n_active,
                        messages=messages,
                        deferred_messages=deferred,
                        live_peers=n_live,
                        computed_documents=int(live_doc.sum()),
                    )
                )
                if not active.any() and not pending.any() and not dirty.any():
                    converged = True
                    break
        return tracker.finish(rank.copy(), converged)

    # ------------------------------------------------------------------
    def _initial_rank_vector(self, initial_ranks: Optional[np.ndarray]) -> np.ndarray:
        n = self.graph.num_nodes
        if initial_ranks is None:
            return np.full(n, self.init_rank, dtype=np.float64)
        initial_ranks = np.asarray(initial_ranks, dtype=np.float64)
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), got {initial_ranks.shape}"
            )
        if np.any(initial_ranks <= 0):
            raise ValueError("initial_ranks must be strictly positive")
        return initial_ranks.copy()


def distributed_pagerank(
    graph: LinkGraph,
    assignment: Optional[np.ndarray] = None,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    max_passes: int = 100_000,
    availability: Optional[AvailabilityModel] = None,
) -> RunReport:
    """One-shot convenience wrapper around :class:`ChaoticPagerank`.

    Equivalent to constructing the engine and calling
    :meth:`ChaoticPagerank.run`; see that class for parameter details.
    """
    engine = ChaoticPagerank(
        graph, assignment, damping=damping, epsilon=epsilon
    )
    return engine.run(max_passes=max_passes, availability=availability)


def scheduled_pagerank(
    graph: LinkGraph,
    assignment: Optional[np.ndarray] = None,
    *,
    schedule: Sequence[float] = (1e-2, 1e-4),
    num_peers: Optional[int] = None,
    damping: float = DEFAULT_DAMPING,
    max_passes: int = 100_000,
) -> RunReport:
    """Progressive ε-tightening: run coarse first, then warm-start finer.

    An optimisation beyond the paper: early passes at a loose threshold
    let near-converged documents mute themselves sooner, and each
    refinement stage starts from the previous fixed point instead of
    the flat initial vector.  Measured on §4.1 graphs: the two-stage
    default saves ~15-20 % of the update messages of a direct run at
    the final ε, at equal solution quality
    (``benchmarks/test_ablation_schedule.py``).

    Parameters
    ----------
    schedule:
        Strictly decreasing ε sequence; the final entry is the target
        threshold (and the returned report's ``epsilon``).
    max_passes:
        Budget shared across all stages.

    Returns
    -------
    RunReport
        Totals aggregated over every stage; ``history`` concatenates
        the stages' pass records with continuous pass indices.
    """
    schedule = tuple(float(e) for e in schedule)
    if not schedule:
        raise ValueError("schedule must contain at least one epsilon")
    if any(b >= a for a, b in zip(schedule, schedule[1:])):
        raise ValueError(f"schedule must be strictly decreasing, got {schedule}")

    ranks: Optional[np.ndarray] = None
    total_messages = 0
    total_passes = 0
    history: List[PassStats] = []
    converged = False
    for eps in schedule:
        engine = ChaoticPagerank(
            graph, assignment, num_peers=num_peers, damping=damping, epsilon=eps
        )
        budget = max_passes - total_passes
        if budget < 1:
            converged = False
            break
        report = engine.run(max_passes=budget, initial_ranks=ranks)
        for stats in report.history:
            history.append(
                PassStats(
                    pass_index=total_passes + stats.pass_index,
                    max_rel_change=stats.max_rel_change,
                    active_documents=stats.active_documents,
                    messages=stats.messages,
                    deferred_messages=stats.deferred_messages,
                    live_peers=stats.live_peers,
                    computed_documents=stats.computed_documents,
                )
            )
        total_messages += report.total_messages
        total_passes += report.passes
        ranks = report.ranks
        converged = report.converged
        if not converged:
            break
    assert ranks is not None
    return RunReport(
        ranks=ranks,
        passes=total_passes,
        converged=converged,
        total_messages=total_messages,
        history=tuple(history),
        epsilon=schedule[-1],
    )
