"""The paper's primary contribution: distributed chaotic-iteration
PageRank, with the synchronous reference solver and incremental
insert/delete updates.

* :func:`~repro.core.pagerank.pagerank_reference` — centralized
  synchronous solver (the ``R_c`` baseline of §4.3/§4.4);
* :class:`~repro.core.distributed.ChaoticPagerank` — the distributed
  asynchronous-iteration engine (Figure 1 under the §4.2 simulation
  methodology), with churn support;
* :mod:`~repro.core.incremental` — document insert/delete increment
  propagation (§3.1, §4.7, Figure 2);
* :mod:`~repro.core.convergence` — per-pass statistics and run reports.
"""

from repro.core.convergence import ConvergenceTracker, PassStats, RunReport
from repro.core.distributed import (
    AvailabilityModel,
    ChaoticPagerank,
    distributed_pagerank,
    scheduled_pagerank,
)
from repro.core.incremental import (
    PropagationResult,
    delete_document,
    insert_document,
    propagate_deltas,
    propagate_increment,
    simulate_delete,
    simulate_insert,
)
from repro.core.accelerated import aitken_pagerank, quadratic_extrapolation_pagerank
from repro.core.kernels import (
    CSRWorkspace,
    EdgeWorkspace,
    ShardCSRView,
    expand_rows,
    kernel_backend,
    make_workspace,
    relative_change,
)
from repro.core.linear import ChaoticLinearSolver, LinearSystem
from repro.core.personalized import (
    personalized_chaotic,
    personalized_reference,
    topic_vector,
)
from repro.core.pagerank import DEFAULT_DAMPING, PagerankResult, pagerank_reference

__all__ = [
    "DEFAULT_DAMPING",
    "PagerankResult",
    "pagerank_reference",
    "ChaoticPagerank",
    "distributed_pagerank",
    "scheduled_pagerank",
    "AvailabilityModel",
    "RunReport",
    "PassStats",
    "ConvergenceTracker",
    "EdgeWorkspace",
    "CSRWorkspace",
    "ShardCSRView",
    "make_workspace",
    "kernel_backend",
    "expand_rows",
    "relative_change",
    "PropagationResult",
    "propagate_increment",
    "propagate_deltas",
    "simulate_insert",
    "simulate_delete",
    "insert_document",
    "delete_document",
    "aitken_pagerank",
    "quadratic_extrapolation_pagerank",
    "ChaoticLinearSolver",
    "LinearSystem",
    "personalized_reference",
    "personalized_chaotic",
    "topic_vector",
]
