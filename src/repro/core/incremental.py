"""Incremental pagerank updates on document insert/delete (paper §3.1, §4.7).

When a document enters the network it is initialized to rank 1.0 and
pushes a ``d·R/N`` increment along each out-link; every recipient adds
the increment to its rank and, while the increment is still significant
(relative change above ε), forwards ``d·δ/N`` shares of it along its
own out-links.  Deletion is the same propagation with the negated rank.
Figure 2's worked example (G = 1 → H gets 1/3 → K, L get 1/6 each) is
this process with damping 1.

The experimental quantities of Table 4:

* **path length** — how many hops the farthest forwarded increment
  travels before falling below ε;
* **node coverage** — how many distinct documents receive at least one
  update message (the paper's upper bound on insert message cost).

The propagation here is *level-synchronous*: all increments arriving at
a document within one hop-level are accumulated before the forwarding
decision, which matches the batched per-pass delivery of the §4.2
simulation and makes the measurement deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._util import check_threshold
from repro.core.kernels import expand_rows
from repro.core.pagerank import DEFAULT_DAMPING
from repro.graphs.linkgraph import LinkGraph

__all__ = [
    "PropagationResult",
    "propagate_increment",
    "propagate_deltas",
    "simulate_insert",
    "simulate_delete",
    "insert_document",
    "delete_document",
]


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of one increment propagation.

    Attributes
    ----------
    path_length:
        Hop count of the deepest level at which messages were sent
        (0 when the source's increment was already below threshold).
    node_coverage:
        Distinct documents that received at least one update message.
    messages:
        Total update messages sent (one per traversed out-link).
    rank_delta:
        Dense per-document accumulated rank change (length N); add to
        the pre-insert rank vector to get the updated ranks.
    truncated:
        True if ``max_depth`` stopped the propagation before the
        increments decayed below threshold (only possible with
        ``damping`` at or extremely near 1 on cyclic graphs).
    """

    path_length: int
    node_coverage: int
    messages: int
    rank_delta: np.ndarray
    truncated: bool


def propagate_increment(
    graph: LinkGraph,
    source: int,
    increment: float,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    base_ranks: Optional[np.ndarray] = None,
    max_depth: int = 100_000,
) -> PropagationResult:
    """Propagate a rank increment from ``source`` through its out-links.

    Parameters
    ----------
    graph:
        Document link graph (the source must already be a node of it;
        see :func:`insert_document` for growing the graph first).
    source:
        Document whose rank changed.
    increment:
        Signed rank change at the source (+1.0 for a fresh insert,
        ``-rank`` for a delete).
    damping:
        Damping factor ``d``; each forwarded share is ``d·δ/N``.
        ``1.0`` is allowed here (Figure 2's arithmetic) even though the
        iterative engines require ``d < 1``.
    epsilon:
        Forwarding threshold ε.  A document forwards only while the
        relative change ``|δ| / new_rank`` it experienced exceeds ε
        (with ``base_ranks``), or while ``|δ| > ε`` when no base ranks
        are supplied (documents at their initial rank 1.0 make the two
        tests equal at first order).
    base_ranks:
        Current converged ranks, for the relative stopping test and for
        computing the updated ranks.  ``None`` applies the absolute
        test.
    max_depth:
        Safety bound on propagation depth (see
        :attr:`PropagationResult.truncated`).

    Returns
    -------
    PropagationResult
    """
    check_threshold("epsilon", epsilon)
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping!r}")
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    graph._check_node(source)
    n = graph.num_nodes
    if base_ranks is not None:
        base_ranks = np.asarray(base_ranks, dtype=np.float64)
        if base_ranks.shape != (n,):
            raise ValueError(f"base_ranks must have shape ({n},), got {base_ranks.shape}")

    return _run_propagation(
        graph,
        np.array([source], dtype=np.int64),
        np.array([float(increment)], dtype=np.float64),
        damping=damping,
        epsilon=epsilon,
        base_ranks=base_ranks,
        max_depth=max_depth,
        count_frontier_as_received=False,
    )


def propagate_deltas(
    graph: LinkGraph,
    nodes: np.ndarray,
    deltas: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    base_ranks: Optional[np.ndarray] = None,
    max_depth: int = 100_000,
) -> PropagationResult:
    """Propagate increments *arriving at* several documents at once.

    Where :func:`propagate_increment` models one document changing and
    pushing shares outward, this models a batch of update messages
    landing on ``nodes`` (each carrying its entry of ``deltas``): the
    recipients apply them, count as having received a message, and
    forward onward per the usual rule.  This is the primitive the
    corrected deletion protocol needs — a delete injects updates at the
    victim's out-link targets *and* degree-correction updates at its
    in-neighbours' remaining targets.
    """
    check_threshold("epsilon", epsilon)
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping!r}")
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    nodes = np.asarray(nodes, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.float64)
    if nodes.shape != deltas.shape or nodes.ndim != 1:
        raise ValueError("nodes and deltas must be 1-D arrays of equal length")
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.num_nodes):
        raise ValueError("nodes out of range")
    if base_ranks is not None:
        base_ranks = np.asarray(base_ranks, dtype=np.float64)
        if base_ranks.shape != (graph.num_nodes,):
            raise ValueError(
                f"base_ranks must have shape ({graph.num_nodes},), "
                f"got {base_ranks.shape}"
            )
    # Coalesce duplicate targets (several injected messages may address
    # the same document).
    if nodes.size:
        acc = np.zeros(graph.num_nodes, dtype=np.float64)
        np.add.at(acc, nodes, deltas)
        uniq = np.unique(nodes)
        nodes, deltas = uniq, acc[uniq]
    return _run_propagation(
        graph,
        nodes,
        deltas,
        damping=damping,
        epsilon=epsilon,
        base_ranks=base_ranks,
        max_depth=max_depth,
        count_frontier_as_received=True,
    )


def _run_propagation(
    graph: LinkGraph,
    frontier_nodes: np.ndarray,
    frontier_delta: np.ndarray,
    *,
    damping: float,
    epsilon: float,
    base_ranks: Optional[np.ndarray],
    max_depth: int,
    count_frontier_as_received: bool,
) -> PropagationResult:
    """Level-synchronous increment propagation (shared core)."""
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    out_deg = graph.out_degrees()

    rank_delta = np.zeros(n, dtype=np.float64)
    rank_delta[frontier_nodes] += frontier_delta
    received = np.zeros(n, dtype=bool)

    messages = 0
    path_length = 0
    truncated = False
    if count_frontier_as_received:
        received[frontier_nodes] = True
        messages += int(frontier_nodes.size)

    for depth in range(max_depth + 1):
        # Forwarding test on the accumulated per-node increments.
        if base_ranks is None:
            significant = np.abs(frontier_delta) > epsilon
        else:
            new_rank = base_ranks[frontier_nodes] + rank_delta[frontier_nodes]
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.abs(frontier_delta) / np.abs(new_rank)
            rel[new_rank == 0] = np.inf
            significant = rel > epsilon
        senders = frontier_nodes[significant]
        send_delta = frontier_delta[significant]
        # Dangling senders have nothing to forward.
        has_out = out_deg[senders] > 0
        senders, send_delta = senders[has_out], send_delta[has_out]
        if senders.size == 0:
            break
        if depth == max_depth:
            truncated = True
            break

        # Vectorized expansion of all senders' out-links (shared CSR
        # row-expansion kernel).
        edge_pos, counts = expand_rows(indptr, senders)
        total = edge_pos.size
        targets = indices[edge_pos]
        shares = np.repeat(damping * send_delta / counts, counts)

        messages += total
        path_length = depth + 1
        received[targets] = True

        # Accumulate per-target increments arriving this level.
        acc = np.bincount(targets, weights=shares, minlength=n)
        uniq_targets = np.unique(targets)
        arrived = acc[uniq_targets]
        rank_delta[uniq_targets] += arrived

        frontier_nodes = uniq_targets
        frontier_delta = arrived

    return PropagationResult(
        path_length=path_length,
        node_coverage=int(received.sum()),
        messages=messages,
        rank_delta=rank_delta,
        truncated=truncated,
    )


def simulate_insert(
    graph: LinkGraph,
    node: int,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    initial_rank: float = 1.0,
    base_ranks: Optional[np.ndarray] = None,
    max_depth: int = 100_000,
) -> PropagationResult:
    """Table 4's insert experiment on an existing node.

    The paper measures insert cost by picking a random *existing* node,
    resetting its pagerank to the initial value (1.0), and propagating
    — the node stands in for a freshly inserted document with the same
    out-links.  This function is that experiment for one node.
    """
    return propagate_increment(
        graph,
        node,
        float(initial_rank),
        damping=damping,
        epsilon=epsilon,
        base_ranks=base_ranks,
        max_depth=max_depth,
    )


def simulate_delete(
    graph: LinkGraph,
    node: int,
    ranks: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    max_depth: int = 100_000,
) -> PropagationResult:
    """Propagate a document deletion: the negated rank flows out.

    The deleted node's out-links receive ``-d·R/N`` and the system
    re-converges incrementally (§4.7, "Document deletions").  The
    returned ``rank_delta`` applies to the *pre-deletion* graph; callers
    removing the node structurally should follow with
    :meth:`LinkGraph.with_node_removed`.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.shape != (graph.num_nodes,):
        raise ValueError(
            f"ranks must have shape ({graph.num_nodes},), got {ranks.shape}"
        )
    return propagate_increment(
        graph,
        node,
        -float(ranks[node]),
        damping=damping,
        epsilon=epsilon,
        base_ranks=ranks,
        max_depth=max_depth,
    )


def insert_document(
    graph: LinkGraph,
    out_links: Sequence[int],
    ranks: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    initial_rank: float = 1.0,
    max_depth: int = 100_000,
) -> tuple[LinkGraph, np.ndarray, PropagationResult]:
    """True structural insert: grow the graph and update ranks in place.

    Returns the new graph (one extra node, id ``graph.num_nodes``), the
    updated rank vector (length N+1), and the propagation statistics.
    This is the protocol of §3.1: the document is "immediately
    integrated into the distributed pagerank computation scheme".

    Unlike :func:`simulate_insert` (which reproduces the paper's
    Table 4 measurement by propagating the raw initial value), the
    value propagated here is the document's *computed* rank — ``1 - d``
    for a just-inserted document, which has no in-links (its Fig. 1
    recompute would produce exactly that).  Propagating the computed
    rank is what makes the incrementally updated state agree with a
    full recomputation on the grown graph; ``initial_rank`` only
    matters as the Fig. 1 protocol constant and is accepted for
    interface symmetry.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.shape != (graph.num_nodes,):
        raise ValueError(
            f"ranks must have shape ({graph.num_nodes},), got {ranks.shape}"
        )
    new_graph = graph.with_node_added(out_links)
    new_id = graph.num_nodes
    base = np.append(ranks, 0.0)
    computed_rank = 1.0 - damping if damping < 1.0 else float(initial_rank)
    result = propagate_increment(
        new_graph,
        new_id,
        computed_rank,
        damping=damping,
        epsilon=epsilon,
        base_ranks=base,
        max_depth=max_depth,
    )
    return new_graph, base + result.rank_delta, result


def delete_document(
    graph: LinkGraph,
    node: int,
    ranks: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    max_depth: int = 100_000,
) -> tuple[LinkGraph, np.ndarray, PropagationResult]:
    """True structural delete with the full linear-system correction.

    Returns the shrunken graph (ids above ``node`` shift down by one),
    the updated rank vector (length N-1), and the propagation
    statistics.

    The paper's §3.1 delete protocol only sends the victim's negated
    rank along its out-links.  That misses a second effect of removing
    the matrix row *and column*: every document ``u`` that linked **to**
    the victim loses one out-link, so its contribution to each
    remaining target rises from ``R_u/N_u`` to ``R_u/(N_u - 1)``.
    Without the correction, deleting well-linked documents leaves
    permanent error in their neighbourhoods (this reproduction measured
    ~17 % at the 95th percentile after a handful of deletes).  This
    function injects both update sets on the pruned graph:

    * ``-d·R_v/N_v`` at each of the victim's out-link targets;
    * ``+d·R_u·(1/(N_u−1) − 1/N_u)`` at each remaining target of each
      in-neighbour ``u`` (skipped when ``N_u = 1``: ``u`` simply
      becomes dangling).

    :func:`simulate_delete` remains the paper-faithful (uncorrected)
    variant for reproducing the §4.7 measurements.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.shape != (graph.num_nodes,):
        raise ValueError(
            f"ranks must have shape ({graph.num_nodes},), got {ranks.shape}"
        )
    graph._check_node(node)
    out_deg = graph.out_degrees()

    def renumber(x: np.ndarray) -> np.ndarray:
        return x - (x > node)

    inj_nodes: list = []
    inj_deltas: list = []

    # 1) The victim's own rank is withdrawn from its targets.
    victim_targets = graph.out_links(node)
    victim_targets = victim_targets[victim_targets != node]
    if victim_targets.size:
        share = -damping * float(ranks[node]) / out_deg[node]
        inj_nodes.append(renumber(victim_targets))
        inj_deltas.append(np.full(victim_targets.size, share))

    # 2) In-neighbours' remaining targets gain the degree correction.
    for u in graph.in_links(node):
        u = int(u)
        if u == node:
            continue
        n_u = int(out_deg[u])
        if n_u < 2:
            continue  # u becomes dangling; nothing left to boost
        remaining = graph.out_links(u)
        remaining = remaining[remaining != node]
        bump = damping * float(ranks[u]) * (1.0 / (n_u - 1) - 1.0 / n_u)
        inj_nodes.append(renumber(remaining))
        inj_deltas.append(np.full(remaining.size, bump))

    new_graph = graph.with_node_removed(node)
    base = np.delete(ranks, node)
    if inj_nodes:
        result = propagate_deltas(
            new_graph,
            np.concatenate(inj_nodes),
            np.concatenate(inj_deltas),
            damping=damping,
            epsilon=epsilon,
            base_ranks=base,
            max_depth=max_depth,
        )
    else:
        result = PropagationResult(
            path_length=0,
            node_coverage=0,
            messages=0,
            rank_delta=np.zeros(new_graph.num_nodes),
            truncated=False,
        )
    return new_graph, base + result.rank_delta, result
