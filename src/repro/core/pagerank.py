"""Centralized synchronous PageRank — the paper's reference solver.

This is the "conventional synchronous iterative solver" the paper
compares its distributed scheme against (§4.3): plain Jacobi iteration
of the non-normalized pagerank recurrence

    R(i) = (1 - d) + d * Σ_{j in in(i)} R(j) / N(j)        (paper Eq. 1)

iterated to a tight tolerance.  The fixed point of this recurrence is
what Table 2 calls ``R_c``; the quality of the distributed result
``R_d`` is always measured relative to it.

Design notes
------------
* The recurrence is the *unnormalized* variant: the additive term is
  ``(1-d)``, not ``(1-d)/N``, so ranks sum to ≈ N and a freshly
  initialized document naturally starts at 1.0 — matching the paper's
  "initialize all pageranks to 1.0" and its insert protocol.
* Dangling documents (no out-links) simply contribute nothing, again
  matching Eq. 1 literally.  An optional ``dangling="redistribute"``
  mode implements the textbook correction (spread dangling mass
  uniformly) for users who want the stochastic-matrix variant; the
  reproduction experiments all use ``"none"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.kernels import Workspace, make_workspace, relative_change
from repro.graphs.linkgraph import LinkGraph

__all__ = ["PagerankResult", "pagerank_reference", "DEFAULT_DAMPING"]

#: Damping factor used throughout the paper's lineage (Page et al.).
DEFAULT_DAMPING = 0.85


@dataclass(frozen=True)
class PagerankResult:
    """Outcome of a synchronous pagerank solve.

    Attributes
    ----------
    ranks:
        Final rank per document (sums to ≈ ``num_nodes`` on graphs
        without dangling mass loss).
    iterations:
        Number of full Jacobi sweeps performed.
    converged:
        Whether ``max relative change < tol`` was reached within
        ``max_iter`` sweeps.
    residual:
        Max per-document relative change in the final sweep.
    """

    ranks: np.ndarray
    iterations: int
    converged: bool
    residual: float


def pagerank_reference(
    graph: LinkGraph,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    init_rank: float = 1.0,
    dangling: str = "none",
    workspace: Optional[Workspace] = None,
) -> PagerankResult:
    """Solve Eq. 1 synchronously to tolerance ``tol``.

    Parameters
    ----------
    graph:
        The document link graph.
    damping:
        Damping factor ``d`` in (0, 1).
    tol:
        Convergence tolerance on the max per-document relative change.
        The default 1e-12 is deliberately far tighter than any
        threshold the paper evaluates, so the result is a trustworthy
        ``R_c`` baseline.
    max_iter:
        Sweep budget; the solve reports ``converged=False`` rather than
        raising if it is exhausted.
    init_rank:
        Initial rank of every document (paper: 1.0).
    dangling:
        ``"none"`` (paper-faithful: dangling documents contribute no
        rank) or ``"redistribute"`` (spread dangling rank uniformly).
    workspace:
        Optional precomputed kernel workspace (either backend, see
        :func:`repro.core.kernels.make_workspace`), for callers that
        run several solves on the same graph.

    Returns
    -------
    PagerankResult
    """
    check_threshold("damping", damping)
    check_positive("tol", tol)
    check_positive("init_rank", init_rank)
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    if dangling not in ("none", "redistribute"):
        raise ValueError(f"dangling must be 'none' or 'redistribute', got {dangling!r}")

    n = graph.num_nodes
    if n == 0:
        return PagerankResult(np.zeros(0), 0, True, 0.0)

    ws = workspace if workspace is not None else make_workspace(graph)
    dangling_mask = graph.out_degrees() == 0 if dangling == "redistribute" else None

    rank = np.full(n, float(init_rank), dtype=np.float64)
    new = np.empty_like(rank)
    err = np.empty_like(rank)

    iterations = 0
    residual = np.inf
    for iterations in range(1, max_iter + 1):
        ws.pull(rank, damping, out=new)
        if dangling_mask is not None:
            new += damping * rank[dangling_mask].sum() / n
        relative_change(rank, new, out=err)
        residual = float(err.max()) if n else 0.0
        rank, new = new, rank  # swap buffers, no copy
        if residual < tol:
            return PagerankResult(rank.copy(), iterations, True, residual)
    return PagerankResult(rank.copy(), iterations, False, residual)
