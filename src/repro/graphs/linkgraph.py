"""Immutable CSR document link graph.

:class:`LinkGraph` is the central data structure of the library: a
directed graph of documents where an edge ``u -> v`` means document
``u`` contains a hyperlink (a GUID reference in DHT terms, §2.2) to
document ``v`` — the substrate both the §2 pagerank computation and
the §4.1 evaluation graphs are built on.  It is stored in compressed-sparse-row (CSR) form — two flat
integer arrays — so that the per-pass pagerank kernels are pure
vectorized NumPy with no per-edge Python, per the hpc-parallel
optimization guides (contiguous access, views not copies).

The reverse (in-link) adjacency is materialised lazily and cached,
because the synchronous reference solver iterates over in-links while
the distributed engines push along out-links.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LinkGraph"]


class LinkGraph:
    """Directed document link graph in CSR (out-adjacency) form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; the out-links of
        node ``i`` are ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``int64`` array of edge targets, grouped by source.
    num_nodes:
        Optional explicit node count; inferred from ``indptr`` when
        omitted.
    validate:
        When true (default) check structural invariants.  Generators
        that construct provably valid CSR arrays pass ``False`` to skip
        the O(E) checks.

    Notes
    -----
    Instances are immutable: the arrays are flagged non-writeable and
    all "mutating" operations (:meth:`with_node_added`,
    :meth:`with_node_removed`) return new graphs.  This is what makes
    it safe for several simulation engines to share one graph.
    """

    __slots__ = ("_indptr", "_indices", "_n", "_reverse_cache")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        num_nodes: Optional[int] = None,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        n = int(num_nodes) if num_nodes is not None else indptr.size - 1
        if validate:
            if n != indptr.size - 1:
                raise ValueError(
                    f"num_nodes={n} inconsistent with indptr of length {indptr.size}"
                )
            if indptr[0] != 0:
                raise ValueError("indptr[0] must be 0")
            if indptr[-1] != indices.size:
                raise ValueError(
                    f"indptr[-1]={indptr[-1]} must equal len(indices)={indices.size}"
                )
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if indices.size and (indices.min() < 0 or indices.max() >= n):
                raise ValueError("edge targets out of range [0, num_nodes)")
        # Freeze: several engines share one graph; accidental writes
        # through a view must fail loudly.
        indptr = indptr.copy() if indptr.flags.writeable else indptr
        indices = indices.copy() if indices.flags.writeable else indices
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._n = n
        self._reverse_cache: Optional["LinkGraph"] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_nodes: Optional[int] = None,
        *,
        dedupe: bool = True,
        allow_self_loops: bool = False,
    ) -> "LinkGraph":
        """Build a graph from an iterable of ``(src, dst)`` pairs.

        Parameters
        ----------
        edges:
            Edge pairs; any iterable, or an ``(E, 2)`` integer array.
        num_nodes:
            Node count; inferred as ``max(node id) + 1`` when omitted.
        dedupe:
            Drop duplicate edges (a document linking twice to the same
            target counts once, matching how the paper's link matrix
            ``A`` has a single ``1/N_j`` entry per distinct link).
        allow_self_loops:
            Keep ``u -> u`` edges when true; dropped by default (a
            document's link to itself carries no rank information).
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be pairs of (src, dst)")
        arr = arr.astype(np.int64, copy=False)
        if arr.size and arr.min() < 0:
            raise ValueError("node ids must be non-negative")
        n = int(num_nodes) if num_nodes is not None else (int(arr.max()) + 1 if arr.size else 0)
        if arr.size and int(arr.max()) >= n:
            raise ValueError(f"edge endpoint {int(arr.max())} >= num_nodes={n}")
        src, dst = arr[:, 0], arr[:, 1]
        if not allow_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        if dedupe and src.size:
            # Sort by (src, dst) with a single composite key; unique on
            # the key removes duplicate edges in O(E log E).
            key = src * np.int64(n) + dst
            key, first = np.unique(key, return_index=True)
            src, dst = src[first], dst[first]
        return cls._from_src_dst(src, dst, n)

    @classmethod
    def _from_src_dst(cls, src: np.ndarray, dst: np.ndarray, n: int) -> "LinkGraph":
        """Counting-sort ``(src, dst)`` arrays into CSR form (O(E))."""
        counts = np.bincount(src, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        indices = dst[order]
        return cls(indptr, indices, n, validate=False)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Dict[int, Sequence[int]] | Sequence[Sequence[int]],
        num_nodes: Optional[int] = None,
    ) -> "LinkGraph":
        """Build from ``{node: [targets]}`` or a list of target lists."""
        if isinstance(adjacency, dict):
            if adjacency:
                max_key = max(adjacency)
                max_val = max((max(v) for v in adjacency.values() if len(v)), default=-1)
                inferred = max(max_key, max_val) + 1
            else:
                inferred = 0
            n = int(num_nodes) if num_nodes is not None else inferred
            items: Iterator[Tuple[int, Sequence[int]]] = iter(sorted(adjacency.items()))
        else:
            n = int(num_nodes) if num_nodes is not None else len(adjacency)
            items = iter(enumerate(adjacency))
        edges: List[Tuple[int, int]] = []
        for u, targets in items:
            for v in targets:
                edges.append((int(u), int(v)))
        return cls.from_edges(edges, n)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index (edge target) array (read-only view)."""
        return self._indices

    @property
    def num_nodes(self) -> int:
        """Number of documents in the graph."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed links."""
        return self._indices.size

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkGraph(num_nodes={self._n}, num_edges={self.num_edges})"

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node, as a fresh ``int64`` array."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (O(E) bincount; no reverse build)."""
        return np.bincount(self._indices, minlength=self._n).astype(np.int64)

    def out_links(self, node: int) -> np.ndarray:
        """Targets of ``node``'s out-links (read-only CSR view)."""
        self._check_node(node)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def in_links(self, node: int) -> np.ndarray:
        """Sources linking to ``node`` (uses the cached reverse graph)."""
        return self.reverse().out_links(node)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed link ``u -> v`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self.out_links(u)
        # rows are not sorted in general; linear scan on a view.
        return bool(np.any(row == v))

    def dangling_nodes(self) -> np.ndarray:
        """Nodes with no out-links (rank sinks in the paper's model)."""
        return np.flatnonzero(np.diff(self._indptr) == 0)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise IndexError(f"node {node} out of range [0, {self._n})")

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def reverse(self) -> "LinkGraph":
        """The transpose graph (in-adjacency), built once and cached.

        Construction is a vectorized counting sort, O(E), no Python
        loop.  The reverse of the reverse is wired back to ``self`` so
        the pair shares both caches.
        """
        if self._reverse_cache is None:
            src = self._indices  # targets become sources
            # Expand CSR rows to a per-edge source array.
            dst = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._indptr))
            rev = LinkGraph._from_src_dst(src, dst, self._n)
            rev._reverse_cache = self
            self._reverse_cache = rev
        return self._reverse_cache

    def to_scipy_csr(self):
        """Export as a ``scipy.sparse.csr_matrix`` of ones (the link
        incidence matrix; row = source, column = target)."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.num_edges, dtype=np.float64)
        return csr_matrix((data, self._indices, self._indptr), shape=(self._n, self._n))

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` array of ``(src, dst)``."""
        src = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._indptr))
        return np.column_stack([src, self._indices])

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(src, dst)`` pairs (slow path; tests/exports only)."""
        for u in range(self._n):
            for v in self.out_links(u):
                yield u, int(v)

    # ------------------------------------------------------------------
    # Structural edits (used by the incremental-update experiments)
    # ------------------------------------------------------------------
    def with_node_added(self, out_links: Sequence[int]) -> "LinkGraph":
        """Return a new graph with one extra node appended.

        The new node gets id ``num_nodes`` and the given out-links.  It
        has no in-links — exactly the paper's §4.7 observation that a
        freshly inserted document cannot yet be linked to, i.e. the new
        row of the ``A`` matrix is all zeroes.
        """
        out = np.unique(np.asarray(list(out_links), dtype=np.int64))
        if out.size and (out.min() < 0 or out.max() >= self._n):
            raise ValueError("new node's out-links must point at existing nodes")
        indptr = np.empty(self._n + 2, dtype=np.int64)
        indptr[:-1] = self._indptr
        indptr[-1] = self._indptr[-1] + out.size
        indices = np.concatenate([self._indices, out])
        return LinkGraph(indptr, indices, self._n + 1, validate=False)

    def with_node_removed(self, node: int) -> "LinkGraph":
        """Return a new graph with ``node`` deleted.

        Mathematically this deletes the node's row and column from the
        link matrix (paper §4.7, "Document deletions").  Remaining
        nodes are renumbered: ids above ``node`` shift down by one.
        """
        self._check_node(node)
        edges = self.edge_array()
        keep = (edges[:, 0] != node) & (edges[:, 1] != node)
        edges = edges[keep]
        # Renumber: ids > node shift down.
        edges = edges - (edges > node)
        return LinkGraph.from_edges(edges, self._n - 1, dedupe=False)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def degree_statistics(self) -> Dict[str, float]:
        """Summary statistics used by the generator self-checks."""
        out = self.out_degrees()
        ind = self.in_degrees()
        return {
            "num_nodes": float(self._n),
            "num_edges": float(self.num_edges),
            "mean_out_degree": float(out.mean()) if self._n else 0.0,
            "max_out_degree": float(out.max()) if self._n else 0.0,
            "mean_in_degree": float(ind.mean()) if self._n else 0.0,
            "max_in_degree": float(ind.max()) if self._n else 0.0,
            "dangling_fraction": float((out == 0).mean()) if self._n else 0.0,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._indptr.tobytes(), self._indices.tobytes()))
