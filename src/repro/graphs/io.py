"""Edge-list persistence for :class:`~repro.graphs.linkgraph.LinkGraph`.

Two formats:

* a compact ``.npz`` holding the raw CSR arrays (fast, lossless,
  preferred for benchmark fixtures — the §4.1 power-law graphs are
  expensive to regenerate at paper sizes);
* a plain-text edge list (one ``src dst`` pair per line, ``#`` comments
  allowed) for interoperability with external tools.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.graphs.linkgraph import LinkGraph

__all__ = [
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
    "to_networkx",
    "from_networkx",
]

PathLike = Union[str, os.PathLike]


def save_npz(graph: LinkGraph, path: PathLike) -> None:
    """Save a graph's CSR arrays to a ``.npz`` file."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        num_nodes=np.int64(graph.num_nodes),
    )


def load_npz(path: PathLike) -> LinkGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        return LinkGraph(
            data["indptr"].copy(),
            data["indices"].copy(),
            int(data["num_nodes"]),
        )


def save_edge_list(graph: LinkGraph, path: PathLike) -> None:
    """Write a plain-text edge list (``src dst`` per line)."""
    edges = graph.edge_array()
    header = f"document link graph: {graph.num_nodes} nodes, {graph.num_edges} edges"
    np.savetxt(path, edges, fmt="%d", header=header)


def load_edge_list(path: PathLike, num_nodes: int | None = None) -> LinkGraph:
    """Read a plain-text edge list written by :func:`save_edge_list`.

    ``num_nodes`` may be given explicitly for graphs with isolated
    top-numbered nodes that never appear in any edge.
    """
    path = Path(path)
    raw = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if raw.size == 0:
        raw = raw.reshape(0, 2)
    return LinkGraph.from_edges(raw, num_nodes=num_nodes, dedupe=False)


def to_networkx(graph: LinkGraph):
    """Export as a :class:`networkx.DiGraph` (optional dependency).

    Isolated nodes are preserved.  Useful for comparing against
    networkx's own pagerank or visualising small fixtures.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(graph.iter_edges())
    return g


def from_networkx(nx_graph) -> LinkGraph:
    """Build a :class:`LinkGraph` from a networkx directed graph.

    Node labels must be (or be convertible to) the integers
    ``0 .. N-1``; use ``networkx.convert_node_labels_to_integers``
    first for arbitrary labels.
    """
    n = nx_graph.number_of_nodes()
    labels = sorted(int(v) for v in nx_graph.nodes)
    if labels != list(range(n)):
        raise ValueError(
            "node labels must be the integers 0..N-1; relabel with "
            "networkx.convert_node_labels_to_integers first"
        )
    edges = [(int(u), int(v)) for u, v in nx_graph.edges]
    return LinkGraph.from_edges(edges, num_nodes=n)
