"""Degree-distribution diagnostics for synthetic graphs.

The §4.1 generator claims power-law in/out degrees; these helpers
estimate the realised exponent so tests (and users validating their own
corpora) can check the claim quantitatively rather than by eye.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.linkgraph import LinkGraph

__all__ = ["DegreeFit", "fit_power_law_exponent", "degree_histogram"]


@dataclass(frozen=True)
class DegreeFit:
    """Result of a discrete maximum-likelihood power-law fit.

    Attributes
    ----------
    exponent:
        Estimated exponent ``alpha`` of ``P(k) ∝ k^-alpha``.
    k_min:
        Lower cutoff used for the fit.
    num_samples:
        Number of degree samples at or above ``k_min``.
    """

    exponent: float
    k_min: int
    num_samples: int


def fit_power_law_exponent(degrees: np.ndarray, *, k_min: int = 2) -> DegreeFit:
    """Estimate a power-law exponent by the Clauset–Shalizi–Newman
    continuous MLE with the standard ``-1/2`` discreteness correction.

    ``alpha = 1 + n / Σ ln(k_i / (k_min - 1/2))`` over samples with
    ``k_i >= k_min``.  Good to a few percent for the exponents and
    sample sizes used here, which is all the self-checks need.
    """
    degrees = np.asarray(degrees)
    tail = degrees[degrees >= k_min]
    if tail.size < 10:
        raise ValueError(
            f"need at least 10 samples with degree >= {k_min}, got {tail.size}"
        )
    alpha = 1.0 + tail.size / np.sum(np.log(tail / (k_min - 0.5)))
    return DegreeFit(exponent=float(alpha), k_min=k_min, num_samples=int(tail.size))


def degree_histogram(graph: LinkGraph, *, direction: str = "out") -> np.ndarray:
    """Histogram of node degrees: ``hist[k]`` = number of nodes with
    degree ``k``.

    Parameters
    ----------
    direction:
        ``"out"`` or ``"in"``.
    """
    if direction == "out":
        deg = graph.out_degrees()
    elif direction == "in":
        deg = graph.in_degrees()
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    return np.bincount(deg)
