"""Small named graphs and simple random-graph generators.

These back the unit tests, the examples, and the paper's Figure 2
micro-example.  The workhorse generator for the evaluation-scale
experiments lives in :mod:`repro.graphs.powerlaw`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro._util import as_generator, check_probability
from repro._util.rng import SeedLike
from repro.graphs.linkgraph import LinkGraph

__all__ = [
    "figure2_graph",
    "cycle_graph",
    "chain_graph",
    "star_graph",
    "complete_graph",
    "gnp_random_graph",
    "two_peer_example",
]


def figure2_graph() -> Tuple[LinkGraph, Dict[str, int]]:
    """The paper's Figure 2 graph, used for the insert-propagation demo.

    Node ``G`` has three out-links (to ``H``, ``I``, ``J``), so each
    receives a ``1/3`` share of G's unit rank; ``H`` has two out-links
    (``K``, ``L``) forwarding ``1/6`` each; ``I`` links to ``M``
    forwarding its full ``1/3`` share.  Returns the graph and the
    name-to-index mapping so tests and examples can speak the paper's
    labels.
    """
    names = ["G", "H", "I", "J", "K", "L", "M"]
    idx = {name: i for i, name in enumerate(names)}
    edges = [
        (idx["G"], idx["H"]),
        (idx["G"], idx["I"]),
        (idx["G"], idx["J"]),
        (idx["H"], idx["K"]),
        (idx["H"], idx["L"]),
        (idx["I"], idx["M"]),
    ]
    return LinkGraph.from_edges(edges, num_nodes=len(names)), idx


def cycle_graph(n: int) -> LinkGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``.

    Every node has in/out degree 1, so the stationary pagerank is
    uniform — a handy analytic fixture.
    """
    if n < 2:
        raise ValueError(f"cycle needs n >= 2, got {n}")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return LinkGraph._from_src_dst(src, dst, n)


def chain_graph(n: int) -> LinkGraph:
    """Directed path ``0 -> 1 -> ... -> n-1`` (last node dangling)."""
    if n < 1:
        raise ValueError(f"chain needs n >= 1, got {n}")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    return LinkGraph._from_src_dst(src, dst, n)


def star_graph(n: int, *, inward: bool = True) -> LinkGraph:
    """Star on ``n`` nodes with hub 0.

    ``inward=True`` (default): all leaves link to the hub, giving the
    hub in-degree ``n-1`` — the classic "important page" fixture whose
    pagerank dominates.  ``inward=False`` reverses all the edges.
    """
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    if inward:
        return LinkGraph._from_src_dst(leaves, hub, n)
    return LinkGraph._from_src_dst(hub, leaves, n)


def complete_graph(n: int) -> LinkGraph:
    """Complete directed graph (no self-loops)."""
    if n < 2:
        raise ValueError(f"complete graph needs n >= 2, got {n}")
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate([np.delete(np.arange(n, dtype=np.int64), i) for i in range(n)])
    return LinkGraph._from_src_dst(src, dst, n)


def gnp_random_graph(n: int, p: float, *, seed: SeedLike = None) -> LinkGraph:
    """Directed Erdős–Rényi G(n, p) (no self-loops).

    Not a web-like model — used in tests to exercise the engines on
    structureless graphs and in ablations contrasting power-law with
    homogeneous link structure.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    check_probability("p", p)
    rng = as_generator(seed)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    src, dst = np.nonzero(mask)
    return LinkGraph._from_src_dst(src.astype(np.int64), dst.astype(np.int64), n)


def two_peer_example() -> LinkGraph:
    """Six-document fixture used across the unit tests.

    Documents 0-2 are imagined on peer A and 3-5 on peer B, with a mix
    of intra-peer links (free in the message model) and cross-peer
    links (each generating update messages).
    """
    edges = [
        (0, 1), (1, 2), (2, 0),          # triangle within peer A
        (3, 4), (4, 5), (5, 3),          # triangle within peer B
        (0, 3), (3, 0), (2, 5), (4, 1),  # cross-peer links
        (0, 4),                          # asymmetric extra cross link
    ]
    return LinkGraph.from_edges(edges, num_nodes=6)
