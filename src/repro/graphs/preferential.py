"""Directed preferential-attachment web model (robustness alternative).

The paper's graphs come from the fitness model of §4.1.  Preferential
attachment (Barabási–Albert, directed variant) is the other standard
generator of power-law webs — new documents link to existing ones with
probability proportional to current in-degree, growing the graph one
node at a time.  The topology differs from the fitness model in ways
that matter for distributed pagerank (age-degree correlation, no
isolated high-fitness latecomers), so the robustness ablation runs the
headline experiments on both and checks the conclusions survive.

The implementation grows in *batches* with stale in-degree weights
inside each batch — the standard O((N/B) · N) vectorization that
preserves the asymptotic in-degree law while avoiding a per-node
Python loop over millions of nodes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.graphs.linkgraph import LinkGraph
from repro.graphs.powerlaw import sample_power_law_degrees

__all__ = ["preferential_attachment_graph"]


def preferential_attachment_graph(
    num_nodes: int,
    *,
    out_exponent: float = 2.4,
    seed_nodes: int = 10,
    smoothing: float = 1.0,
    batch_size: Optional[int] = None,
    seed: SeedLike = None,
) -> LinkGraph:
    """Grow a directed web by preferential attachment.

    Parameters
    ----------
    num_nodes:
        Final number of documents.
    out_exponent:
        Out-degrees are still drawn from the §4.1 truncated power law
        (out-degree is an authoring choice, not an attachment process).
    seed_nodes:
        Size of the initial strongly-linked core (a directed cycle, so
        the early graph has no dangling mass).
    smoothing:
        Additive smoothing ``a`` in the attachment weight
        ``in_degree + a`` (``a > 0`` lets zero-in-degree nodes ever be
        cited; larger values flatten the rich-get-richer effect).
    batch_size:
        Nodes added per vectorized round (weights refresh between
        rounds).  Default ``max(64, num_nodes // 100)``.
    seed:
        Deterministic seed.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if seed_nodes < 2:
        raise ValueError(f"seed_nodes must be >= 2, got {seed_nodes}")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be > 0, got {smoothing}")
    seed_nodes = min(seed_nodes, num_nodes)
    rng = as_generator(seed)
    if batch_size is None:
        batch_size = max(64, num_nodes // 100)

    in_deg = np.zeros(num_nodes, dtype=np.float64)
    src_parts = []
    dst_parts = []

    # Seed core: directed cycle.
    core_src = np.arange(seed_nodes, dtype=np.int64)
    core_dst = (core_src + 1) % seed_nodes
    src_parts.append(core_src)
    dst_parts.append(core_dst)
    np.add.at(in_deg, core_dst, 1.0)

    out_degrees = sample_power_law_degrees(
        num_nodes, out_exponent, k_min=1, k_max=min(num_nodes - 1, 10_000), seed=rng
    )

    next_node = seed_nodes
    while next_node < num_nodes:
        batch_end = min(next_node + batch_size, num_nodes)
        existing = next_node  # nodes eligible as targets this round
        weights = in_deg[:existing] + smoothing
        cum = np.cumsum(weights)
        total = cum[-1]

        batch_nodes = np.arange(next_node, batch_end, dtype=np.int64)
        deg = np.minimum(out_degrees[batch_nodes], existing)
        src = np.repeat(batch_nodes, deg)
        dst = np.searchsorted(
            cum, rng.random(src.size) * total, side="right"
        ).astype(np.int64)
        # Dedupe within each new node's target list (self-loops are
        # impossible: targets predate sources).
        key = src * np.int64(num_nodes) + dst
        _, first = np.unique(key, return_index=True)
        keep = np.zeros(key.size, dtype=bool)
        keep[first] = True
        src, dst = src[keep], dst[keep]

        src_parts.append(src)
        dst_parts.append(dst)
        np.add.at(in_deg, dst, 1.0)
        next_node = batch_end

    all_src = np.concatenate(src_parts)
    all_dst = np.concatenate(dst_parts)
    return LinkGraph._from_src_dst(all_src, all_dst, num_nodes)
