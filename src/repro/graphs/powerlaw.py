"""Synthetic web-like link graphs (Broder et al. power-law model).

The paper (§4.1) synthesises document graphs whose in-degree and
out-degree distributions follow the power laws Broder et al. measured
on a 200-million-page web crawl: ``P(k) ∝ k^-2.1`` for in-degree and
``P(k) ∝ k^-2.4`` for out-degree.  This module reproduces that model:

* out-degrees are drawn i.i.d. from a truncated discrete power law
  (zeta distribution) with exponent 2.4;
* each edge's target is drawn proportionally to a per-node "fitness"
  weight sampled from a Pareto tail with exponent 2.1, which yields the
  desired in-degree law (a fitness/hidden-variable model — the standard
  way to get a prescribed in-degree power law for directed graphs);
* self-loops are resampled and duplicate edges deduplicated, so every
  surviving node has between 1 and ``max_degree`` distinct out-links.

Everything is vectorized: degree sampling is one inverse-CDF
``searchsorted`` over a precomputed cumulative mass table, and target
sampling is one ``searchsorted`` over the cumulative fitness weights —
no per-edge Python, which is what lets the generator build the paper's
5,000,000-node graph in seconds rather than hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import as_generator, check_positive
from repro._util.rng import SeedLike
from repro.graphs.linkgraph import LinkGraph

__all__ = [
    "PowerLawConfig",
    "broder_graph",
    "hosted_web_graph",
    "sample_power_law_degrees",
]

#: Exponents measured by Broder et al. and adopted by the paper.
BRODER_IN_EXPONENT = 2.1
BRODER_OUT_EXPONENT = 2.4


@dataclass(frozen=True)
class PowerLawConfig:
    """Parameters of the §4.1 graph model.

    Attributes
    ----------
    in_exponent:
        Power-law exponent of the in-degree distribution (paper: 2.1).
    out_exponent:
        Power-law exponent of the out-degree distribution (paper: 2.4).
    min_out_degree:
        Smallest out-degree a document may have.  The paper's documents
        always reference something; default 1.
    max_degree:
        Truncation point of the degree law.  ``None`` selects
        ``min(num_nodes - 1, 10_000)``; truncation keeps the largest
        hubs from absorbing the entire edge budget on small graphs.
    """

    in_exponent: float = BRODER_IN_EXPONENT
    out_exponent: float = BRODER_OUT_EXPONENT
    min_out_degree: int = 1
    max_degree: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("in_exponent", self.in_exponent)
        check_positive("out_exponent", self.out_exponent)
        if self.in_exponent <= 1.0 or self.out_exponent <= 1.0:
            raise ValueError("power-law exponents must be > 1 for a normalisable law")
        if self.min_out_degree < 1:
            raise ValueError(f"min_out_degree must be >= 1, got {self.min_out_degree}")
        if self.max_degree is not None and self.max_degree < self.min_out_degree:
            raise ValueError("max_degree must be >= min_out_degree")


def sample_power_law_degrees(
    n: int,
    exponent: float,
    *,
    k_min: int = 1,
    k_max: int = 10_000,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw ``n`` degrees from a truncated discrete power law.

    ``P(k) ∝ k^-exponent`` for ``k in [k_min, k_max]``, sampled by
    inverse CDF over the (small) precomputed mass table — O(k_max)
    setup + O(n log k_max) sampling, independent of graph size.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if k_min < 1 or k_max < k_min:
        raise ValueError(f"need 1 <= k_min <= k_max, got k_min={k_min}, k_max={k_max}")
    check_positive("exponent", exponent)
    rng = as_generator(seed)
    ks = np.arange(k_min, k_max + 1, dtype=np.float64)
    pmf = ks ** (-exponent)
    cdf = np.cumsum(pmf)
    cdf /= cdf[-1]
    u = rng.random(n)
    return (np.searchsorted(cdf, u, side="left") + k_min).astype(np.int64)


def broder_graph(
    num_nodes: int,
    *,
    config: Optional[PowerLawConfig] = None,
    seed: SeedLike = None,
    resample_rounds: int = 4,
) -> LinkGraph:
    """Generate a §4.1-style document graph.

    Parameters
    ----------
    num_nodes:
        Number of documents.
    config:
        Model parameters; defaults to the paper's Broder exponents.
    seed:
        Deterministic seed (int / Generator / None).
    resample_rounds:
        How many vectorized rounds of self-loop/duplicate resampling to
        attempt before falling back to dropping the offending edges.

    Returns
    -------
    LinkGraph
        A directed graph whose out-degree law has exponent
        ``config.out_exponent`` and whose in-degree tail follows
        ``config.in_exponent``.

    Notes
    -----
    Duplicate edges that survive resampling are dropped, so realised
    out-degrees may fall slightly below their sampled values on very
    small graphs; the distribution tests in ``tests/graphs`` bound this
    effect.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    cfg = config or PowerLawConfig()
    rng = as_generator(seed)

    k_max = cfg.max_degree if cfg.max_degree is not None else min(num_nodes - 1, 10_000)
    k_max = min(k_max, num_nodes - 1)

    out_deg = sample_power_law_degrees(
        num_nodes,
        cfg.out_exponent,
        k_min=cfg.min_out_degree,
        k_max=k_max,
        seed=rng,
    )

    # In-degree fitness weights: Pareto with tail index (in_exponent-1)
    # produces attachment probabilities whose resulting in-degree
    # distribution follows k^-in_exponent.
    alpha = cfg.in_exponent - 1.0
    fitness = rng.pareto(alpha, size=num_nodes) + 1.0
    cum = np.cumsum(fitness)
    total = cum[-1]

    src = np.repeat(np.arange(num_nodes, dtype=np.int64), out_deg)
    dst = np.searchsorted(cum, rng.random(src.size) * total, side="right").astype(np.int64)

    src, dst = _clean_edges(src, dst, num_nodes, cum, total, rng, resample_rounds)
    return LinkGraph._from_src_dst(src, dst, num_nodes)


def hosted_web_graph(
    host_of: np.ndarray,
    *,
    intra_host_fraction: float = 0.7,
    config: Optional[PowerLawConfig] = None,
    seed: SeedLike = None,
    resample_rounds: int = 4,
) -> LinkGraph:
    """Web graph with host (site) locality — the §8 deployment model.

    Real web pages link mostly within their own site; the paper's §8
    web-server scenario (servers compute pageranks for the documents
    they host) profits from exactly that locality, because intra-host
    links generate no network messages when each host lives on one
    server.  This generator follows :func:`broder_graph` but directs
    ``intra_host_fraction`` of each document's out-links at documents
    of the same host (falling back to global targets for singleton
    hosts), with the remainder drawn by global in-fitness as usual.

    Parameters
    ----------
    host_of:
        Per-document host id (e.g. from
        :func:`repro.p2p.strategies.host_clustered_placement`).
    intra_host_fraction:
        Expected fraction of links staying within the source's host.
    """
    host_of = np.asarray(host_of, dtype=np.int64)
    if host_of.ndim != 1 or host_of.size < 2:
        raise ValueError("host_of must be a 1-D array of at least 2 documents")
    if not 0.0 <= intra_host_fraction <= 1.0:
        raise ValueError(
            f"intra_host_fraction must be in [0, 1], got {intra_host_fraction}"
        )
    num_nodes = host_of.size
    cfg = config or PowerLawConfig()
    rng = as_generator(seed)

    k_max = cfg.max_degree if cfg.max_degree is not None else min(num_nodes - 1, 10_000)
    k_max = min(k_max, num_nodes - 1)
    out_deg = sample_power_law_degrees(
        num_nodes, cfg.out_exponent, k_min=cfg.min_out_degree, k_max=k_max, seed=rng
    )

    alpha = cfg.in_exponent - 1.0
    fitness = rng.pareto(alpha, size=num_nodes) + 1.0
    cum = np.cumsum(fitness)
    total = cum[-1]

    src = np.repeat(np.arange(num_nodes, dtype=np.int64), out_deg)
    dst = np.searchsorted(cum, rng.random(src.size) * total, side="right").astype(np.int64)

    # Redirect a fraction of edges to same-host targets, chosen
    # uniformly within the source's host (vectorized per host block).
    order = np.argsort(host_of, kind="stable")
    sorted_hosts = host_of[order]
    boundaries = np.searchsorted(
        sorted_hosts, np.arange(int(host_of.max()) + 2)
    )
    host_start = boundaries[host_of[src]]
    host_end = boundaries[host_of[src] + 1]
    host_size = host_end - host_start
    local = (rng.random(src.size) < intra_host_fraction) & (host_size > 1)
    pick = host_start[local] + rng.integers(
        0, host_size[local], endpoint=False
    )
    dst[local] = order[pick]

    src, dst = _clean_edges(src, dst, num_nodes, cum, total, rng, resample_rounds)
    return LinkGraph._from_src_dst(src, dst, num_nodes)


def _clean_edges(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    cum: np.ndarray,
    total: float,
    rng: np.random.Generator,
    resample_rounds: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Resample self-loops/duplicates, then drop any leftovers.

    Shared tail of the graph generators; resampled targets are drawn
    from the global fitness distribution.
    """
    for _ in range(resample_rounds):
        key = src * np.int64(num_nodes) + dst
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        dup_sorted = np.zeros(key.size, dtype=bool)
        dup_sorted[1:] = sorted_key[1:] == sorted_key[:-1]
        bad = np.zeros(key.size, dtype=bool)
        bad[order] = dup_sorted
        bad |= src == dst
        n_bad = int(bad.sum())
        if n_bad == 0:
            break
        dst[bad] = np.searchsorted(
            cum, rng.random(n_bad) * total, side="right"
        ).astype(np.int64)
    else:
        key = src * np.int64(num_nodes) + dst
        _, first = np.unique(key, return_index=True)
        keep = np.zeros(key.size, dtype=bool)
        keep[first] = True
        keep &= src != dst
        src, dst = src[keep], dst[keep]

    return src, dst
