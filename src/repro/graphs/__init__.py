"""Document link-graph substrate (paper §2.1, §4.1).

Public surface:

* :class:`~repro.graphs.linkgraph.LinkGraph` — immutable CSR digraph.
* :func:`~repro.graphs.powerlaw.broder_graph` — the §4.1 power-law
  web-like generator (Broder exponents 2.1 in / 2.4 out).
* Named small graphs (:func:`figure2_graph`, fixtures) and simple
  random models for tests and ablations.
* Edge-list / npz IO and degree-distribution diagnostics.
"""

from repro.graphs.generators import (
    chain_graph,
    complete_graph,
    cycle_graph,
    figure2_graph,
    gnp_random_graph,
    star_graph,
    two_peer_example,
)
from repro.graphs.io import (
    from_networkx,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
    to_networkx,
)
from repro.graphs.linkgraph import LinkGraph
from repro.graphs.powerlaw import (
    BRODER_IN_EXPONENT,
    BRODER_OUT_EXPONENT,
    PowerLawConfig,
    broder_graph,
    hosted_web_graph,
    sample_power_law_degrees,
)
from repro.graphs.preferential import preferential_attachment_graph
from repro.graphs.stats import DegreeFit, degree_histogram, fit_power_law_exponent

__all__ = [
    "LinkGraph",
    "PowerLawConfig",
    "broder_graph",
    "hosted_web_graph",
    "preferential_attachment_graph",
    "sample_power_law_degrees",
    "BRODER_IN_EXPONENT",
    "BRODER_OUT_EXPONENT",
    "figure2_graph",
    "cycle_graph",
    "chain_graph",
    "star_graph",
    "complete_graph",
    "gnp_random_graph",
    "two_peer_example",
    "save_npz",
    "load_npz",
    "save_edge_list",
    "load_edge_list",
    "to_networkx",
    "from_networkx",
    "DegreeFit",
    "degree_histogram",
    "fit_power_law_exponent",
]
