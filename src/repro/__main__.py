"""``python -m repro`` — dispatches to :mod:`repro.cli`.

The command surface (ten subcommands and their flags) is tabulated in
``docs/API.md``; a lockstep test keeps that table truthful.
"""

import sys

from repro.cli import main

sys.exit(main())
