"""Command-line interface: ``python -m repro <command>``.

Fourteen commands cover the library's main entry points without
writing any Python:

``pagerank``
    Run the distributed computation on a synthetic §4.1 graph and
    report convergence, traffic, and quality vs the reference.
``table``
    Regenerate one of the paper's evaluation tables (1-6).
``report``
    Regenerate every table (plus the §4.3 trajectory) in one run.
``figure2``
    Execute the paper's Figure 2 worked example.
``search``
    Run the Table 6 search-traffic experiment at custom scale.
``faults``
    Run the fault-injection sweep: convergence under message loss
    (plus duplication, delay, and two mid-run peer crashes) at several
    loss rates, scored against the centralized reference — see
    docs/PROTOCOL.md §13 for the reliability layer it exercises.
``runtime``
    Run the concurrent asyncio peer runtime (per-peer tasks, mailboxes,
    reliable batches over a pluggable transport) on a synthetic graph —
    deterministic virtual-clock mode by default, ``--realtime`` for
    free-running mode, ``--tcp`` for loopback sockets — see
    docs/PROTOCOL.md §14 and docs/ARCHITECTURE.md.
``parallel``
    Run the multi-process sharded engine: peers partitioned into
    shards, worker OS processes over a shared-memory CSR arena, with
    cross-shard exchange priced like the paper's 24-byte updates —
    results are bit-identical at any worker count for a fixed shard
    count — see docs/PERFORMANCE.md ("Sharded execution model").
``soak``
    Run the chaos soak harness: randomized seeded crash/partition
    schedules against the recovery-supervised runtime with continuous
    invariant checks (mass conservation, no abandoned documents,
    convergence to the reference ranking); ``--report`` streams a
    JSONL incident report — see docs/PROTOCOL.md §15.
``serve``
    Run the query-serving layer: a seeded load generator drives the
    §2.4.3 incremental search path (admission control, result cache,
    DHT-routed term lookups) over the live deterministic runtime
    while pagerank converges in the background — see docs/SERVING.md.
    ``--verify-ranks`` proves serving is read-only (byte-identical
    ranks vs a no-serving control run).
``obs report``
    Run a small fully instrumented simulation (both engines, with
    churn and routed delivery) and dump the metrics snapshot as a
    table or JSON — see docs/OBSERVABILITY.md for the metric
    catalogue.  ``--trace`` additionally captures a JSON-lines event
    trace.
``bench``
    Run the pinned performance benchmark matrix (both engines, loss
    and churn variants) and write ``BENCH_pagerank.json``; with
    ``--compare``, regression-check against the committed file
    instead — see docs/PERFORMANCE.md.
``lint``
    Run the repository's AST-based invariant checkers (determinism,
    protocol/doc lockstep, metric catalogue, API surface, float
    safety) — see docs/STATIC_ANALYSIS.md for the rule catalogue.
    Exit code 1 when findings survive suppressions and the baseline.
``sanitize``
    Run the dynamic concurrency sanitizer: a happens-before race
    detector over the async runtime's tracked shared state plus a
    seeded interleaving explorer that asserts bitwise-identical
    durable state across perturbed schedules — see
    docs/STATIC_ANALYSIS.md ("Dynamic sanitizer").  Exit code 1 when
    races or schedule divergences are found.

All commands accept ``--seed`` and print plain-text tables; exit code
0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed PageRank for P2P Systems (HPDC 2003) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("pagerank", help="run distributed pagerank on a synthetic graph")
    p.add_argument("--docs", type=int, default=10_000, help="number of documents")
    p.add_argument("--peers", type=int, default=500, help="number of peers")
    p.add_argument("--epsilon", type=float, default=1e-4, help="convergence threshold")
    p.add_argument("--damping", type=float, default=0.85)
    p.add_argument("--availability", type=float, default=1.0,
                   help="fraction of peers present per pass (Table 1 churn)")
    p.add_argument("--seed", type=int, default=0)

    t = sub.add_parser("table", help="regenerate a paper table")
    t.add_argument("number", type=int, choices=range(1, 7), help="table number (1-6)")
    t.add_argument("--sizes", type=int, nargs="+", default=None,
                   help="graph sizes (default: scaled; REPRO_FULL_SCALE honoured)")
    t.add_argument("--peers", type=int, default=500)
    t.add_argument("--samples", type=int, default=200,
                   help="insert samples for table 4")
    t.add_argument("--seed", type=int, default=0)

    sub.add_parser("figure2", help="run the paper's Figure 2 example")

    r = sub.add_parser("report", help="regenerate every paper table in one run")
    r.add_argument("--sizes", type=int, nargs="+", default=None)
    r.add_argument("--peers", type=int, default=500)
    r.add_argument("--samples", type=int, default=200)
    r.add_argument("--out", type=str, default=None, help="also write to this file")
    r.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("search", help="run the incremental-search experiment")
    s.add_argument("--docs", type=int, default=11_000)
    s.add_argument("--peers", type=int, default=50)
    s.add_argument("--queries", type=int, default=20, help="queries per arity")
    s.add_argument("--seed", type=int, default=0)

    f = sub.add_parser(
        "faults",
        help="run the convergence-under-faults sweep (loss/dup/delay/crashes)",
    )
    f.add_argument("--docs", type=int, default=200, help="number of documents")
    f.add_argument("--peers", type=int, default=16, help="number of peers")
    f.add_argument("--epsilon", type=float, default=1e-3)
    f.add_argument(
        "--loss-rates", type=float, nargs="+", default=[0.0, 0.01, 0.05, 0.20],
        help="message-loss rates, one table row each",
    )
    f.add_argument("--duplicate-rate", type=float, default=0.02)
    f.add_argument("--delay-rate", type=float, default=0.05)
    f.add_argument("--max-passes", type=int, default=2_000)
    f.add_argument("--seed", type=int, default=0)

    rt = sub.add_parser(
        "runtime",
        help="run the concurrent asyncio peer runtime (docs/PROTOCOL.md §14)",
    )
    rt.add_argument("--docs", type=int, default=1_000, help="number of documents")
    rt.add_argument("--peers", type=int, default=32, help="number of peers")
    rt.add_argument("--epsilon", type=float, default=1e-4,
                    help="convergence threshold")
    rt.add_argument("--damping", type=float, default=0.85)
    rt.add_argument("--loss", type=float, default=0.0,
                    help="message drop rate injected by the fault plan")
    rt.add_argument("--churn", action="store_true",
                    help="run peers through on/off availability spells (§3.1)")
    rt.add_argument("--realtime", action="store_true",
                    help="free-running real-clock mode instead of the "
                    "deterministic virtual-clock scheduler")
    rt.add_argument("--tcp", action="store_true",
                    help="exchange envelopes over loopback TCP sockets "
                    "(implies --realtime)")
    rt.add_argument("--timeout", type=float, default=60.0,
                    help="realtime-mode wall-clock budget in seconds")
    rt.add_argument("--seed", type=int, default=0)

    par = sub.add_parser(
        "parallel",
        help="run the multi-process sharded engine "
        "(docs/PERFORMANCE.md, sharded execution model)",
    )
    par.add_argument("--docs", type=int, default=10_000, help="number of documents")
    par.add_argument("--peers", type=int, default=100, help="number of peers")
    par.add_argument("--workers", type=int, default=2,
                     help="worker OS processes (capped at the shard count)")
    par.add_argument("--shards", type=int, default=None,
                     help="peer partition granularity (default: worker count); "
                     "results are keyed on shards, never on workers")
    par.add_argument("--backend", choices=["auto", "in-process", "process"],
                     default="auto",
                     help="execution backend (auto: process when workers > 1)")
    par.add_argument("--epsilon", type=float, default=1e-4,
                     help="convergence threshold")
    par.add_argument("--damping", type=float, default=0.85)
    par.add_argument("--availability", type=float, default=1.0,
                     help="fraction of peers present per pass (1.0 = no churn)")
    par.add_argument("--loss", type=float, default=0.0,
                     help="cross-peer message drop rate (per-shard seeded streams)")
    par.add_argument("--seed", type=int, default=0)

    soak = sub.add_parser(
        "soak",
        help="run the chaos soak harness: seeded crash storms with "
        "invariant checks (docs/PROTOCOL.md §15)",
    )
    soak.add_argument("--docs", type=int, default=120, help="number of documents")
    soak.add_argument("--peers", type=int, default=6, help="number of peers")
    soak.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                      help="soak schedule seeds, one run each")
    soak.add_argument("--epsilon", type=float, default=1e-4,
                      help="convergence threshold")
    soak.add_argument("--drop", type=float, default=0.05,
                      help="background message drop rate")
    soak.add_argument("--crashes", type=int, default=2,
                      help="crash events drawn per schedule")
    soak.add_argument("--partitions", type=int, default=0,
                      help="transient link partitions drawn per schedule")
    soak.add_argument("--down-passes", type=int, default=5,
                      help="upper bound on a crash's down spell, in passes")
    soak.add_argument("--max-rounds", type=int, default=20_000,
                      help="scheduler round budget per run")
    soak.add_argument("--report", type=str, default=None,
                      help="write the JSONL incident report to this file")

    o = sub.add_parser("obs", help="observability tooling (metrics + traces)")
    osub = o.add_subparsers(dest="obs_command", required=True)
    orep = osub.add_parser(
        "report",
        help="run a small instrumented simulation and print the metrics snapshot",
    )
    orep.add_argument("--docs", type=int, default=2_000,
                      help="documents for the vectorized-engine run")
    orep.add_argument("--sim-docs", type=int, default=300,
                      help="documents for the protocol-level simulator run")
    orep.add_argument("--peers", type=int, default=50)
    orep.add_argument("--sim-peers", type=int, default=16)
    orep.add_argument("--epsilon", type=float, default=1e-3)
    orep.add_argument("--availability", type=float, default=0.75,
                      help="fraction of peers present per pass (1.0 = no churn)")
    orep.add_argument("--seed", type=int, default=0)
    orep.add_argument("--json", action="store_true",
                      help="emit the snapshot as JSON instead of a table")
    orep.add_argument("--trace", type=str, default=None,
                      help="also write a JSON-lines event trace to this file")

    serve = sub.add_parser(
        "serve",
        help="run the query-serving layer over a live runtime (docs/SERVING.md)",
    )
    from repro.serve.cli import configure_parser as _configure_serve_parser

    _configure_serve_parser(serve)

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance benchmark matrix (docs/PERFORMANCE.md)",
    )
    from repro.bench import configure_parser as _configure_bench_parser

    _configure_bench_parser(bench)

    lint = sub.add_parser(
        "lint",
        help="run the repo's static invariant checkers (docs/STATIC_ANALYSIS.md)",
    )
    from repro.lint.cli import configure_parser as _configure_lint_parser

    _configure_lint_parser(lint)

    sanitize = sub.add_parser(
        "sanitize",
        help="run the dynamic concurrency sanitizer: happens-before "
        "race detection + schedule-perturbation determinism check",
    )
    from repro.sanitize.cli import configure_parser as _configure_sanitize_parser

    _configure_sanitize_parser(sanitize)
    return parser


def _cmd_pagerank(args) -> int:
    from repro.analysis import error_distribution, format_table
    from repro.core import ChaoticPagerank, pagerank_reference
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, FixedFractionChurn

    graph = broder_graph(args.docs, seed=args.seed)
    placement = DocumentPlacement.random(args.docs, args.peers, seed=args.seed + 1)
    engine = ChaoticPagerank(
        graph,
        placement.assignment,
        num_peers=args.peers,
        epsilon=args.epsilon,
        damping=args.damping,
    )
    availability = (
        None
        if args.availability >= 1.0
        else FixedFractionChurn(args.peers, args.availability, seed=args.seed + 2)
    )
    report = engine.run(availability=availability, keep_history=False)
    reference = pagerank_reference(graph, damping=args.damping)
    dist = error_distribution(report.ranks, reference.ranks)
    print(
        format_table(
            ["metric", "value"],
            [
                ("documents", args.docs),
                ("peers", args.peers),
                ("epsilon", args.epsilon),
                ("availability", args.availability),
                ("converged", str(report.converged)),
                ("passes", report.passes),
                ("update messages", report.total_messages),
                ("messages/document", report.messages_per_document),
                ("p99 error vs R_c", dist.percentile_errors[99.0]),
                ("max error vs R_c", dist.max_error),
            ],
            title="Distributed pagerank run",
        )
    )
    return 0


def _cmd_parallel(args) -> int:
    from repro.analysis import error_distribution, format_table
    from repro.core import pagerank_reference
    from repro.faults.plan import FaultSpec
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, FixedFractionChurn
    from repro.parallel import ParallelPagerank

    graph = broder_graph(args.docs, seed=args.seed)
    placement = DocumentPlacement.random(args.docs, args.peers, seed=args.seed + 1)
    engine = ParallelPagerank(
        graph,
        placement.assignment,
        num_peers=args.peers,
        workers=args.workers,
        shards=args.shards,
        epsilon=args.epsilon,
        damping=args.damping,
        backend=args.backend,
    )
    availability = (
        None
        if args.availability >= 1.0
        else FixedFractionChurn(args.peers, args.availability, seed=args.seed + 2)
    )
    fault_spec = (
        FaultSpec(drop_rate=args.loss) if args.loss > 0.0 else None
    )
    report = engine.run(
        availability=availability,
        fault_spec=fault_spec,
        fault_seed=args.seed + 3,
        keep_history=False,
    )
    reference = pagerank_reference(graph, damping=args.damping)
    dist = error_distribution(report.ranks, reference.ranks)
    exchange = engine.last_exchange
    print(
        format_table(
            ["metric", "value"],
            [
                ("documents", args.docs),
                ("peers", args.peers),
                ("workers", engine.workers),
                ("shards", engine.shards),
                ("backend", engine.backend),
                ("epsilon", args.epsilon),
                ("availability", args.availability),
                ("loss rate", args.loss),
                ("converged", str(report.converged)),
                ("passes", report.passes),
                ("update messages", report.total_messages),
                ("cross-shard messages", exchange.messages),
                ("cross-shard bytes", exchange.bytes_on_wire),
                ("cross-shard hops", exchange.hops),
                ("worker utilization", round(engine.last_utilization, 4)),
                ("p99 error vs R_c", dist.percentile_errors[99.0]),
                ("max error vs R_c", dist.max_error),
            ],
            title="Sharded parallel pagerank run",
        )
    )
    return 0


def _cmd_table(args) -> int:
    from repro.analysis import table1, table2, table3, table4, table5, table6

    if args.number == 1:
        print(table1(args.sizes, num_peers=args.peers, seed=args.seed).render())
    elif args.number == 2:
        print(table2(args.sizes, num_peers=args.peers, seed=args.seed).render())
    elif args.number == 3:
        print(table3(args.sizes, num_peers=args.peers, seed=args.seed).render())
    elif args.number == 4:
        print(table4(args.sizes, samples=args.samples, seed=args.seed).render())
    elif args.number == 5:
        t1 = table1(args.sizes, num_peers=args.peers, seed=args.seed)
        t2 = table2(
            args.sizes, thresholds=(0.2, 1e-3, 1e-4), num_peers=args.peers,
            seed=args.seed,
        )
        t3 = table3(
            args.sizes, thresholds=(0.2, 1e-3, 1e-4), num_peers=args.peers,
            seed=args.seed,
        )
        t4 = table4(
            args.sizes, thresholds=(0.2, 1e-2, 1e-4), samples=args.samples,
            seed=args.seed,
        )
        print(table5(t1, t2, t3, t4).render())
    elif args.number == 6:
        print(table6(seed=args.seed).render())
    return 0


def _cmd_figure2(args) -> int:
    from repro.analysis import format_table
    from repro.core import propagate_increment
    from repro.graphs import figure2_graph

    graph, idx = figure2_graph()
    names = {v: k for k, v in idx.items()}
    result = propagate_increment(graph, idx["G"], 1.0, damping=1.0, epsilon=0.01)
    rows = [
        (names[i], result.rank_delta[i])
        for i in range(graph.num_nodes)
        if result.rank_delta[i]
    ]
    print(
        format_table(
            ["document", "increment"],
            rows,
            title="Figure 2: insert increment propagation (d=1, eps=0.01)",
        )
    )
    print(
        f"path length={result.path_length} coverage={result.node_coverage} "
        f"messages={result.messages}"
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis import generate_report

    text = generate_report(
        sizes=args.sizes,
        num_peers=args.peers,
        insert_samples=args.samples,
        seed=args.seed,
        out_path=args.out,
    )
    print(text)
    return 0


def _cmd_search(args) -> int:
    from repro.analysis import table6
    from repro.search import CorpusConfig

    cfg = CorpusConfig(num_documents=args.docs)
    result = table6(
        corpus_config=cfg,
        num_peers=args.peers,
        queries_per_arity=args.queries,
        seed=args.seed,
    )
    print(result.render())
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultExperimentConfig, run_fault_experiment

    config = FaultExperimentConfig(
        num_documents=args.docs,
        num_peers=args.peers,
        epsilon=args.epsilon,
        loss_rates=tuple(args.loss_rates),
        duplicate_rate=args.duplicate_rate,
        delay_rate=args.delay_rate,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    result = run_fault_experiment(config)
    print(result.render())
    failed = [t for t in result.trials if not t.converged]
    if failed:
        rates = ", ".join(f"{t.loss_rate:.0%}" for t in failed)
        print(f"\nWARNING: no convergence at loss rate(s) {rates}")
    return 0


def _cmd_runtime(args) -> int:
    import asyncio

    from repro.analysis import error_distribution, format_table
    from repro.core import pagerank_reference
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, P2PNetwork
    from repro.runtime import AsyncPeerRuntime, TcpTransport
    from repro.simulation.events import FixedLatency, OnOffSchedule

    graph = broder_graph(args.docs, seed=args.seed)
    placement = DocumentPlacement.random(args.docs, args.peers, seed=args.seed + 1)
    network = P2PNetwork(args.peers, placement, build_ring=False)
    realtime = args.realtime or args.tcp
    kwargs = {}
    if args.tcp:
        if args.loss or args.churn:
            print("error: --tcp carries no fault plan; drop --loss/--churn")
            return 2
        kwargs["transport"] = TcpTransport()
    else:
        if args.loss:
            kwargs["faults"] = FaultPlan(
                FaultSpec(drop_rate=args.loss), seed=args.seed + 3
            )
        if args.churn:
            kwargs["availability"] = OnOffSchedule(
                args.peers, mean_up=30.0, mean_down=10.0, seed=args.seed + 2
            )
        if realtime:
            # Millisecond-scale virtual units so a real-clock run is not
            # paced at one second per hop.
            kwargs["latency"] = FixedLatency(0.005)
            kwargs["pass_time"] = 0.01
        kwargs["seed"] = args.seed + 4
    runtime = AsyncPeerRuntime(
        graph,
        network,
        damping=args.damping,
        epsilon=args.epsilon,
        **kwargs,
    )
    if realtime:
        report = asyncio.run(runtime.run_realtime(timeout=args.timeout))
    else:
        report = asyncio.run(runtime.run())
    reference = pagerank_reference(graph, damping=args.damping)
    dist = error_distribution(report.ranks, reference.ranks)
    mode = "tcp" if args.tcp else ("realtime" if realtime else "deterministic")
    print(
        format_table(
            ["metric", "value"],
            [
                ("documents", args.docs),
                ("peers", args.peers),
                ("mode", mode),
                ("epsilon", args.epsilon),
                ("converged", str(report.converged)),
                ("quiesced", str(report.quiesced)),
                ("clock at quiescence", f"{report.clock_time:.3f}"),
                ("scheduler rounds", report.rounds),
                ("update messages", report.messages),
                ("batches", report.batches),
                ("acks", report.acks),
                ("retries", report.retries),
                ("abandoned updates", report.abandoned_updates),
                ("deferred deliveries", report.deferred_deliveries),
                ("max staleness", f"{report.max_staleness:.2e}"),
                ("p99 error vs R_c", dist.percentile_errors[99.0]),
                ("max error vs R_c", dist.max_error),
            ],
            title="Concurrent peer runtime run",
        )
    )
    return 0 if report.converged else 1


def _cmd_soak(args) -> int:
    from contextlib import ExitStack

    from repro import obs
    from repro.analysis import format_table
    from repro.recovery import SoakConfig, run_soak

    config = SoakConfig(
        docs=args.docs,
        peers=args.peers,
        epsilon=args.epsilon,
        drop_rate=args.drop,
        crashes=args.crashes,
        partitions=args.partitions,
        down_passes_max=args.down_passes,
        max_rounds=args.max_rounds,
    )
    rows = []
    failures = 0
    with ExitStack() as stack:
        sink = None
        if args.report:
            sink = stack.enter_context(obs.TraceSink(args.report))
        for seed in args.seeds:
            report = run_soak(config, seed=seed, trace=sink)
            failures += 0 if report.ok else 1
            rows.append(
                (
                    seed,
                    "ok" if report.ok else "FAIL",
                    report.rounds,
                    report.crashes,
                    report.restarts,
                    report.p99_error,
                    report.mass_error,
                    len(report.violations),
                )
            )
            for violation in report.violations:
                print(
                    f"seed {seed}: {violation.kind} @ round "
                    f"{violation.round}: {violation.detail}",
                    file=sys.stderr,
                )
    print(
        format_table(
            ["seed", "status", "rounds", "crashes", "restarts",
             "p99 err", "mass err", "violations"],
            rows,
            title=(
                f"repro soak — {config.docs} docs / {config.peers} peers, "
                f"drop={config.drop_rate}, {config.crashes} crashes, "
                f"{config.partitions} partitions"
            ),
        )
    )
    if args.report:
        print(f"incident report written to {args.report}")
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    from repro.serve.cli import run as run_serve_command

    return run_serve_command(args)


def _cmd_obs(args) -> int:
    from contextlib import ExitStack

    from repro import obs
    from repro.core import ChaoticPagerank
    from repro.graphs import broder_graph
    from repro.p2p import FixedFractionChurn, P2PNetwork
    from repro.p2p.routing import RoutedDelivery
    from repro.simulation import (
        RATE_32KBPS,
        P2PPagerankSimulation,
        TransferModel,
        pass_time_parallel,
        total_time_serialized,
    )

    with ExitStack() as stack:
        reg = stack.enter_context(obs.use_registry())
        sink = obs.get_trace_sink()
        if args.trace:
            sink = stack.enter_context(obs.TraceSink(args.trace))
            stack.enter_context(obs.use_trace_sink(sink))

        # Vectorized engine (core.* metrics, churn model metrics).
        graph = broder_graph(args.docs, seed=args.seed)
        network = P2PNetwork(args.peers, build_ring=False)
        placement = network.place_documents(args.docs, seed=args.seed + 1)
        network.cross_peer_edge_count(graph)
        engine = ChaoticPagerank(
            graph, placement.assignment, num_peers=args.peers, epsilon=args.epsilon
        )
        churn = (
            None
            if args.availability >= 1.0
            else FixedFractionChurn(args.peers, args.availability, seed=args.seed + 2)
        )
        report = engine.run(availability=churn, keep_history=False)

        # Protocol-level simulator on a smaller graph (sim.* metrics,
        # chord routing metrics via the routed delivery policy).
        sim_graph = broder_graph(args.sim_docs, seed=args.seed + 3)
        sim_net = P2PNetwork(args.sim_peers)
        sim_net.place_documents(args.sim_docs, seed=args.seed + 4)
        sim = P2PPagerankSimulation(
            sim_graph, sim_net, epsilon=args.epsilon,
            delivery_policy=RoutedDelivery(sim_net.ring),
        )
        sim_churn = (
            None
            if args.availability >= 1.0
            else FixedFractionChurn(
                args.sim_peers, args.availability, seed=args.seed + 5
            )
        )
        sim.run(availability=sim_churn, max_passes=2_000)

        # Eq. 4 modeled execution time for the vectorized run (both the
        # serialised Table 3 reading and the peer-parallel per-pass one).
        model = TransferModel(rate_bytes_per_s=RATE_32KBPS)
        total_time_serialized(
            report.total_messages, model, passes=report.passes
        )
        pass_time_parallel(network.peer_link_matrix(graph), model)

        # One DHT membership change, so ring-maintenance metrics appear
        # in the report too (join + leave restores the original ring).
        sim_net.ring.join(args.sim_peers)
        sim_net.ring.leave(args.sim_peers)

        # §3.2 location caching: a miss, a hit, and an invalidation so
        # every p2p.location_cache.* counter appears in the snapshot.
        from repro.p2p.cache import LocationCache

        loc_cache = LocationCache(0, sim_net.ring)
        loc_cache.locate(0)
        loc_cache.locate(0)
        loc_cache.invalidate(0)
        snapshot = reg.snapshot()

    if args.json:
        print(obs.snapshot_to_json(snapshot))
    else:
        print(obs.render_snapshot(snapshot, title="repro obs report"))
        layers = sorted({obs.layer_of(name) for name in snapshot})
        print(
            f"\n{len(snapshot)} metrics across layers: {', '.join(layers)} "
            f"(catalogue: docs/OBSERVABILITY.md)"
        )
        if args.trace:
            print(f"trace written to {args.trace}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import main as run_bench_cli

    return run_bench_cli(args)


def _cmd_lint(args) -> int:
    from repro.lint.cli import run as run_lint

    return run_lint(args)


def _cmd_sanitize(args) -> int:
    from repro.sanitize.cli import run as run_sanitize

    return run_sanitize(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "pagerank": _cmd_pagerank,
        "parallel": _cmd_parallel,
        "table": _cmd_table,
        "figure2": _cmd_figure2,
        "report": _cmd_report,
        "search": _cmd_search,
        "faults": _cmd_faults,
        "runtime": _cmd_runtime,
        "soak": _cmd_soak,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "sanitize": _cmd_sanitize,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
