"""Seeded query load generation (paper §4.9 methodology).

The paper's search experiments draw synthetic queries from the 100
most frequent corpus terms; real query streams are additionally
*skewed* — a few popular queries repeat constantly (the property a
result cache exploits).  :class:`LoadGenerator` reproduces both: it
pre-generates a pool of distinct candidate queries from the corpus'
top terms (:func:`repro.search.query.generate_queries`) and draws each
arrival from a Zipf distribution over that pool, entering the system
at a uniformly drawn portal peer.

Two arrival disciplines (docs/SERVING.md):

* **open loop** — Poisson arrivals at a target QPS for a fixed
  duration, offered regardless of completions (the overload regime
  admission control exists for);
* **closed loop** — a fixed number of clients, each issuing its next
  query only when the previous one completes (plus think time), so
  offered load self-limits to capacity.

Everything is drawn from one seeded generator; a run is bitwise
reproducible given (corpus, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.search.corpus import Corpus
from repro.search.query import Query, generate_queries

__all__ = ["LoadGenerator", "QueryArrival"]


@dataclass(frozen=True)
class QueryArrival:
    """One offered query: when, what, and where it enters."""

    time: float
    query: Query
    portal_peer: int


class LoadGenerator:
    """Zipf-skewed query mix over a corpus' most frequent terms.

    Parameters
    ----------
    corpus:
        The indexed corpus (terms are drawn from its top pool).
    num_peers:
        Portal peers are drawn uniformly from ``range(num_peers)``.
    seed:
        Seeds query-pool generation and every subsequent draw.
    num_distinct:
        Size of the candidate query pool (distinct queries the stream
        can contain — the cache's working set).
    terms_per_query:
        Terms per query (paper: 2–3 word queries, Table 6).
    term_pool_size:
        Top-N most frequent terms queries are built from (paper: 100).
    zipf_exponent:
        Skew of query popularity; candidate ``i`` (0-based) is drawn
        with weight ``(i+1)**-s``.  0 is uniform.
    """

    def __init__(
        self,
        corpus: Corpus,
        num_peers: int,
        *,
        seed: SeedLike,
        num_distinct: int = 50,
        terms_per_query: int = 2,
        term_pool_size: int = 100,
        zipf_exponent: float = 1.0,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        if num_distinct < 1:
            raise ValueError(f"num_distinct must be >= 1, got {num_distinct}")
        if zipf_exponent < 0:
            raise ValueError(f"zipf_exponent must be >= 0, got {zipf_exponent}")
        self.num_peers = int(num_peers)
        self._rng = as_generator(seed)
        self.candidates: Tuple[Query, ...] = tuple(
            generate_queries(
                corpus,
                num_queries=num_distinct,
                terms_per_query=terms_per_query,
                term_pool_size=term_pool_size,
                seed=self._rng,
            )
        )
        weights = np.arange(1, len(self.candidates) + 1, dtype=np.float64)
        weights = weights ** -float(zipf_exponent)
        self._weights = weights / weights.sum()

    def sample(self, time: float) -> QueryArrival:
        """Draw one arrival at ``time`` (advances the seeded stream)."""
        idx = int(self._rng.choice(len(self.candidates), p=self._weights))
        portal = int(self._rng.integers(self.num_peers))
        return QueryArrival(time=float(time), query=self.candidates[idx], portal_peer=portal)

    def open_arrivals(self, qps: float, duration: float) -> List[QueryArrival]:
        """Poisson arrival times at rate ``qps`` over ``duration``
        clock units, each with its query and portal drawn in arrival
        order (one deterministic stream)."""
        if qps <= 0:
            raise ValueError(f"qps must be > 0, got {qps}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        arrivals: List[QueryArrival] = []
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / qps))
            if t >= duration:
                return arrivals
            arrivals.append(self.sample(t))
