"""Pagerank-aware result cache for the query-serving layer.

Serving reads against ranks that are *still converging* (the paper's
chaotic iteration runs in the background, §2.3), so a cached result
set has two expiry conditions, either of which drops it
(docs/SERVING.md, "Cache invalidation rule"):

* **TTL** — virtual-clock age beyond ``ttl`` units;
* **rank-version invalidation** — the serving layer bumps a
  monotonically increasing *rank version* whenever the background
  ranks drift past the staleness bound ε and the index is refreshed
  (§2.4.2 index-update messages); entries recorded under an older
  version are stale by definition and refuse to serve.

Both checks happen at lookup time, so the cache never returns a result
computed against ranks more than one refresh interval out of date.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["CachedResult", "ResultCache", "ResultCacheStats"]


@dataclass(frozen=True)
class CachedResult:
    """One cached query answer.

    Attributes
    ----------
    hits:
        The rank-sorted result document ids, as an immutable tuple.
    rank_version:
        The serving layer's rank version when the result was computed.
    expires_at:
        Virtual-clock time after which the entry is TTL-stale.
    """

    hits: Tuple[int, ...]
    rank_version: int
    expires_at: float


@dataclass
class ResultCacheStats:
    """Counters for the result cache.

    ``expirations`` counts TTL evictions observed at lookup;
    ``invalidations`` counts entries refused (and dropped) because the
    rank version moved on.
    """

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 with no lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """TTL + rank-version invalidating cache of query result sets.

    Parameters
    ----------
    ttl:
        Entry lifetime in virtual-clock units; must be > 0.
    capacity:
        Optional bound on live entries (FIFO eviction, matching the
        :class:`~repro.p2p.cache.LocationCache` policy).  ``None`` is
        unbounded.

    Keys are the query's term tuple *in routing order* plus the top-x%
    fraction, because both change the answer (docs/SERVING.md).
    """

    def __init__(self, ttl: float, *, capacity: Optional[int] = None) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.ttl = float(ttl)
        self.capacity = capacity
        self.stats = ResultCacheStats()
        self._entries: Dict[Tuple, CachedResult] = {}

    def get(self, key: Tuple, now: float, rank_version: int) -> Optional[CachedResult]:
        """The cached answer for ``key``, or ``None``.

        A TTL-expired or version-stale entry is dropped on sight and
        counted; only a live, current-version entry is a hit.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.rank_version != rank_version:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        if now > entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(self, key: Tuple, hits: Tuple[int, ...], now: float, rank_version: int) -> None:
        """Record a freshly computed result under the current version."""
        if self.capacity is not None and key not in self._entries:
            while len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
        self._entries[key] = CachedResult(
            hits=tuple(int(d) for d in hits),
            rank_version=int(rank_version),
            expires_at=now + self.ttl,
        )

    def invalidate_version(self, rank_version: int) -> int:
        """Eagerly drop every entry older than ``rank_version``.

        Called on a rank refresh so memory is reclaimed immediately
        rather than lazily at next lookup; returns the number dropped
        (counted as invalidations).
        """
        stale = [k for k, e in self._entries.items() if e.rank_version < rank_version]
        for k in stale:
            del self._entries[k]
        self.stats.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries
