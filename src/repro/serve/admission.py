"""Admission control for the query-serving layer (docs/SERVING.md).

Peers in the paper's system answer queries *while* running the
background pagerank computation (§2.4.3), so query capacity is finite:
each peer holds a bounded queue of in-flight queries.  A query whose
entry peer is already at capacity is **shed** — refused now, retried
later with the same capped exponential backoff the reliable-delivery
layer uses for unacked flights (:class:`repro.faults.ReliabilityConfig`
semantics, docs/PROTOCOL.md §13): retry ``k`` waits
``ack_timeout_passes * backoff_factor**(k-1)`` time units, capped at
``max_retry_delay_passes``; a query still shed after ``max_retries``
attempts is **dropped** (counted, never silently lost).

The controller is the load-side state machine documented in
docs/SERVING.md ("Admission / shedding"): admitted → executing →
done, or shed → (backoff) → re-offered, or shed → dropped once the
retry budget is spent.  Queue depth can therefore never exceed the
configured bound — overload turns into measured shed rate, not
unbounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults.transport import ReliabilityConfig

__all__ = ["AdmissionController", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Counters for the admission controller.

    Attributes
    ----------
    admitted:
        Queries accepted into a peer queue.
    shed:
        Admission refusals (each schedules a backoff retry unless the
        budget is already spent).
    retries:
        Re-offers of previously shed queries.
    dropped:
        Queries abandoned after exhausting the retry budget.
    peak_depth:
        Largest per-peer queue depth ever observed (bounded by the
        configured capacity by construction).
    """

    admitted: int = 0
    shed: int = 0
    retries: int = 0
    dropped: int = 0
    peak_depth: int = 0

    @property
    def shed_rate(self) -> float:
        """Shed offers / total offers; 0.0 before any offer."""
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0


class AdmissionController:
    """Bounded per-peer query queues with shed-and-retry.

    Parameters
    ----------
    queue_capacity:
        Maximum queries simultaneously admitted per peer (queued +
        executing); must be >= 1.
    reliability:
        Backoff schedule for shed queries; defaults to the protocol's
        :class:`~repro.faults.ReliabilityConfig` defaults.
    retry_scale:
        Virtual-time units per "pass" of the backoff schedule (the
        reliability layer counts passes; serving counts clock units).
    """

    def __init__(
        self,
        queue_capacity: int,
        *,
        reliability: Optional[ReliabilityConfig] = None,
        retry_scale: float = 1.0,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if retry_scale <= 0:
            raise ValueError(f"retry_scale must be > 0, got {retry_scale}")
        self.queue_capacity = int(queue_capacity)
        self.reliability = reliability if reliability is not None else ReliabilityConfig()
        self.retry_scale = float(retry_scale)
        self.stats = AdmissionStats()
        self._depth: Dict[int, int] = {}

    def depth(self, peer: int) -> int:
        """Current admitted-query count at ``peer``."""
        return self._depth.get(peer, 0)

    def try_admit(self, peer: int, *, attempt: int = 1) -> bool:
        """Offer a query to ``peer``'s queue.

        ``attempt`` is 1 for a fresh arrival, 2.. for re-offers after
        shedding (counted as retries).  Returns True and takes a queue
        slot, or False (shed) leaving state untouched.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if attempt > 1:
            self.stats.retries += 1
        d = self._depth.get(peer, 0)
        if d >= self.queue_capacity:
            self.stats.shed += 1
            return False
        self._depth[peer] = d + 1
        self.stats.admitted += 1
        if d + 1 > self.stats.peak_depth:
            self.stats.peak_depth = d + 1
        return True

    def release(self, peer: int) -> None:
        """Return a queue slot when a query finishes at ``peer``."""
        d = self._depth.get(peer, 0)
        if d <= 0:
            raise RuntimeError(f"release without admit on peer {peer}")
        self._depth[peer] = d - 1

    def retry_at(self, now: float, attempt: int) -> Optional[float]:
        """When a query shed on ``attempt`` should be re-offered.

        ``None`` once the retry budget is exhausted — the caller must
        count the query dropped.  The delay is the reliable-transport
        backoff (capped exponential) scaled to clock units.
        """
        if attempt > self.reliability.max_retries:
            self.stats.dropped += 1
            return None
        return now + self.reliability.retry_delay(attempt) * self.retry_scale
