"""``repro serve`` — the query-serving entry point (docs/SERVING.md).

Runs one seeded :class:`~repro.serve.service.ServeSession`: the
deterministic asyncio peer runtime converging pagerank in the
background while the §2.4.3 incremental search path answers a
generated query load, and prints the serving report (achieved QPS,
latency percentiles, shed rate, cache hit rate).

Kept separate from :mod:`repro.cli` so the top-level CLI stays a thin
dispatcher; that module calls :func:`configure_parser` to mount the
arguments and :func:`run` to execute.

The command doubles as the CI smoke probe (``make serve-smoke``): it
verifies the report invariants (query conservation, no silent drops,
bounded queues) and, with ``--verify-ranks``, replays the identical
scenario *without* serving and requires the final rank vectors to be
byte-identical — serving must be read-only towards the computation.

Exit codes: 0 = clean, 1 = invariant or determinism violation,
2 = bad invocation.
"""

from __future__ import annotations

import argparse
import asyncio
import json

__all__ = ["configure_parser", "run"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Mount ``repro serve``'s arguments onto ``parser``."""
    parser.add_argument("--docs", type=int, default=400,
                        help="number of documents in the corpus")
    parser.add_argument("--peers", type=int, default=16,
                        help="number of peers (index + compute)")
    parser.add_argument("--qps", type=float, default=50.0,
                        help="offered queries per clock unit (open loop)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="load window in virtual-clock units")
    parser.add_argument("--mode", choices=("deterministic",),
                        default="deterministic",
                        help="scheduler mode (seeded virtual clock)")
    parser.add_argument("--loop", choices=("open", "closed"), default="open",
                        help="arrival discipline (docs/SERVING.md)")
    parser.add_argument("--clients", type=int, default=8,
                        help="closed-loop client count")
    parser.add_argument("--cache", type=float, default=5.0,
                        help="result-cache TTL in clock units (0 disables)")
    parser.add_argument("--top-x", type=float, default=0.2, dest="top_x",
                        help="top-x%% forwarding fraction in (0, 1]")
    parser.add_argument("--staleness", type=float, default=0.05,
                        help="rank-drift bound ε that forces an index "
                        "refresh + cache invalidation")
    parser.add_argument("--queue-capacity", type=int, default=8,
                        help="admission bound per entry peer")
    parser.add_argument("--seed", type=int, default=0,
                        help="session seed (corpus, load, runtime)")
    parser.add_argument("--verify-ranks", action="store_true",
                        help="replay the scenario without serving and "
                        "require byte-identical final ranks")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")


def run(args: argparse.Namespace) -> int:
    """Execute ``repro serve`` and return the process exit code."""
    from repro.analysis import format_table
    from repro.serve.service import ServeConfig, ServeSession

    config = ServeConfig(
        docs=args.docs,
        peers=args.peers,
        seed=args.seed,
        qps=args.qps,
        duration=args.duration,
        loop=args.loop,
        clients=args.clients,
        cache_ttl=args.cache,
        staleness_epsilon=args.staleness,
        fraction=args.top_x,
        queue_capacity=args.queue_capacity,
    )
    session = ServeSession(config)
    report = session.run()
    problems = report.verify_invariants(config)

    ranks_identical = None
    if args.verify_ranks:
        control = ServeSession(config)
        control_report = asyncio.run(control.runtime.run())
        ranks_identical = bool(
            report.runtime.ranks.tobytes() == control_report.ranks.tobytes()
        )
        if not ranks_identical:
            problems.append(
                "serving perturbed the computation: final ranks differ "
                "from the no-serving control run"
            )

    if args.format == "json":
        payload = {
            "offered": report.offered,
            "completed": report.completed,
            "cache_hits": report.cache_hits,
            "shed": report.shed,
            "retries": report.retries,
            "dropped": report.dropped,
            "qps_achieved": report.qps_achieved,
            "latency_p50": report.latency_p50,
            "latency_p99": report.latency_p99,
            "shed_rate": report.shed_rate,
            "cache_hit_rate": report.cache_hit_rate,
            "rank_refreshes": report.rank_refreshes,
            "peak_queue_depth": report.peak_queue_depth,
            "digest": report.digest,
            "converged": report.runtime.converged,
            "ranks_identical": ranks_identical,
            "violations": problems,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = [
            ("documents", config.docs),
            ("peers", config.peers),
            ("loop", config.loop),
            ("offered queries", report.offered),
            ("completed", report.completed),
            ("cache hits", report.cache_hits),
            ("shed offers", report.shed),
            ("retries", report.retries),
            ("dropped", report.dropped),
            ("achieved QPS", f"{report.qps_achieved:.2f}"),
            ("latency p50", f"{report.latency_p50:.4f}"),
            ("latency p99", f"{report.latency_p99:.4f}"),
            ("shed rate", f"{report.shed_rate:.3f}"),
            ("cache hit rate", f"{report.cache_hit_rate:.3f}"),
            ("rank refreshes", report.rank_refreshes),
            ("index update messages", report.index_update_messages),
            ("peak queue depth", report.peak_queue_depth),
            ("pagerank converged", str(report.runtime.converged)),
            ("digest", report.digest[:16]),
        ]
        if ranks_identical is not None:
            rows.append(("ranks identical to control", str(ranks_identical)))
        print(format_table(["metric", "value"], rows, title="Query-serving run"))
        for p in problems:
            print(f"INVARIANT VIOLATION: {p}")
    return 1 if problems else 0
