"""repro.serve — the query-serving layer (paper §2.4, docs/SERVING.md).

The paper's deliverable is a *service*: distributed keyword search
ranked by pagerank, answered peer-to-peer over the DHT index while the
chaotic iteration keeps ranks fresh in the background.  This package
is that serving path:

* :class:`~repro.serve.loadgen.LoadGenerator` — seeded open-/closed-
  loop Zipf-skewed query load;
* :class:`~repro.serve.admission.AdmissionController` — bounded
  per-peer queues with shed + capped-backoff retry;
* :class:`~repro.serve.router.QueryRouter` — the §2.4.3 top-x%
  incremental protocol priced on the §4.6 transfer model, with §3.2
  location-cache reuse for term-owner discovery;
* :class:`~repro.serve.cache.ResultCache` — TTL + rank-version
  invalidating result cache bound to the staleness ε;
* :class:`~repro.serve.service.ServeSession` — one bitwise-
  reproducible session mounting all of it on a live
  :class:`~repro.runtime.AsyncPeerRuntime`.

CLI: ``python -m repro serve`` (see docs/API.md); metrics:
``serve.*`` (docs/OBSERVABILITY.md §13).
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.cache import CachedResult, ResultCache, ResultCacheStats
from repro.serve.loadgen import LoadGenerator, QueryArrival
from repro.serve.router import QueryRouter, RoutedQuery
from repro.serve.service import (
    QueryRecord,
    ServeConfig,
    ServeReport,
    ServeSession,
    run_serve,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "CachedResult",
    "ResultCache",
    "ResultCacheStats",
    "LoadGenerator",
    "QueryArrival",
    "QueryRouter",
    "RoutedQuery",
    "QueryRecord",
    "ServeConfig",
    "ServeReport",
    "ServeSession",
    "run_serve",
]
