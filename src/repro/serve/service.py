"""The query-serving session: load + routing over a live runtime.

This is the paper's end product assembled (§2.4, §4.9): peers keep the
chaotic pagerank iteration running in the background
(:class:`~repro.runtime.AsyncPeerRuntime`, deterministic scheduler)
while the same peer population answers rank-ordered keyword queries
over the distributed index.  :class:`ServeSession` wires the pieces:

* a seeded :class:`~repro.serve.loadgen.LoadGenerator` offers queries;
* an :class:`~repro.serve.admission.AdmissionController` bounds each
  entry peer's queue, shedding into capped-backoff retries;
* a :class:`~repro.serve.router.QueryRouter` executes admitted queries
  with the §2.4.3 top-x% protocol, priced on the §4.6 transfer model;
* a :class:`~repro.serve.cache.ResultCache` answers repeats, dropped
  whenever the background ranks drift past the staleness bound ε and
  the index is refreshed (§2.4.2 index-update messages).

Serving shares the runtime's virtual clock through ``round_hook`` but
is **read-only** towards the computation: query traffic is priced on
its own channel and the hook only ever *reads* runtime state
(:meth:`~repro.runtime.AsyncPeerRuntime.gather_ranks`), so ranks with
serving enabled are byte-identical to a serving-disabled run of the
same seed — the invariant ``make serve-smoke`` checks
(docs/SERVING.md, "Determinism contract").
"""

from __future__ import annotations

import asyncio
import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.transport import ReliabilityConfig
from repro.obs import get_registry
from repro.p2p import DocumentPlacement, P2PNetwork
from repro.runtime import AsyncPeerRuntime, RuntimeReport
from repro.search.baseline import order_terms
from repro.search.bloom import DOC_ID_BYTES
from repro.search.corpus import CorpusConfig, synthesize_corpus
from repro.search.index import DistributedIndex
from repro.search.query import Query
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.loadgen import LoadGenerator, QueryArrival
from repro.serve.router import QueryRouter
from repro.simulation.timing import RATE_200KBPS, TransferModel

__all__ = ["ServeConfig", "ServeReport", "ServeSession", "QueryRecord", "run_serve"]


class _ServeInstruments:
    """Registry handles for the serving layer's emissions (no-op under
    the default disabled registry).  Catalogued in
    docs/OBSERVABILITY.md §13."""

    __slots__ = (
        "offered", "completed", "shed", "retried", "dropped",
        "cache_hits", "cache_misses", "cache_invalidations",
        "rank_refreshes", "index_updates", "latency", "dht_hops",
        "wire_bytes", "queue_peak", "achieved_qps", "shed_rate",
        "hit_rate",
    )

    def __init__(self, reg) -> None:
        self.offered = reg.counter(
            "serve.queries_offered", unit="queries",
            description="queries offered by the load generator (first attempts)",
        )
        self.completed = reg.counter(
            "serve.queries_completed", unit="queries",
            description="queries answered (routed or cache-served)",
        )
        self.shed = reg.counter(
            "serve.queries_shed", unit="offers",
            description="admission refusals at a full entry-peer queue",
        )
        self.retried = reg.counter(
            "serve.queries_retried", unit="offers",
            description="backoff re-offers of previously shed queries",
        )
        self.dropped = reg.counter(
            "serve.queries_dropped", unit="queries",
            description="queries abandoned after the retry budget",
        )
        self.cache_hits = reg.counter(
            "serve.cache_hits", unit="lookups",
            description="result-cache lookups answered without routing",
        )
        self.cache_misses = reg.counter(
            "serve.cache_misses", unit="lookups",
            description="result-cache lookups that had to route",
        )
        self.cache_invalidations = reg.counter(
            "serve.cache_invalidations", unit="entries",
            description="cached results dropped by TTL or rank-version bump",
        )
        self.rank_refreshes = reg.counter(
            "serve.rank_refreshes", unit="refreshes",
            description="index refreshes after rank drift crossed ε",
        )
        self.index_updates = reg.counter(
            "serve.index_update_messages", unit="messages",
            description="§2.4.2 index-update messages charged by refreshes",
        )
        self.latency = reg.histogram(
            "serve.query_latency", unit="time",
            description="arrival-to-answer latency per completed query",
        )
        self.dht_hops = reg.counter(
            "serve.dht_hops", unit="hops",
            description="Chord hops paid for term-owner discovery",
        )
        self.wire_bytes = reg.counter(
            "serve.bytes_on_wire", unit="bytes",
            description="priced query traffic (doc ids + control messages)",
        )
        self.queue_peak = reg.gauge(
            "serve.queue_depth_peak", unit="queries",
            description="largest entry-peer queue depth observed",
        )
        self.achieved_qps = reg.gauge(
            "serve.achieved_qps", unit="queries/time",
            description="completed queries per clock unit over the run",
        )
        self.shed_rate = reg.gauge(
            "serve.shed_rate", unit="ratio",
            description="shed offers / total offers at run end",
        )
        self.hit_rate = reg.gauge(
            "serve.cache_hit_rate", unit="ratio",
            description="result-cache hit rate at run end",
        )


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one serving session.

    Times are virtual-clock units (the runtime's ``pass_time=1.0``
    deterministic base — treat them as seconds).  See docs/SERVING.md
    for how each knob maps onto the query path.
    """

    docs: int = 400
    peers: int = 16
    seed: int = 0
    qps: float = 50.0
    duration: float = 30.0
    loop: str = "open"
    clients: int = 8
    think_time: float = 0.0
    cache_ttl: float = 5.0
    cache_capacity: Optional[int] = None
    staleness_epsilon: float = 0.05
    refresh_every: int = 5
    fraction: float = 0.2
    min_forward: int = 20
    route_order: str = "given"
    user_top_k: Optional[int] = 50
    queue_capacity: int = 8
    rate_bytes_per_s: float = float(RATE_200KBPS)
    service_time: float = 0.002
    epsilon: float = 1e-3
    num_distinct: int = 50
    terms_per_query: int = 2
    term_pool_size: int = 100
    zipf_exponent: float = 1.0
    retry_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.loop not in ("open", "closed"):
            raise ValueError(f"loop must be 'open' or 'closed', got {self.loop!r}")
        if self.docs < 2:
            raise ValueError(f"docs must be >= 2, got {self.docs}")
        if self.peers < 1:
            raise ValueError(f"peers must be >= 1, got {self.peers}")
        if self.qps <= 0:
            raise ValueError(f"qps must be > 0, got {self.qps}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.cache_ttl < 0:
            raise ValueError(f"cache_ttl must be >= 0, got {self.cache_ttl}")
        if self.staleness_epsilon <= 0:
            raise ValueError(
                f"staleness_epsilon must be > 0, got {self.staleness_epsilon}"
            )
        if self.refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {self.refresh_every}")


@dataclass(frozen=True)
class QueryRecord:
    """One completed (or dropped) query, in completion order."""

    arrival_time: float
    finish_time: float
    latency: float
    attempts: int
    cache_hit: bool
    dropped: bool
    num_hits: int
    entry_peer: int


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one serving session (docs/SERVING.md).

    Latency percentiles are over completed queries' arrival-to-answer
    times; ``digest`` is a SHA-256 over every completion's result set
    and timing — two runs of the same config are bitwise reproducible
    iff their digests match.
    """

    offered: int
    completed: int
    cache_hits: int
    shed: int
    retries: int
    dropped: int
    qps_achieved: float
    latency_p50: float
    latency_p99: float
    latency_mean: float
    latency_max: float
    shed_rate: float
    cache_hit_rate: float
    rank_refreshes: int
    index_update_messages: int
    traffic_doc_ids: int
    bytes_on_wire: int
    dht_hops: int
    peak_queue_depth: int
    digest: str
    records: Tuple[QueryRecord, ...]
    runtime: RuntimeReport

    def verify_invariants(self, config: ServeConfig) -> List[str]:
        """The serve-smoke probes; empty list means all hold.

        * conservation — every offered query completes or is dropped;
        * no silent drops — a dropped query exhausted its full retry
          budget first;
        * bounded queues — peak depth never exceeded the configured
          capacity (overload became shed rate, not memory).
        """
        problems: List[str] = []
        if self.offered != self.completed + self.dropped:
            problems.append(
                f"conservation: offered={self.offered} != "
                f"completed={self.completed} + dropped={self.dropped}"
            )
        budget = ReliabilityConfig().max_retries
        for r in self.records:
            if r.dropped and r.attempts < budget + 1:
                problems.append(
                    f"dropped without full retry budget: attempts={r.attempts}"
                )
                break
        if self.peak_queue_depth > config.queue_capacity:
            problems.append(
                f"queue bound violated: peak={self.peak_queue_depth} > "
                f"capacity={config.queue_capacity}"
            )
        return problems


def _corpus_config(docs: int) -> CorpusConfig:
    """Scale the paper's corpus profile down to ``docs`` documents so
    serving scenarios stay cheap (§4.9 defaults at full size)."""
    vocab = max(50, min(1_880, docs))
    stop = max(5, vocab // 20)
    return CorpusConfig(
        num_documents=docs,
        vocab_size=vocab,
        num_stopwords=stop,
        raw_vocab_size=max(4 * vocab, vocab + stop + 1),
        mean_terms_per_doc=min(800.0, max(30.0, docs / 5.0)),
    )


# Event kinds, ordered so simultaneous events process deterministically
# (completions free queue slots before new arrivals contend for them).
_FINISH, _ARRIVE = 0, 1


@dataclass(order=True)
class _Event:
    time: float
    kind: int
    seq: int
    arrival: Optional[QueryArrival] = field(compare=False, default=None)
    attempt: int = field(compare=False, default=1)
    record: Optional[QueryRecord] = field(compare=False, default=None)
    hits: Tuple[int, ...] = field(compare=False, default=())
    version: int = field(compare=False, default=0)


class ServeSession:
    """One seeded, bitwise-reproducible serving run.

    Builds the corpus, index, runtime, and serving components from a
    :class:`ServeConfig`; :meth:`run` executes the background pagerank
    computation with the query loop riding its ``round_hook`` and
    returns a :class:`ServeReport`.  Sessions are single-shot, like the
    runtime they wrap.

    ``tiebreak`` (the sanitizer explorer's schedule perturbation) and
    ``registry`` pass straight through to the runtime.
    """

    def __init__(self, config: ServeConfig, *, tiebreak=None, registry=None) -> None:
        self.config = config
        reg = registry if registry is not None else get_registry()
        self._obs = _ServeInstruments(reg)
        self.corpus = synthesize_corpus(
            _corpus_config(config.docs), seed=config.seed, with_links=True
        )
        graph = self.corpus.link_graph
        assert graph is not None
        placement = DocumentPlacement.random(
            config.docs, config.peers, seed=config.seed + 1
        )
        self.network = P2PNetwork(config.peers, placement)
        self.runtime = AsyncPeerRuntime(
            graph,
            self.network,
            epsilon=config.epsilon,
            seed=config.seed + 2,
            tiebreak=tiebreak,
            registry=registry,
        )
        init_ranks = np.full(config.docs, 1.0, dtype=np.float64)
        self.index = DistributedIndex(self.corpus, init_ranks, config.peers)
        self._published_ranks = init_ranks
        self.router = QueryRouter(
            self.index,
            self.network.ring,
            TransferModel(rate_bytes_per_s=config.rate_bytes_per_s),
            fraction=config.fraction,
            min_forward=config.min_forward,
            route_order=config.route_order,
            user_top_k=config.user_top_k,
            service_time=config.service_time,
        )
        self.cache = (
            ResultCache(config.cache_ttl, capacity=config.cache_capacity)
            if config.cache_ttl > 0
            else None
        )
        self.admission = AdmissionController(
            config.queue_capacity, retry_scale=config.retry_scale
        )
        self.loadgen = LoadGenerator(
            self.corpus,
            config.peers,
            seed=config.seed + 3,
            num_distinct=config.num_distinct,
            terms_per_query=config.terms_per_query,
            term_pool_size=config.term_pool_size,
            zipf_exponent=config.zipf_exponent,
        )
        self.rank_version = 0
        self._events: List[_Event] = []
        self._seq = 0
        self._peer_free: Dict[int, float] = {}
        self._records: List[QueryRecord] = []
        self._latencies: List[float] = []
        self._traffic_doc_ids = 0
        self._bytes_on_wire = 0
        self._dht_hops = 0
        self._offered = 0
        self._cache_hits = 0
        self._dropped = 0
        self._refreshes = 0
        self._index_messages = 0
        self._active_clients = 0
        self._done = False

    # ------------------------------------------------------------------
    def _push(self, event: _Event) -> None:
        heapq.heappush(self._events, event)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _schedule_arrival(self, arrival: QueryArrival, attempt: int = 1) -> None:
        self._push(
            _Event(
                time=arrival.time,
                kind=_ARRIVE,
                seq=self._next_seq(),
                arrival=arrival,
                attempt=attempt,
            )
        )

    def _seed_load(self) -> None:
        cfg = self.config
        if cfg.loop == "open":
            for arrival in self.loadgen.open_arrivals(cfg.qps, cfg.duration):
                self._schedule_arrival(arrival)
        else:
            for _ in range(cfg.clients):
                self._schedule_arrival(self.loadgen.sample(0.0))
                self._active_clients += 1

    # ------------------------------------------------------------------
    def _cache_key(self, query: Query) -> Tuple:
        return query.terms

    def _complete(
        self,
        arrival: QueryArrival,
        finish: float,
        *,
        attempts: int,
        cache_hit: bool,
        num_hits: int,
        entry_peer: int,
    ) -> None:
        latency = finish - arrival.time
        record = QueryRecord(
            arrival_time=arrival.time,
            finish_time=finish,
            latency=latency,
            attempts=attempts,
            cache_hit=cache_hit,
            dropped=False,
            num_hits=num_hits,
            entry_peer=entry_peer,
        )
        self._records.append(record)
        self._latencies.append(latency)
        self._obs.completed.inc()
        self._obs.latency.observe(latency)
        if self.config.loop == "closed":
            next_time = finish + self.config.think_time
            if next_time < self.config.duration:
                self._schedule_arrival(self.loadgen.sample(next_time))
            else:
                self._active_clients -= 1

    def _handle_arrival(self, event: _Event) -> None:
        arrival = event.arrival
        assert arrival is not None
        now = event.time
        if event.attempt == 1:
            self._offered += 1
            self._obs.offered.inc()
        else:
            self._obs.retried.inc()
        key = self._cache_key(arrival.query)
        if self.cache is not None and event.attempt == 1:
            entry = self.cache.get(key, now, self.rank_version)
            if entry is not None:
                self._cache_hits += 1
                self._obs.cache_hits.inc()
                # Cache hit: only the answer travels back to the user.
                wire = len(entry.hits) * DOC_ID_BYTES
                latency = wire / self.config.rate_bytes_per_s
                self._bytes_on_wire += wire
                self._complete(
                    arrival,
                    now + latency,
                    attempts=event.attempt,
                    cache_hit=True,
                    num_hits=len(entry.hits),
                    entry_peer=arrival.portal_peer,
                )
                return
            self._obs.cache_misses.inc()
        first_term = order_terms(self.index, arrival.query, self.config.route_order)[0]
        entry_peer, _ = self.router.owner_of_term(
            first_term, from_peer=arrival.portal_peer
        )
        if not self.admission.try_admit(entry_peer, attempt=event.attempt):
            self._obs.shed.inc()
            retry_time = self.admission.retry_at(now, event.attempt)
            if retry_time is None:
                self._dropped += 1
                self._obs.dropped.inc()
                self._records.append(
                    QueryRecord(
                        arrival_time=arrival.time,
                        finish_time=now,
                        latency=now - arrival.time,
                        attempts=event.attempt,
                        cache_hit=False,
                        dropped=True,
                        num_hits=0,
                        entry_peer=entry_peer,
                    )
                )
                if self.config.loop == "closed":
                    next_time = now + self.config.think_time
                    if next_time < self.config.duration:
                        self._schedule_arrival(self.loadgen.sample(next_time))
                    else:
                        self._active_clients -= 1
                return
            self._schedule_arrival(
                QueryArrival(
                    time=retry_time,
                    query=arrival.query,
                    portal_peer=arrival.portal_peer,
                ),
                attempt=event.attempt + 1,
            )
            return
        routed = self.router.route(arrival.query, arrival.portal_peer)
        self._traffic_doc_ids += routed.traffic_doc_ids
        self._bytes_on_wire += routed.bytes_on_wire
        self._dht_hops += routed.dht_hops
        self._obs.dht_hops.inc(routed.dht_hops)
        self._obs.wire_bytes.inc(routed.bytes_on_wire)
        # The entry peer serialises its admitted queries (the Eq. 4
        # serialised-transfer reading): queueing delay is time spent
        # waiting for the peer to free up.
        start = max(now, self._peer_free.get(entry_peer, 0.0))
        finish = start + routed.latency
        self._peer_free[entry_peer] = finish
        record_finish = _Event(
            time=finish,
            kind=_FINISH,
            seq=self._next_seq(),
            arrival=arrival,
            attempt=event.attempt,
            hits=routed.hits,
            version=self.rank_version,
        )
        record_finish.record = QueryRecord(
            arrival_time=arrival.time,
            finish_time=finish,
            latency=finish - arrival.time,
            attempts=event.attempt,
            cache_hit=False,
            dropped=False,
            num_hits=len(routed.hits),
            entry_peer=entry_peer,
        )
        self._push(record_finish)

    def _handle_finish(self, event: _Event) -> None:
        record = event.record
        arrival = event.arrival
        assert record is not None and arrival is not None
        self.admission.release(record.entry_peer)
        if self.cache is not None:
            # Cacheable only once computed, under the rank version the
            # routing actually read — a refresh mid-execution leaves
            # the entry born stale and it is refused at next lookup.
            self.cache.put(
                self._cache_key(arrival.query), event.hits, event.time,
                event.version,
            )
        self._complete(
            arrival,
            event.time,
            attempts=record.attempts,
            cache_hit=False,
            num_hits=record.num_hits,
            entry_peer=record.entry_peer,
        )

    def _drain(self, now: float) -> None:
        while self._events and self._events[0].time <= now:
            event = heapq.heappop(self._events)
            if event.kind == _ARRIVE:
                self._handle_arrival(event)
            else:
                self._handle_finish(event)

    # ------------------------------------------------------------------
    def _maybe_refresh(self, runtime: AsyncPeerRuntime) -> None:
        ranks = runtime.gather_ranks()
        denom = np.maximum(np.abs(self._published_ranks), 1e-12)
        drift = float(np.max(np.abs(ranks - self._published_ranks) / denom))
        if drift <= self.config.staleness_epsilon:
            return
        messages = self.index.refresh_ranks(ranks)
        self._published_ranks = ranks.copy()
        self.rank_version += 1
        self._refreshes += 1
        self._index_messages += messages
        self._obs.rank_refreshes.inc()
        self._obs.index_updates.inc(messages)
        if self.cache is not None:
            before = self.cache.stats.invalidations
            self.cache.invalidate_version(self.rank_version)
            self._obs.cache_invalidations.inc(
                self.cache.stats.invalidations - before
            )

    def _round_hook(self, rounds: int, runtime: AsyncPeerRuntime) -> None:
        if rounds % self.config.refresh_every == 0:
            self._maybe_refresh(runtime)
        self._drain(runtime.clock_now)

    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Execute the session and return its report (single-shot)."""
        if self._done:
            raise RuntimeError("ServeSession is single-shot; build a new one")
        self._done = True
        self._seed_load()
        runtime_report = asyncio.run(self.runtime.run(round_hook=self._round_hook))
        # The computation quiesced (or the load outlived it): publish
        # the final ranks if they drifted, then serve out the backlog.
        self._maybe_refresh(self.runtime)
        self._drain(float("inf"))
        return self._build_report(runtime_report)

    def _build_report(self, runtime_report: RuntimeReport) -> ServeReport:
        lat = np.asarray(self._latencies, dtype=np.float64)
        completed = len(self._latencies)
        p50 = float(np.percentile(lat, 50)) if lat.size else 0.0
        p99 = float(np.percentile(lat, 99)) if lat.size else 0.0
        mean = float(lat.mean()) if lat.size else 0.0
        worst = float(lat.max()) if lat.size else 0.0
        qps_achieved = completed / self.config.duration
        shed_rate = self.admission.stats.shed_rate
        hit_rate = self.cache.stats.hit_rate if self.cache is not None else 0.0
        digest = hashlib.sha256()
        for r in self._records:
            digest.update(
                f"{r.arrival_time:.9f}|{r.finish_time:.9f}|{r.attempts}|"
                f"{int(r.cache_hit)}|{int(r.dropped)}|{r.num_hits}|"
                f"{r.entry_peer}\n".encode()
            )
        self._obs.queue_peak.set(self.admission.stats.peak_depth)
        self._obs.achieved_qps.set(qps_achieved)
        self._obs.shed_rate.set(shed_rate)
        self._obs.hit_rate.set(hit_rate)
        return ServeReport(
            offered=self._offered,
            completed=completed,
            cache_hits=self._cache_hits,
            shed=self.admission.stats.shed,
            retries=self.admission.stats.retries,
            dropped=self._dropped,
            qps_achieved=qps_achieved,
            latency_p50=p50,
            latency_p99=p99,
            latency_mean=mean,
            latency_max=worst,
            shed_rate=shed_rate,
            cache_hit_rate=hit_rate,
            rank_refreshes=self._refreshes,
            index_update_messages=self._index_messages,
            traffic_doc_ids=self._traffic_doc_ids,
            bytes_on_wire=self._bytes_on_wire,
            dht_hops=self._dht_hops,
            peak_queue_depth=self.admission.stats.peak_depth,
            digest=digest.hexdigest(),
            records=tuple(self._records),
            runtime=runtime_report,
        )


def run_serve(
    config: ServeConfig, *, tiebreak=None, registry=None
) -> ServeReport:
    """Build and run one :class:`ServeSession` (docs/SERVING.md)."""
    return ServeSession(config, tiebreak=tiebreak, registry=registry).run()
