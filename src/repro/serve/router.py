"""Query routing over the distributed index (paper §2.4.3).

A query enters the system at a *portal* peer (the user's access
point), which resolves the peer owning the first term's GUID through
the DHT, forwards the query there, and the §2.4.3 incremental protocol
takes over: each index peer intersects, rank-sorts, and forwards the
top x% of surviving hits to the owner of the next term; the last peer
returns the final rank-sorted set to the user.

:class:`QueryRouter` executes that plan against a
:class:`~repro.search.index.DistributedIndex` and *prices* it with the
paper's §4.6 transfer model:

* term-owner discovery routes through the Chord ring, reusing the §3.2
  :class:`~repro.p2p.cache.LocationCache` per sending peer (with a
  term-namespace GUID), so repeat lookups of popular terms go direct;
* each DHT routing hop costs one 24-byte control message;
* each forwarding hop ships the surviving doc ids at
  ``DOC_ID_BYTES`` per id (the §2.4.4 compact-id sizing);
* every index peer visited charges a constant per-hop service time.

Transfers serialise along the query path (the Table 3 reading of
Eq. 4), so a query's service latency is the sum of its hop costs.
Queueing delay is added by the caller (docs/SERVING.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.p2p.cache import LocationCache
from repro.p2p.chord import ChordRing
from repro.p2p.guid import guid_of
from repro.search.baseline import order_terms
from repro.search.bloom import DOC_ID_BYTES
from repro.search.incremental import DEFAULT_MIN_FORWARD, incremental_search
from repro.search.index import DistributedIndex
from repro.search.query import Query
from repro.simulation.timing import TransferModel

__all__ = ["QueryRouter", "RoutedQuery"]


def _term_guid(term: int) -> int:
    return guid_of(str(term), namespace="term")


@dataclass(frozen=True)
class RoutedQuery:
    """Outcome of routing one query through the index peers.

    Attributes
    ----------
    terms:
        The query terms in routing order.
    peers:
        The index peers visited, one per term (ring owners of the
        term GUIDs).
    hits:
        Final rank-sorted result document ids.
    latency:
        Service latency in virtual-clock units: DHT lookups +
        forwarding transfers + per-hop service time, serialised.
    traffic_doc_ids:
        Total document ids moved, including the return to the user.
    dht_hops:
        Chord routing hops paid for term-owner discovery (0 when every
        lookup hit a location cache).
    bytes_on_wire:
        Priced bytes: forwarded ids at ``DOC_ID_BYTES`` each plus one
        24-byte control message per DHT hop and per query forward.
    hop_sizes:
        Document ids shipped per forwarding hop (final entry is the
        return to the user).
    """

    terms: Tuple[int, ...]
    peers: Tuple[int, ...]
    hits: Tuple[int, ...]
    latency: float
    traffic_doc_ids: int
    dht_hops: int
    bytes_on_wire: int
    hop_sizes: Tuple[int, ...]


class QueryRouter:
    """Route multi-term queries peer-to-peer with top-x% forwarding.

    Parameters
    ----------
    index:
        The distributed inverted index holding postings + ranks.
    ring:
        Chord ring used for term-owner discovery (ring-successor
        ownership of the term GUID — the DHT view of the same
        partitioning the index's hash assignment approximates).
    model:
        §4.6 transfer model pricing wire time.
    fraction:
        Top-x% forwarded per hop, in (0, 1].
    min_forward:
        The paper's all-or-top forwarding floor (default 20).
    route_order:
        ``"given"`` or ``"rarest_first"`` term visiting order.
    user_top_k:
        Optional §4.9 pagination cap on the final result.
    service_time:
        Constant per-index-peer compute charge per hop, in clock units.
    """

    def __init__(
        self,
        index: DistributedIndex,
        ring: ChordRing,
        model: TransferModel,
        *,
        fraction: float = 0.1,
        min_forward: int = DEFAULT_MIN_FORWARD,
        route_order: str = "given",
        user_top_k: int | None = None,
        service_time: float = 0.0,
    ) -> None:
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        self.index = index
        self.ring = ring
        self.model = model
        self.fraction = float(fraction)
        self.min_forward = int(min_forward)
        self.route_order = route_order
        self.user_top_k = user_top_k
        self.service_time = float(service_time)
        self._caches: Dict[int, LocationCache] = {}

    def cache_of(self, peer: int) -> LocationCache:
        """The term-location cache of ``peer`` (created on first use)."""
        cache = self._caches.get(peer)
        if cache is None:
            cache = LocationCache(peer, self.ring, guid_fn=_term_guid)
            self._caches[peer] = cache
        return cache

    def owner_of_term(self, term: int, *, from_peer: int) -> Tuple[int, int]:
        """(owner peer, DHT hops paid) resolving ``term`` from
        ``from_peer`` through its location cache."""
        cache = self.cache_of(from_peer)
        before = cache.stats.routed_hops
        owner = cache.locate(term)
        return owner, cache.stats.routed_hops - before

    def route(self, query: Query, portal_peer: int) -> RoutedQuery:
        """Execute and price ``query`` entering at ``portal_peer``."""
        terms = order_terms(self.index, query, self.route_order)
        outcome = incremental_search(
            self.index,
            query,
            fraction=self.fraction,
            min_forward=self.min_forward,
            route_order=self.route_order,
            user_top_k=self.user_top_k,
        )
        msg = self.model.message_size_bytes
        rate = self.model.rate_bytes_per_s
        peers = []
        current = portal_peer
        total_hops = 0
        wire_bytes = 0
        latency = 0.0
        for i, term in enumerate(terms):
            owner, hops = self.owner_of_term(term, from_peer=current)
            peers.append(owner)
            total_hops += hops
            # Control traffic: the lookup's routed hops plus the query
            # forward itself, one 24 B message each.
            control = (hops + 1) * msg
            # Forwarded hit ids ride the same transfer (none ahead of
            # the first index peer).
            forwarded = outcome.hop_sizes[i - 1] if i > 0 else 0
            payload = forwarded * DOC_ID_BYTES
            wire_bytes += control + payload
            latency += (control + payload) / rate + self.service_time
            current = owner
        # Final hop: the result set back to the user.
        result_bytes = outcome.hop_sizes[-1] * DOC_ID_BYTES
        wire_bytes += result_bytes
        latency += result_bytes / rate
        return RoutedQuery(
            terms=tuple(int(t) for t in terms),
            peers=tuple(peers),
            hits=tuple(int(d) for d in outcome.hits),
            latency=latency,
            traffic_doc_ids=outcome.traffic_doc_ids,
            dht_hops=total_hops,
            bytes_on_wire=wire_bytes,
            hop_sizes=outcome.hop_sizes,
        )

    def location_cache_stats(self) -> Tuple[int, int, int]:
        """(hits, misses, routed_hops) summed over all peer caches."""
        hits = sum(c.stats.hits for c in self._caches.values())
        misses = sum(c.stats.misses for c in self._caches.values())
        hops = sum(c.stats.routed_hops for c in self._caches.values())
        return hits, misses, hops
