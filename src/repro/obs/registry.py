"""Process-local metrics registry (counters, gauges, histograms, timers).

The paper's whole evaluation is *measured* behaviour — convergence
passes (Table 1), message counts (Table 3), bytes on the wire and the
Eq. 4 execution time (§4.6) — and the ROADMAP's "no optimisation
without measuring" rule needs those measurements to come from one
shared instrument set instead of ad hoc arithmetic inside each engine.
This module provides that set:

* :class:`Counter` — monotonically increasing totals (messages sent,
  passes executed);
* :class:`Gauge` — last-observed values (current residual, live peers);
* :class:`Histogram` — bounded-memory distributions with exact
  count/total and percentile estimates (DHT hops, store depth);
* :class:`TimerMetric` — the existing :class:`repro._util.timers.Timer`
  folded into the registry so per-pass wall-clock shows up in the same
  snapshot.

All instruments are created *through* a :class:`MetricsRegistry`, and
the process-wide default registry is a :class:`NullRegistry` whose
instruments are shared no-op singletons: an uninstrumented run pays
only empty method calls, never allocation or arithmetic, so the
vectorized engines' timings do not regress (and their numerical output
is untouched either way — instrumentation only ever *reads* engine
state).

Enable collection for a region of code with::

    from repro import obs
    with obs.use_registry(obs.MetricsRegistry()) as reg:
        report = engine.run()
        print(obs.render_snapshot(reg.snapshot()))

or process-wide with :func:`enable` / :func:`disable`.  See
``docs/OBSERVABILITY.md`` for the metric catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro._util.timers import Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimerMetric",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "use_registry",
]


class Counter:
    """Monotonically increasing count (messages, passes, bytes)."""

    __slots__ = ("name", "unit", "description", "value")

    def __init__(self, name: str, unit: str = "count", description: str = "") -> None:
        self.name = name
        self.unit = unit
        self.description = description
        self.value: Union[int, float] = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {n})")
        self.value += n

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "counter",
            "unit": self.unit,
            "description": self.description,
            "value": self.value,
        }


class Gauge:
    """Last-observed value (current residual, live peers right now)."""

    __slots__ = ("name", "unit", "description", "value")

    def __init__(self, name: str, unit: str = "value", description: str = "") -> None:
        self.name = name
        self.unit = unit
        self.description = description
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "gauge",
            "unit": self.unit,
            "description": self.description,
            "value": self.value,
        }


class Histogram:
    """Distribution with exact count/sum and sampled percentiles.

    ``count``, ``total``, ``min`` and ``max`` are exact over every
    observation.  Percentiles come from a bounded sample buffer: when
    ``max_samples`` is reached the buffer is decimated (every other
    sample kept) and the keep-stride doubles, so memory stays O(cap)
    while the kept samples remain an even, deterministic thinning of
    the stream — no RNG, so test runs reproduce exactly.
    """

    __slots__ = (
        "name",
        "unit",
        "description",
        "count",
        "total",
        "min",
        "max",
        "max_samples",
        "_samples",
        "_stride",
        "_pending",
    )

    def __init__(
        self,
        name: str,
        unit: str = "value",
        description: str = "",
        *,
        max_samples: int = 4096,
    ) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.unit = unit
        self.description = description
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = int(max_samples)
        self._samples: List[float] = []
        self._stride = 1
        self._pending = 0  # observations until the next kept sample

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._pending == 0:
            self._samples.append(value)
            self._pending = self._stride - 1
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        else:
            self._pending -= 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0-100) from kept samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def snapshot(self) -> Dict[str, object]:
        empty = self.count == 0
        return {
            "type": "histogram",
            "unit": self.unit,
            "description": self.description,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


@dataclass
class TimerMetric(Timer):
    """The :class:`~repro._util.timers.Timer` as a named registry
    instrument — same context-manager protocol (``with t: ...``), plus
    the metadata and ``snapshot()`` the registry needs."""

    name: str = ""
    unit: str = "seconds"
    description: str = ""

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "timer",
            "unit": self.unit,
            "description": self.description,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named instrument store: get-or-create semantics per metric name.

    Instruments are identified by dotted names whose first segment is
    the emitting layer (``core.``, ``p2p.``, ``sim.`` — see
    ``docs/OBSERVABILITY.md``).  Asking twice for the same name returns
    the same instrument; asking for an existing name as a different
    instrument type raises ``TypeError``.
    """

    #: Real registries record; the null registry advertises False so hot
    #: paths can skip building trace payloads entirely.
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- instrument factories ------------------------------------------
    def counter(self, name: str, *, unit: str = "count", description: str = "") -> Counter:
        return self._get_or_create(Counter, name, unit, description)

    def gauge(self, name: str, *, unit: str = "value", description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, unit, description)

    def histogram(
        self,
        name: str,
        *,
        unit: str = "value",
        description: str = "",
        max_samples: int = 4096,
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = Histogram(
                name, unit, description, max_samples=max_samples
            )
        elif not isinstance(existing, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {type(existing).__name__}"
            )
        return existing

    def timer(self, name: str, *, description: str = "") -> TimerMetric:
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = TimerMetric(
                name=name, description=description
            )
        elif not isinstance(existing, TimerMetric):
            raise TypeError(
                f"metric {name!r} already registered as {type(existing).__name__}"
            )
        return existing

    def _get_or_create(self, cls, name: str, unit: str, description: str):
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = cls(name, unit, description)
        elif type(existing) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(existing).__name__}"
            )
        return existing

    # -- introspection --------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name`` (``None`` if absent)."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy of every metric, keyed by name.

        The returned dict is plain data (JSON-serialisable) — safe to
        store, diff, or attach to a results file.
        """
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def clear(self) -> None:
        """Drop every registered instrument."""
        self._metrics.clear()


# ----------------------------------------------------------------------
# No-op twin: the zero-cost default
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: Union[int, float] = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(TimerMetric):
    def __enter__(self) -> "TimerMetric":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_TIMER = _NullTimer(name="null")


class NullRegistry(MetricsRegistry):
    """The default, disabled registry: every factory hands back a
    shared no-op instrument, ``snapshot()`` is always empty, and
    ``enabled`` is False so instrumentation sites can skip any work
    beyond the (empty) method call itself."""

    enabled = False

    def counter(self, name: str, *, unit: str = "count", description: str = "") -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, *, unit: str = "value", description: str = "") -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        *,
        unit: str = "value",
        description: str = "",
        max_samples: int = 4096,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str, *, description: str = "") -> TimerMetric:
        return _NULL_TIMER


#: The process-wide disabled registry (also the initial default).
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the no-op one unless enabled)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one and return it."""
    global _active
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {type(registry).__name__}")
    _active = registry
    return registry


def enable() -> MetricsRegistry:
    """Turn collection on process-wide.

    Installs a fresh :class:`MetricsRegistry` if the active one is the
    no-op registry; returns the already-active registry otherwise (so
    repeated ``enable()`` calls don't silently drop collected data).
    """
    if _active.enabled:
        return _active
    return set_registry(MetricsRegistry())


def disable() -> None:
    """Turn collection off process-wide (back to the no-op registry)."""
    set_registry(NULL_REGISTRY)


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scoped activation: install ``registry`` (default: a fresh one)
    for the ``with`` body, restoring the previous registry after.

    >>> from repro.obs import use_registry
    >>> with use_registry() as reg:
    ...     reg.counter("demo.events").inc()
    ...     reg.snapshot()["demo.events"]["value"]
    1
    """
    previous = _active
    reg = set_registry(registry if registry is not None else MetricsRegistry())
    try:
        yield reg
    finally:
        set_registry(previous)
