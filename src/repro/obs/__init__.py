"""repro.obs — unified observability: metrics registry + event tracing.

One instrumentation layer for the whole system, sitting *below* every
engine in the import graph.  Two primitives:

* **Metrics** (:mod:`repro.obs.registry`): named counters, gauges,
  histograms and timers behind a :class:`MetricsRegistry`, snapshot-
  able as plain data.  The process default is a no-op registry, so all
  instrumentation is zero-cost until explicitly enabled.
* **Traces** (:mod:`repro.obs.trace`): a JSON-lines
  :class:`TraceSink` of point events and named spans, for per-pass /
  per-message timelines the aggregate metrics cannot express.

Quickstart::

    from repro import obs
    from repro.core import distributed_pagerank
    from repro.graphs import broder_graph

    with obs.use_registry() as reg:
        distributed_pagerank(broder_graph(10_000, seed=0), epsilon=1e-3)
        print(obs.render_snapshot(reg.snapshot()))

Or from the shell: ``python -m repro obs report``.  Every metric name,
its unit and its mapping to the paper's tables is documented in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimerMetric,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.report import layer_of, render_snapshot, snapshot_to_json
from repro.obs.trace import (
    NULL_TRACE_SINK,
    NullTraceSink,
    TraceSink,
    get_trace_sink,
    set_trace_sink,
    use_trace_sink,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimerMetric",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "use_registry",
    "TraceSink",
    "NullTraceSink",
    "NULL_TRACE_SINK",
    "get_trace_sink",
    "set_trace_sink",
    "use_trace_sink",
    "render_snapshot",
    "snapshot_to_json",
    "layer_of",
]
