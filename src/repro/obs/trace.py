"""Structured trace-event sink: JSON-lines events and named spans.

Metrics (``registry.py``) answer "how much, in total"; traces answer
"what happened, in order".  A :class:`TraceSink` appends one JSON
object per line to a file (or file-like object), which is the format
every log-processing tool ingests directly::

    {"ts": 1754500000.123, "kind": "span_begin", "name": "core.run", "span": 1, "fields": {...}}
    {"ts": 1754500000.125, "kind": "event", "name": "core.pass", "span": 1, "fields": {"pass": 0, ...}}
    {"ts": 1754500000.300, "kind": "span_end", "name": "core.run", "span": 1, "fields": {"duration_s": 0.17}}

Schema (every line):

``ts``
    Unix wall-clock seconds (float) at emission.
``kind``
    ``"event"`` | ``"span_begin"`` | ``"span_end"``.
``name``
    Dotted event name; the first segment is the emitting layer
    (``core.``, ``p2p.``, ``sim.``), matching the metric namespaces.
``span``
    Integer id tying a ``span_begin``/``span_end`` pair together, and
    stamped on events emitted while that span is innermost; ``null``
    outside any span.
``fields``
    Event payload: JSON scalars keyed by name.  ``span_end`` always
    carries ``duration_s`` (monotonic-clock seconds).

Like the metrics registry, the process-wide default sink is a no-op
(:class:`NullTraceSink`); engines emit unconditionally through it at
zero cost and real sinks are installed per run via
:func:`use_trace_sink` or the CLI's ``repro obs report --trace``.
Worked capture/read examples live in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import IO, Iterator, List, Optional, Union

__all__ = [
    "TraceSink",
    "NullTraceSink",
    "NULL_TRACE_SINK",
    "get_trace_sink",
    "set_trace_sink",
    "use_trace_sink",
]


class TraceSink:
    """Appends structured events to a JSON-lines stream.

    Parameters
    ----------
    target:
        A path to (over)write, or an open text file-like object (kept
        open on :meth:`close` if caller-owned).
    """

    enabled = True

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns_file = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
            self.path = str(target)
        self._next_span = 1
        self._span_stack: List[int] = []
        self.events_written = 0

    # ------------------------------------------------------------------
    def event(self, name: str, **fields) -> None:
        """Emit one point event (attributed to the innermost open span)."""
        self._write("event", name, fields)

    @contextmanager
    def span(self, name: str, **fields) -> Iterator[int]:
        """Named span: emits ``span_begin`` now and ``span_end`` (with
        ``duration_s``) when the ``with`` body exits, even on error."""
        span_id = self._next_span
        self._next_span += 1
        self._write("span_begin", name, fields, span_id=span_id)
        self._span_stack.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            self._span_stack.pop()
            self._write(
                "span_end",
                name,
                {"duration_s": time.perf_counter() - started},
                span_id=span_id,
            )

    # ------------------------------------------------------------------
    def _write(self, kind: str, name: str, fields, *, span_id: Optional[int] = None) -> None:
        if span_id is None:
            span_id = self._span_stack[-1] if self._span_stack else None
        record = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "span": span_id,
            "fields": fields,
        }
        self._file.write(json.dumps(record) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        """Flush and, if this sink opened the file, close it."""
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullSpan:
    """Reusable no-op context manager for disabled spans."""

    def __enter__(self) -> int:
        return 0

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTraceSink:
    """The default, disabled sink: every emission is a no-op."""

    enabled = False
    path = None
    events_written = 0

    def event(self, name: str, **fields) -> None:
        pass

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled sink (also the initial default).
NULL_TRACE_SINK = NullTraceSink()

_active: Union[TraceSink, NullTraceSink] = NULL_TRACE_SINK


def get_trace_sink() -> Union[TraceSink, NullTraceSink]:
    """The currently active trace sink (no-op unless one is installed)."""
    return _active


def set_trace_sink(sink: Union[TraceSink, NullTraceSink]) -> Union[TraceSink, NullTraceSink]:
    """Install ``sink`` as the active one and return it."""
    global _active
    if not hasattr(sink, "event") or not hasattr(sink, "span"):
        raise TypeError(f"expected a trace sink, got {type(sink).__name__}")
    _active = sink
    return sink


@contextmanager
def use_trace_sink(sink: Union[TraceSink, NullTraceSink]) -> Iterator[Union[TraceSink, NullTraceSink]]:
    """Scoped activation: install ``sink`` for the ``with`` body and
    restore the previous sink after (the sink is *not* closed — the
    caller owns its lifetime)."""
    previous = _active
    set_trace_sink(sink)
    try:
        yield sink
    finally:
        set_trace_sink(previous)
