"""Snapshot rendering: metrics as an aligned table or JSON.

The metric families rendered here are catalogued in
``docs/OBSERVABILITY.md`` (a lint rule keeps that catalogue honest).

Deliberately dependency-free (no :mod:`repro.analysis` import) so the
observability layer stays below every other subsystem in the import
graph — engines import ``repro.obs``; nothing in ``repro.obs`` imports
an engine.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = ["render_snapshot", "snapshot_to_json", "layer_of"]


def layer_of(name: str) -> str:
    """The emitting layer of a metric/event name (its first dotted
    segment): ``"core.passes"`` -> ``"core"``."""
    return name.split(".", 1)[0]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # Exact-zero display sentinel: only a true 0.0 renders as "0".
        if value == 0.0:  # repro: noqa[FLT001]
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _summary(snap: Dict[str, object]) -> str:
    kind = snap.get("type")
    if kind in ("counter", "gauge"):
        return _fmt(snap["value"])
    if kind == "histogram":
        return (
            f"n={_fmt(snap['count'])} mean={_fmt(snap['mean'])} "
            f"p50={_fmt(snap['p50'])} p90={_fmt(snap['p90'])} "
            f"p99={_fmt(snap['p99'])} max={_fmt(snap['max'])}"
        )
    if kind == "timer":
        return (
            f"n={_fmt(snap['count'])} total={_fmt(snap['total'])}s "
            f"mean={_fmt(snap['mean'])}s"
        )
    return json.dumps(snap)  # unknown instrument: raw


def render_snapshot(
    snapshot: Dict[str, Dict[str, object]],
    *,
    title: str = "metrics snapshot",
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as an aligned text
    table, one metric per row, grouped by layer prefix."""
    headers = ("metric", "type", "unit", "value")
    rows: List[Tuple[str, str, str, str]] = [
        (name, str(snap["type"]), str(snap["unit"]), _summary(snap))
        for name, snap in sorted(snapshot.items())
    ]
    if not rows:
        rows = [("(no metrics recorded)", "-", "-", "-")]
    widths = [
        max(len(headers[i]), max(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    previous_layer = None
    for row in rows:
        layer = layer_of(row[0])
        if previous_layer is not None and layer != previous_layer:
            lines.append("")
        previous_layer = layer
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def snapshot_to_json(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Serialise a snapshot as stable (sorted-key, indented) JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
