"""Happens-before race detection for the async peer runtime.

The paper's §4 incremental protocol is correct only under single-writer
discipline: each peer's durable state (rank, published, remote-value
tables) is mutated by its own task, with cross-peer influence flowing
exclusively through update messages.  This module checks that claim
*dynamically*, the way :mod:`repro.obs` checks performance: opt-in,
observation-only, byte-identical results when enabled.

Model (docs/STATIC_ANALYSIS.md, "Dynamic sanitizer"):

* Every runtime task (one per peer, plus the coordinator) carries a
  **vector clock**.  A peer ticks its component at each wake-up
  (mailbox hand-off: execution between awaits is atomic under asyncio,
  so one scalar "current task" suffices).
* **Message delivery** edges: the transport stamps each envelope with
  the sender's clock at submission; the receiving drain merges it.
* **Round barrier** edges: the deterministic scheduler's step loop
  ends each round with every task joined back to the coordinator —
  :meth:`RuntimeSanitizer.round_barrier` merges all clocks and
  redistributes, mirroring :class:`repro.runtime.clock.VirtualClock`'s
  advance rule.
* Durable peer dicts are wrapped in :class:`TrackedDict`; every read
  and write is journaled with the accessing task's clock snapshot
  (coalesced per epoch, so cost stays proportional to distinct
  accesses per wake-up).

Two accesses to the same (object, field) **race** when they come from
different tasks, at least one is a write, and their clock snapshots
are concurrent (neither happened-before the other).  Races are
reported as versioned findings (rule ``SAN001``) through the same
:mod:`repro.lint.findings` machinery as the static rules; schedule
divergence found by :mod:`repro.sanitize.explorer` is ``SAN002``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, Rule, Severity, sort_findings
from repro.obs import get_registry

__all__ = [
    "SAN001",
    "SAN002",
    "VectorClock",
    "Access",
    "TrackedDict",
    "RuntimeSanitizer",
    "SanitizeRaceError",
]

SAN001 = Rule(
    id="SAN001",
    name="unordered-conflicting-access",
    summary="two tasks touched the same peer state with no "
    "happens-before edge and at least one write",
    hint="route the mutation through the owning task's mailbox, or "
    "order it behind the round barrier",
    severity=Severity.ERROR,
)
SAN002 = Rule(
    id="SAN002",
    name="schedule-divergence",
    summary="perturbing the delivery tie-break changed durable state — "
    "the run is order-dependent",
    hint="make folding order-insensitive (version dedup, commutative "
    "merges) or eliminate the unordered access",
    severity=Severity.ERROR,
)

READ = "read"
WRITE = "write"


class VectorClock:
    """A task's logical time: component per task name.

    Plain max/merge semantics; comparisons are the usual partial
    order.  Snapshots are cheap dict copies — the journal coalesces
    per epoch so few are taken.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts) if counts else {}

    def get(self, task: str) -> int:
        return self._counts.get(task, 0)

    def tick(self, task: str) -> None:
        self._counts[task] = self._counts.get(task, 0) + 1

    def merge(self, other: "VectorClock") -> None:
        for task, count in other._counts.items():
            if count > self._counts.get(task, 0):
                self._counts[task] = count

    def snapshot(self) -> "VectorClock":
        return VectorClock(self._counts)

    def leq(self, other: "VectorClock") -> bool:
        """Every component ≤ the other's — "happened before or equal"."""
        return all(
            count <= other._counts.get(task, 0)
            for task, count in self._counts.items()
        )

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._counts.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{t}:{c}" for t, c in sorted(self._counts.items())
        )
        return f"VectorClock({inner})"


@dataclass(frozen=True)
class Access:
    """One coalesced journal entry: a task touched ``obj.field``.

    ``barrier`` is the round-barrier interval the access fell in; only
    same-interval accesses can be concurrent (the barrier orders
    everything across intervals), which keeps race search linear in
    journal length.
    """

    task: str
    obj: str
    field: str
    kind: str
    clock: VectorClock
    barrier: int


class TrackedDict(dict):
    """A peer's durable dict with read/write journaling attached.

    Subclasses :class:`dict` so wrapped state behaves identically —
    same contents, same ``==``, same iteration order — and the
    byte-identical-results guarantee holds.  Accesses route to the
    owning :class:`RuntimeSanitizer` under whatever task is current.
    """

    _san: Optional["RuntimeSanitizer"] = None
    _obj: str = ""
    _field: str = ""

    def _bind(self, san: "RuntimeSanitizer", obj: str, field: str) -> None:
        self._san = san
        self._obj = obj
        self._field = field

    def _note(self, kind: str) -> None:
        if self._san is not None:
            self._san.record(self._obj, self._field, kind)

    # -- reads ----------------------------------------------------------
    def __getitem__(self, key):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.__getitem__(self, key)

    def get(self, key, default=None):  # type: ignore[no-untyped-def, override]
        self._note(READ)
        return dict.get(self, key, default)

    def __contains__(self, key):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.__contains__(self, key)

    def __iter__(self):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.__iter__(self)

    def keys(self):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.keys(self)

    def values(self):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.values(self)

    def items(self):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.items(self)

    def copy(self):  # type: ignore[no-untyped-def]
        self._note(READ)
        return dict.copy(self)

    # -- writes ---------------------------------------------------------
    def __setitem__(self, key, value):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        dict.__setitem__(self, key, value)

    def __delitem__(self, key):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        dict.__delitem__(self, key)

    def pop(self, *args):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        return dict.pop(self, *args)

    def popitem(self):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        return dict.popitem(self)

    def clear(self):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        dict.clear(self)

    def update(self, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        dict.update(self, *args, **kwargs)

    def setdefault(self, key, default=None):  # type: ignore[no-untyped-def]
        self._note(WRITE)
        return dict.setdefault(self, key, default)


#: Peer attributes holding durable single-writer state (the WAL's
#: replay surface, docs/PROTOCOL.md §15).
_TRACKED_PEER_FIELDS = (
    "rank",
    "published",
    "remote_values",
    "_remote_versions",
    "_publish_version",
    "deferred",
)


class _SanitizerInstruments:
    """``sanitizer.*`` metric handles (docs/OBSERVABILITY.md §11)."""

    __slots__ = ("accesses", "hb_edges", "races")

    def __init__(self, reg) -> None:  # type: ignore[no-untyped-def]
        self.accesses = reg.counter(
            "sanitizer.accesses", unit="accesses",
            description="tracked peer-state reads/writes journaled "
            "(coalesced per task epoch)",
        )
        self.hb_edges = reg.counter(
            "sanitizer.hb_edges", unit="edges",
            description="happens-before edges built (message stamps "
            "merged + round barriers)",
        )
        self.races = reg.counter(
            "sanitizer.races", unit="findings",
            description="unordered conflicting access pairs reported "
            "(SAN001)",
        )


class SanitizeRaceError(RuntimeError):
    """Raised at the end of a ``REPRO_SANITIZE=1`` run that found races."""

    def __init__(self, findings: List[Finding]) -> None:
        self.findings = findings
        locations = ", ".join(
            f"{f.path} ({f.message})" for f in findings[:3]
        )
        more = f" (+{len(findings) - 3} more)" if len(findings) > 3 else ""
        super().__init__(
            f"sanitizer found {len(findings)} unordered conflicting "
            f"access pair(s): {locations}{more}"
        )


class RuntimeSanitizer:
    """Happens-before race detector for one runtime run.

    The runtime owns the integration points: it registers tasks and
    wraps peers at construction, the transport stamps envelopes at
    submission, nodes call :meth:`begin_step` at each wake-up and
    :meth:`recv` per applied envelope, and the scheduler calls
    :meth:`round_barrier` after each step loop.  Everything here is
    observation-only — no call mutates runtime state.
    """

    COORDINATOR = "coordinator"

    def __init__(self, registry=None) -> None:  # type: ignore[no-untyped-def]
        self._clocks: Dict[str, VectorClock] = {
            self.COORDINATOR: VectorClock()
        }
        self._current: str = self.COORDINATOR
        self._journal: List[Access] = []
        self._stamps: Dict[int, VectorClock] = {}
        self._seen: Dict[str, Set[Tuple[str, str, str]]] = {
            self.COORDINATOR: set()
        }
        self._barrier_count = 0
        self._edges = 0
        self._access_ops = 0
        self._instruments = _SanitizerInstruments(
            registry if registry is not None else get_registry()
        )
        self._finalized = False

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def register_task(self, name: str) -> None:
        """Create a clock for ``name`` (idempotent — a restarted peer
        task keeps its history so pre-crash edges survive)."""
        if name not in self._clocks:
            self._clocks[name] = VectorClock()
            self._seen[name] = set()

    def begin_step(self, name: str) -> None:
        """A task woke up: tick its clock and make it current.

        Execution between awaits is atomic under asyncio, so a single
        current-task scalar is enough to attribute accesses.
        """
        self._current = name
        self._clocks[name].tick(name)
        self._seen[name].clear()

    def wrap_peer(self, peer) -> None:  # type: ignore[no-untyped-def]
        """Swap the peer's durable dicts for tracked equivalents.

        Called at construction and again after a WAL replay (the
        replayed peer carries fresh plain dicts).
        """
        obj = f"peer{peer.peer_id}"
        for attr in _TRACKED_PEER_FIELDS:
            current = getattr(peer, attr)
            if isinstance(current, TrackedDict):
                continue
            tracked = TrackedDict(current)
            tracked._bind(self, obj, attr.lstrip("_"))
            setattr(peer, attr, tracked)

    # ------------------------------------------------------------------
    # Happens-before edges
    # ------------------------------------------------------------------
    def stamp(self, envelope) -> None:  # type: ignore[no-untyped-def]
        """Record the sender's clock on a scheduled envelope.

        Keyed by object identity: duplicate flight copies are distinct
        envelope objects even when they compare equal.
        """
        self._stamps[id(envelope)] = self._clocks[self._current].snapshot()

    def recv(self, envelope) -> None:  # type: ignore[no-untyped-def]
        """Merge the sender's stamp into the applying task's clock."""
        stamp = self._stamps.pop(id(envelope), None)
        if stamp is None:
            return
        clock = self._clocks[self._current]
        clock.merge(stamp)
        self._seen[self._current].clear()
        self._edges += 1

    def round_barrier(self) -> None:
        """The scheduler's end-of-round join: merge every task's clock,
        tick the coordinator, and redistribute — everything before the
        barrier happens-before everything after it."""
        merged = VectorClock()
        for clock in self._clocks.values():
            merged.merge(clock)
        merged.tick(self.COORDINATOR)
        for name in self._clocks:
            self._clocks[name] = merged.snapshot()
            self._seen[name].clear()
        self._current = self.COORDINATOR
        self._barrier_count += 1
        self._edges += len(self._clocks)

    # ------------------------------------------------------------------
    # Access journal
    # ------------------------------------------------------------------
    def record(self, obj: str, field: str, kind: str) -> None:
        """Journal one access under the current task (coalesced per
        epoch: repeated identical accesses between clock changes carry
        the same snapshot and are recorded once)."""
        self._access_ops += 1
        task = self._current
        key = (obj, field, kind)
        seen = self._seen[task]
        if key in seen:
            return
        seen.add(key)
        self._journal.append(
            Access(
                task=task,
                obj=obj,
                field=field,
                kind=kind,
                clock=self._clocks[task].snapshot(),
                barrier=self._barrier_count,
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def races(self) -> List[Finding]:
        """Conflicting unordered access pairs, as sorted findings.

        Only same-barrier-interval pairs are compared — the barrier
        orders everything across intervals — so the search is linear
        in journal length for the clean tree.
        """
        groups: Dict[Tuple[str, str, int], List[Access]] = {}
        for access in self._journal:
            groups.setdefault(
                (access.obj, access.field, access.barrier), []
            ).append(access)
        reported: Set[Tuple[str, str, str, str, str, str]] = set()
        findings: List[Finding] = []
        for (obj, field, _), accesses in sorted(groups.items()):
            for i, a in enumerate(accesses):
                for b in accesses[i + 1:]:
                    if a.task == b.task:
                        continue
                    if a.kind == READ and b.kind == READ:
                        continue
                    if not a.clock.concurrent(b.clock):
                        continue
                    first, second = sorted(
                        (a, b), key=lambda x: (x.task, x.kind)
                    )
                    key = (
                        obj, field,
                        first.task, first.kind,
                        second.task, second.kind,
                    )
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        Finding(
                            rule=SAN001.id,
                            path=f"runtime://{obj}/{field}",
                            line=0,
                            message=(
                                f"unordered {first.kind} by "
                                f"{first.task} and {second.kind} by "
                                f"{second.task} on {obj}.{field}"
                            ),
                            severity=SAN001.severity,
                            hint=SAN001.hint,
                        )
                    )
        return sort_findings(findings)

    def findings(self) -> List[Finding]:
        """Alias for :meth:`races` (symmetry with the lint engine)."""
        return self.races()

    def finalize(self) -> List[Finding]:
        """Emit ``sanitizer.*`` metrics once and return the findings."""
        findings = self.races()
        if not self._finalized:
            self._finalized = True
            self._instruments.accesses.inc(len(self._journal))
            self._instruments.hb_edges.inc(self._edges)
            self._instruments.races.inc(len(findings))
        return findings

    @property
    def journal_length(self) -> int:
        return len(self._journal)

    @property
    def edge_count(self) -> int:
        return self._edges
