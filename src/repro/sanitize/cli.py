"""``repro sanitize`` — the dynamic-sanitizer entry point.

Runs one packaged scenario (a synthetic §4.1 graph under the
deterministic asyncio runtime) with both dynamic checks armed: the
happens-before race detector journals every tracked shared-state
access (``SAN001``), and the interleaving explorer replays the same
scenario under K perturbed same-time tie-breaks and compares durable
state bitwise (``SAN002``) — see docs/STATIC_ANALYSIS.md "Dynamic
sanitizer" for the model.

Kept separate from :mod:`repro.cli` so the top-level CLI stays a thin
dispatcher; that module calls :func:`configure_parser` to mount the
arguments and :func:`run` to execute.  Output is plain text or the
versioned findings JSON of :mod:`repro.lint.findings` — the same
document ``repro lint`` emits, so CI can merge both streams.

Exit codes: 0 = clean, 1 = findings, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.lint.findings import Finding, findings_to_json, sort_findings
from repro.sanitize.explorer import ExplorationReport, explore_schedules
from repro.sanitize.hb import RuntimeSanitizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runtime.runtime import AsyncPeerRuntime

__all__ = ["configure_parser", "run", "render_report"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Mount ``repro sanitize``'s arguments onto ``parser``."""
    parser.add_argument("--docs", type=int, default=200,
                        help="number of documents")
    parser.add_argument("--peers", type=int, default=8,
                        help="number of peers")
    parser.add_argument("--epsilon", type=float, default=1e-3,
                        help="convergence threshold")
    parser.add_argument("--damping", type=float, default=0.85)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="message drop rate injected by the fault plan")
    parser.add_argument("--churn", action="store_true",
                        help="run peers through on/off availability "
                        "spells (§3.1)")
    parser.add_argument("--schedules", type=int, default=3,
                        help="perturbed tie-break schedules to explore")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (also the first schedule seed)")
    parser.add_argument("--max-rounds", type=int, default=100_000,
                        help="scheduler round budget per run")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")


def _make_factory(
    args: argparse.Namespace, captured: List["AsyncPeerRuntime"]
) -> Callable[[Optional[Callable[[int], int]]], "AsyncPeerRuntime"]:
    """A fresh-runtime factory for :func:`explore_schedules`.

    Every call rebuilds the identical scenario (same seeds) with a new
    armed sanitizer; built runtimes are appended to ``captured`` so the
    caller can harvest race findings after the runs.
    """

    def factory(tiebreak: Optional[Callable[[int], int]]) -> "AsyncPeerRuntime":
        from repro.faults.plan import FaultPlan, FaultSpec
        from repro.graphs import broder_graph
        from repro.p2p import DocumentPlacement, P2PNetwork
        from repro.runtime import AsyncPeerRuntime
        from repro.simulation.events import OnOffSchedule

        graph = broder_graph(args.docs, seed=args.seed)
        placement = DocumentPlacement.random(
            args.docs, args.peers, seed=args.seed + 1
        )
        network = P2PNetwork(args.peers, placement, build_ring=False)
        kwargs: Dict[str, object] = {}
        if args.loss:
            kwargs["faults"] = FaultPlan(
                FaultSpec(drop_rate=args.loss), seed=args.seed + 3
            )
        if args.churn:
            kwargs["availability"] = OnOffSchedule(
                args.peers, mean_up=30.0, mean_down=10.0, seed=args.seed + 2
            )
        runtime = AsyncPeerRuntime(
            graph,
            network,
            damping=args.damping,
            epsilon=args.epsilon,
            seed=args.seed + 4,
            sanitizer=RuntimeSanitizer(),
            tiebreak=tiebreak,
            **kwargs,
        )
        captured.append(runtime)
        return runtime

    return factory


def _harvest_races(captured: List["AsyncPeerRuntime"]) -> List[Finding]:
    """Union of race findings across every executed runtime."""
    merged: Dict[Tuple[str, str, str], Finding] = {}
    for runtime in captured:
        assert runtime.sanitizer is not None
        for f in runtime.sanitizer.finalize():
            merged.setdefault((f.rule, f.path, f.message), f)
    return sort_findings(merged.values())


def render_report(
    findings: List[Finding], report: ExplorationReport, journal: int
) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines: List[str] = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}: {f.rule} [{f.severity.value}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    races = sum(1 for f in findings if f.rule == "SAN001")
    divergences = sum(1 for f in findings if f.rule == "SAN002")
    if report.digests_compared:
        divergence_part = (
            f"{divergences} diverging schedules of {report.schedules}"
        )
    else:
        divergence_part = (
            f"digest comparison skipped over {report.schedules} schedules"
            " (--loss couples the fault oracle to delivery order)"
        )
    lines.append(
        f"{journal} journaled accesses: {races} races, "
        f"{divergence_part} "
        f"(baseline digest {report.baseline_digest[:12]})"
    )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute ``repro sanitize`` for parsed ``args``; returns exit code."""
    captured: List["AsyncPeerRuntime"] = []
    report = explore_schedules(
        _make_factory(args, captured),
        schedules=args.schedules,
        seed=args.seed,
        max_rounds=args.max_rounds,
        # A sequential FaultPlan stream maps drops onto whichever send
        # happens next, so perturbed schedules legitimately diverge;
        # SAN002 is only sound for loss-free scenarios (see
        # explore_schedules).  Races are still checked on every run.
        compare_digests=not args.loss,
    )
    findings = sort_findings(_harvest_races(captured) + list(report.findings))
    if args.format == "json":
        print(findings_to_json(findings))
    else:
        journal = sum(
            r.sanitizer.journal_length
            for r in captured
            if r.sanitizer is not None
        )
        print(render_report(findings, report, journal))
    return 1 if findings else 0
