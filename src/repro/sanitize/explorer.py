"""Seeded interleaving exploration: determinism as a checked property.

The deterministic scheduler's reproducibility claim (docs/PROTOCOL.md
§14) is that final durable state is a function of the *scenario*, not
of the incidental total order the transport breaks ties in: envelopes
due at the same virtual time are delivered in submission-sequence
order, but the §2.3 protocol — version-deduplicated folding, coalesced
recomputes over sorted worklists — must produce bitwise-identical
durable state under any legal reordering of those ties.

This module turns that claim into a first-class check.  A
:func:`perturbation` is a deterministic bijective mix of the
submission sequence number; handing it to
:class:`~repro.runtime.transport.InMemoryTransport` as its ``tiebreak``
permutes the delivery order of same-time envelopes (and nothing else —
the delivery *times* are untouched, so every perturbed schedule is a
legal one).  :func:`explore_schedules` runs a baseline plus K perturbed
schedules of the same scenario and compares canonical digests of every
peer's durable state; a divergence becomes a ``SAN002`` finding
(:data:`repro.sanitize.hb.SAN002`).
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.lint.findings import Finding
from repro.obs import get_registry

from repro.sanitize.hb import SAN002, _TRACKED_PEER_FIELDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runtime.runtime import AsyncPeerRuntime

__all__ = [
    "perturbation",
    "durable_digest",
    "ExplorationReport",
    "explore_schedules",
]

_MASK = (1 << 64) - 1


def perturbation(seed: int) -> Callable[[int], int]:
    """A deterministic bijective tie-break key for one schedule.

    SplitMix64-style mixing: each stage is a bijection mod 2^64, so
    distinct sequence numbers map to distinct keys — the perturbed
    delivery order is still a total order, just a different one.
    ``seed`` selects the permutation; the same seed always yields the
    same schedule.
    """

    offset = (0x9E3779B97F4A7C15 * (seed + 1)) & _MASK

    def key(seq: int) -> int:
        z = (seq + offset) & _MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    return key


def durable_digest(runtime: "AsyncPeerRuntime") -> str:
    """Canonical SHA-256 over every peer's durable state.

    Floats are rendered with ``float.hex`` (exact, bitwise), keys in
    sorted order — equal digests mean bitwise-equal durable state.
    """
    h = hashlib.sha256()
    for node in runtime.nodes:
        peer = node.peer
        h.update(f"peer={peer.peer_id}\n".encode("ascii"))
        for attr in _TRACKED_PEER_FIELDS:
            mapping = getattr(peer, attr)
            h.update(f"field={attr}\n".encode("ascii"))
            for key in sorted(mapping):
                value = mapping[key]
                if isinstance(value, float):
                    rendered = value.hex()
                elif isinstance(value, list):
                    rendered = ";".join(repr(v) for v in value)
                else:
                    rendered = repr(value)
                h.update(f"{key}={rendered}\n".encode("ascii"))
    return h.hexdigest()


@dataclass(frozen=True)
class ExplorationReport:
    """Outcome of one schedule exploration.

    Attributes
    ----------
    baseline_digest:
        Durable-state digest of the unperturbed run.
    schedule_digests:
        One digest per perturbed schedule, in seed order.
    findings:
        ``SAN002`` findings, one per diverging schedule (empty on a
        deterministic scenario).
    schedules:
        Number of perturbed schedules executed.
    digests_compared:
        False when the digest comparison was suppressed (scenario with
        an order-coupled fault oracle); the digests are still recorded.
    """

    baseline_digest: str
    schedule_digests: List[str]
    findings: List[Finding]
    schedules: int
    digests_compared: bool = True

    @property
    def deterministic(self) -> bool:
        return not self.findings


class _ExplorerInstruments:
    """``sanitizer.*`` metric handles (docs/OBSERVABILITY.md §11)."""

    __slots__ = ("schedules", "divergence")

    def __init__(self, reg) -> None:  # type: ignore[no-untyped-def]
        self.schedules = reg.counter(
            "sanitizer.schedules", unit="runs",
            description="perturbed schedules executed by the "
            "interleaving explorer",
        )
        self.divergence = reg.counter(
            "sanitizer.determinism_violations", unit="findings",
            description="schedules whose durable state diverged from "
            "the baseline (SAN002)",
        )


RuntimeFactory = Callable[
    [Optional[Callable[[int], int]]], "AsyncPeerRuntime"
]


def explore_schedules(
    factory: RuntimeFactory,
    *,
    schedules: int = 3,
    seed: int = 0,
    max_rounds: int = 1_000_000,
    compare_digests: bool = True,
    registry=None,  # type: ignore[no-untyped-def]
) -> ExplorationReport:
    """Run a baseline plus ``schedules`` perturbed schedules and
    compare durable state bitwise.

    ``factory(tiebreak)`` must build a *fresh* runtime for the same
    scenario each call (runtime instances are single-shot), passing
    ``tiebreak`` through to its in-memory transport; ``None`` selects
    the unperturbed submission order.

    ``compare_digests=False`` still executes every schedule (any armed
    race detectors keep journaling) but suppresses ``SAN002``: the
    digest comparison is only sound when the scenario's randomness is
    keyed to the *event*, not the event order.  A
    :class:`~repro.faults.plan.FaultPlan` draws drop/duplicate fates
    from one sequential stream, so under a perturbed tie-break the same
    draws land on different envelopes and durable state legitimately
    differs — a property of the fault oracle's sampling, not an
    order-sensitivity bug in the protocol's folding.
    """
    if schedules < 1:
        raise ValueError(f"schedules must be >= 1, got {schedules}")
    instruments = _ExplorerInstruments(
        registry if registry is not None else get_registry()
    )
    baseline_runtime = factory(None)
    asyncio.run(baseline_runtime.run(max_rounds=max_rounds))
    baseline = durable_digest(baseline_runtime)
    digests: List[str] = []
    findings: List[Finding] = []
    for index in range(schedules):
        runtime = factory(perturbation(seed + index))
        asyncio.run(runtime.run(max_rounds=max_rounds))
        digest = durable_digest(runtime)
        digests.append(digest)
        instruments.schedules.inc()
        if compare_digests and digest != baseline:
            findings.append(
                Finding(
                    rule=SAN002.id,
                    path=f"runtime://schedule/{seed + index}",
                    line=0,
                    message=(
                        f"durable state diverged under perturbed "
                        f"tie-break seed {seed + index}: digest "
                        f"{digest[:12]} != baseline {baseline[:12]}"
                    ),
                    severity=SAN002.severity,
                    hint=SAN002.hint,
                )
            )
    instruments.divergence.inc(len(findings))
    return ExplorationReport(
        baseline_digest=baseline,
        schedule_digests=digests,
        findings=findings,
        schedules=schedules,
        digests_compared=compare_digests,
    )
