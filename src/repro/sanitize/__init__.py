"""Dynamic concurrency sanitizer for the async peer runtime.

Two checks, both opt-in and zero-cost when off (docs/STATIC_ANALYSIS.md
"Dynamic sanitizer"):

- :mod:`repro.sanitize.hb` — a happens-before race detector.  Per-task
  vector clocks, ticked at every mailbox wake-up, merged along message
  delivery and the deterministic scheduler's round barriers; tracked
  peer dicts journal (task, object, field, read/write) accesses, and
  unordered conflicting pairs become ``SAN001`` findings.
- :mod:`repro.sanitize.explorer` — a seeded interleaving explorer that
  perturbs the transport's same-time tie-breaking across K schedules
  and asserts bitwise-identical durable state; a divergence becomes a
  ``SAN002`` finding.

Both report through :mod:`repro.lint.findings` (the same versioned
JSON document the static checkers emit) and the ``sanitizer.*`` metric
family (docs/OBSERVABILITY.md §11).  Set ``REPRO_SANITIZE=1`` to arm
the race detector inside any deterministic
:class:`~repro.runtime.runtime.AsyncPeerRuntime` run, or use the
``repro sanitize`` CLI for the packaged scenario.
"""

from __future__ import annotations

from repro.sanitize.explorer import (
    ExplorationReport,
    durable_digest,
    explore_schedules,
    perturbation,
)
from repro.sanitize.hb import (
    SAN001,
    SAN002,
    Access,
    RuntimeSanitizer,
    SanitizeRaceError,
    TrackedDict,
    VectorClock,
)

__all__ = [
    "SAN001",
    "SAN002",
    "Access",
    "ExplorationReport",
    "RuntimeSanitizer",
    "SanitizeRaceError",
    "TrackedDict",
    "VectorClock",
    "durable_digest",
    "explore_schedules",
    "perturbation",
]
