"""Per-peer durability journal: WAL + snapshots wrapped around a Peer.

This is the durable state layer of the self-healing runtime
(docs/PROTOCOL.md §15): a :class:`PeerJournal` sits between a
:class:`~repro.runtime.node.PeerNode` and its
:class:`~repro.p2p.peer.Peer` and intercepts every durable mutation —
log first, then apply.  Because the log captures the *inputs* of each
mutation (received batches, recompute triggers) rather than their
float results, :meth:`PeerJournal.replay` re-executes the identical
floating-point operations in the identical order against a fresh peer,
reproducing the pre-crash durable state **bitwise** — the recovery
guarantee the crash differential tests and the soak harness assert.

Compaction follows the classic checkpoint-plus-tail scheme: every
``snapshot_interval`` appended records the journal captures a
:class:`~repro.recovery.snapshot.PeerSnapshot` and truncates the WAL,
so restart cost is bounded by the interval, not the run length
(§3.1's expectation that peers crash and rejoin routinely).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graphs.linkgraph import LinkGraph
from repro.p2p.messages import PagerankUpdate
from repro.p2p.peer import Peer
from repro.recovery.snapshot import PeerSnapshot
from repro.recovery.wal import WalRecord, WriteAheadLog

__all__ = ["PeerJournal", "durable_state_equal"]


def durable_state_equal(a: Peer, b: Peer) -> bool:
    """True when two peers' durable state is bitwise identical.

    Exact ``==`` on the float dicts is deliberate: replay promises
    bit-identical state, not state within a tolerance
    (docs/PROTOCOL.md §15.1).
    """
    return (
        tuple(int(d) for d in a.documents) == tuple(int(d) for d in b.documents)
        and a.rank == b.rank
        and a.published == b.published
        and a.remote_values == b.remote_values
        and a._remote_versions == b._remote_versions
        and a._publish_version == b._publish_version
    )


class PeerJournal:
    """Log-then-apply wrapper over one peer's durable mutations.

    Parameters
    ----------
    peer:
        The live peer this journal records for (rebindable after a
        restart via :meth:`rebind`).
    graph:
        The link graph replayed peers are rebuilt against.
    damping, epsilon, peer_of, gate:
        The run's fixed recompute parameters; ``comp`` records store
        only the document id because these never change mid-run.
    snapshot_interval:
        Appended records between snapshot-and-truncate compactions.
    wal:
        Optional pre-built :class:`~repro.recovery.wal.WriteAheadLog`
        (e.g. file-backed); defaults to an in-memory log.
    """

    def __init__(
        self,
        peer: Peer,
        graph: LinkGraph,
        *,
        damping: float,
        epsilon: float,
        peer_of: np.ndarray,
        gate: str = "published",
        snapshot_interval: int = 256,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        if snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        self.peer = peer
        self.graph = graph
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.peer_of = peer_of
        self.gate = gate
        self.snapshot_interval = int(snapshot_interval)
        self.wal = wal if wal is not None else WriteAheadLog()
        # The recovery base: the durable state at journal creation.
        self._snapshot = PeerSnapshot.capture(peer)
        self.snapshots_taken = 0
        self.replays = 0
        self.replayed_records = 0

    # ------------------------------------------------------------------
    @property
    def records_appended(self) -> int:
        return self.wal.appended

    @property
    def snapshot(self) -> PeerSnapshot:
        """The current recovery base (latest compaction checkpoint)."""
        return self._snapshot

    def rebind(self, peer: Peer) -> None:
        """Point the journal at a restarted peer (same id, same log)."""
        if peer.peer_id != self.peer.peer_id:
            raise ValueError("journal can only rebind to the same peer id")
        self.peer = peer

    # ------------------------------------------------------------------
    # Log-then-apply mutation wrappers
    # ------------------------------------------------------------------
    def apply_batch(self, updates: Iterable[PagerankUpdate]) -> int:
        """Journal and fold one received update batch; returns how many
        updates mutated state (duplicates re-suppress on replay)."""
        updates = list(updates)
        self.wal.append(
            WalRecord(
                kind="recv",
                payload=tuple(
                    (u.target_doc, u.source_doc, u.value, u.version)
                    for u in updates
                ),
            )
        )
        applied = self.peer.receive_batch(updates)
        self._maybe_compact()
        return applied

    def apply_recompute(self, doc: int) -> Tuple[float, bool]:
        """Journal and run one event-driven recompute of ``doc``."""
        self.wal.append(WalRecord(kind="comp", payload=int(doc)))
        result = self.peer.recompute_document(
            doc, self.damping, self.epsilon, self.peer_of, gate=self.gate
        )
        self._maybe_compact()
        return result

    def apply_adopt(self, state: Dict[int, tuple]) -> None:
        """Journal and apply a document adoption (re-homing)."""
        self.wal.append(
            WalRecord(
                kind="adopt",
                payload=tuple(
                    (int(doc), float(rank), float(published), int(version))
                    for doc, (rank, published, version) in sorted(state.items())
                ),
            )
        )
        self.peer.adopt_documents(state)
        self._maybe_compact()

    def apply_surrender(self, docs: Iterable[int]) -> Dict[int, tuple]:
        """Journal and apply a document surrender (re-homing)."""
        docs = sorted(int(d) for d in docs)
        self.wal.append(WalRecord(kind="drop", payload=tuple(docs)))
        state = self.peer.surrender_documents(docs)
        self._maybe_compact()
        return state

    # ------------------------------------------------------------------
    # Compaction and replay
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        if len(self.wal) >= self.snapshot_interval:
            self.compact()

    def compact(self) -> None:
        """Capture a snapshot of the live peer and truncate the WAL."""
        self._snapshot = PeerSnapshot.capture(self.peer)
        self.wal.truncate()
        self.snapshots_taken += 1

    def replay(self) -> Peer:
        """Rebuild the peer from snapshot + WAL tail (bitwise).

        The returned peer carries only durable state: its outbox is
        empty (in-flight sends died with the crash; the supervisor
        heals them by re-publishing — docs/PROTOCOL.md §15.2).
        """
        peer = self._snapshot.restore(self.graph)
        replayed = 0
        for record in self.wal:
            if record.kind == "recv":
                peer.receive_batch(
                    [
                        PagerankUpdate(
                            target_doc=t, source_doc=s, value=v, version=ver
                        )
                        for t, s, v, ver in record.payload
                    ]
                )
            elif record.kind == "comp":
                peer.recompute_document(
                    int(record.payload),
                    self.damping,
                    self.epsilon,
                    self.peer_of,
                    gate=self.gate,
                )
            elif record.kind == "adopt":
                peer.adopt_documents(
                    {
                        doc: (rank, published, version)
                        for doc, rank, published, version in record.payload
                    }
                )
            elif record.kind == "drop":
                peer.surrender_documents(list(record.payload))
            replayed += 1
        # Replay re-stages publishes; those sends already happened (or
        # died) in the original timeline — recovery republishes instead.
        peer.outbox.wipe()
        self.replays += 1
        self.replayed_records += replayed
        return peer

    def verify_replay(self) -> bool:
        """True when replay reproduces the live peer bitwise (the §15.1
        recovery invariant; cheap enough to run at every crash)."""
        return durable_state_equal(self.replay(), self.peer)
