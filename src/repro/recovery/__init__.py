"""Durable peer state and self-healing runtime supervision.

The paper's P2P setting assumes peers come and go (§3.1): a peer that
crashes loses its volatile protocol state, yet the network must keep
converging and the peer must rejoin without poisoning the ranking.
This package makes crash recovery a first-class, testable subsystem
for the asynchronous runtime (docs/PROTOCOL.md §15):

* **Durability** — :class:`WriteAheadLog` records every durable
  mutation's *inputs* (received update batches, recompute targets,
  document adoptions/surrenders) so replay re-runs the identical
  floating-point operation sequence; :class:`PeerSnapshot` captures a
  compacted checkpoint; :class:`PeerJournal` ties both to a live peer
  with checkpoint-plus-tail compaction, and its replay is bitwise
  identical to the pre-crash peer (§15.1–§15.2, checked by
  :func:`durable_state_equal`).
* **Failure detection** — :class:`HeartbeatFailureDetector` turns
  heartbeat silence into suspicion via a hard timeout with an optional
  phi-accrual smoothing threshold (§15.3).
* **Supervision** — :class:`Supervisor` owns the crash timeline and
  the suspect-then-restart state machine the runtime executes
  (:class:`RecoveryConfig` holds the tunables); restarts replay
  WAL+snapshot and trigger neighbor re-publish anti-entropy (§15.4).
* **Chaos soak** — :func:`run_soak` (the ``repro soak`` CLI) runs
  randomized seeded crash/partition schedules under continuous
  invariant probes and reports :class:`SoakViolation` incidents as
  JSONL through :mod:`repro.obs`.
"""

from repro.recovery.detector import HeartbeatFailureDetector
from repro.recovery.journal import PeerJournal, durable_state_equal
from repro.recovery.snapshot import PeerSnapshot
from repro.recovery.soak import (
    SoakConfig,
    SoakReport,
    SoakViolation,
    build_soak_plan,
    run_soak,
)
from repro.recovery.supervisor import RecoveryConfig, Supervisor
from repro.recovery.wal import WalRecord, WriteAheadLog

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "PeerSnapshot",
    "PeerJournal",
    "durable_state_equal",
    "HeartbeatFailureDetector",
    "RecoveryConfig",
    "Supervisor",
    "SoakConfig",
    "SoakViolation",
    "SoakReport",
    "build_soak_plan",
    "run_soak",
]
