"""Append-only write-ahead log of one peer's durable mutations.

The paper's protocol assumes peers "may be disconnected at any time"
(§3.1), and asynchronous-iteration theory (Kollias et al., PAPERS.md)
only guarantees convergence under restarts if a recovered peer resumes
from *consistent* local state.  The WAL is how that state survives: a
:class:`WriteAheadLog` records every durable mutation of a
:class:`~repro.p2p.peer.Peer` — applied update batches, event-driven
recomputes, document adoptions and surrenders — as one
:class:`WalRecord` per mutation, in apply order.  Replaying the log
against a fresh peer (see :mod:`repro.recovery.journal`) re-executes
the *same* float operations in the *same* order and therefore
reproduces the pre-crash durable state bitwise — the property the
crash-recovery differential tests assert.

Record format (docs/PROTOCOL.md §15.1):

``recv``
    A received update batch, payload ``[(target, source, value,
    version), ...]`` — replay folds it through ``Peer.receive_batch``
    (idempotent, version-gated, so suppressed duplicates re-suppress).
``comp``
    One event-driven recompute, payload ``doc`` — replay re-runs
    ``Peer.recompute_document`` with the run's fixed parameters.
``adopt``
    Documents taken over from another peer, payload ``{doc: (rank,
    published, publish_version)}``.
``drop``
    Documents surrendered, payload ``[doc, ...]``.

The log is in-memory by default; give it a ``path`` to mirror every
record to a JSON-lines file (floats serialise via ``repr`` and
round-trip binary64 exactly).  :meth:`truncate` discards records made
obsolete by a snapshot (compaction — :mod:`repro.recovery.snapshot`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterator, List, Optional, Tuple

__all__ = ["WalRecord", "WriteAheadLog", "RECORD_KINDS"]

#: The four durable-mutation record kinds (docs/PROTOCOL.md §15.1).
RECORD_KINDS = ("recv", "comp", "adopt", "drop")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: ``kind`` plus its JSON-safe payload.

    Attributes
    ----------
    kind:
        One of :data:`RECORD_KINDS`.
    payload:
        ``recv`` — tuple of ``(target, source, value, version)``
        tuples; ``comp`` — the document id; ``adopt`` — tuple of
        ``(doc, rank, published, publish_version)`` tuples; ``drop`` —
        tuple of document ids.
    """

    kind: str
    payload: object

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise ValueError(f"unknown WAL record kind {self.kind!r}")

    def to_json(self) -> str:
        """One JSON line (compact separators, repr-exact floats)."""
        return json.dumps(
            {"kind": self.kind, "payload": self.payload},
            separators=(",", ":"),
            default=list,
        )

    @classmethod
    def from_json(cls, line: str) -> "WalRecord":
        """Parse a line written by :meth:`to_json`."""
        body = json.loads(line)
        kind = body["kind"]
        payload = body["payload"]
        if kind == "recv":
            payload = tuple(
                (int(t), int(s), float(v), int(ver)) for t, s, v, ver in payload
            )
        elif kind == "comp":
            payload = int(payload)
        elif kind == "adopt":
            payload = tuple(
                (int(d), float(r), float(p), int(ver)) for d, r, p, ver in payload
            )
        elif kind == "drop":
            payload = tuple(int(d) for d in payload)
        return cls(kind=kind, payload=payload)


class WriteAheadLog:
    """Ordered append-only record store with optional file mirroring.

    Parameters
    ----------
    path:
        Optional JSON-lines file to mirror appends into (opened in
        write mode — one log file per peer per run).  The in-memory
        list stays authoritative; the file exists so an external
        process can audit or replay the run (docs/PROTOCOL.md §15.1).
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._records: List[WalRecord] = []
        self.path = path
        self._file: Optional[IO[str]] = None
        if path is not None:
            self._file = open(path, "w", encoding="utf-8")
        #: Total records ever appended (not reset by truncation).
        self.appended = 0
        #: Records discarded by snapshot compaction.
        self.truncated = 0

    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> None:
        """Append one record (log-then-apply is the caller's contract)."""
        self._records.append(record)
        self.appended += 1
        if self._file is not None:
            self._file.write(record.to_json() + "\n")
            self._file.flush()

    def records(self) -> Tuple[WalRecord, ...]:
        """The live (un-truncated) records, oldest first."""
        return tuple(self._records)

    def __iter__(self) -> Iterator[WalRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def truncate(self) -> int:
        """Drop every live record (a snapshot has superseded them).

        Returns the number of records discarded.  The mirror file is
        left intact: it is the full history, not the compacted view.
        """
        dropped = len(self._records)
        self._records.clear()
        self.truncated += dropped
        return dropped

    def close(self) -> None:
        """Close the mirror file (no-op for in-memory logs)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    @staticmethod
    def load(path: str) -> List[WalRecord]:
        """Read back a mirror file written by a file-backed log."""
        out: List[WalRecord] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    out.append(WalRecord.from_json(line))
        return out
