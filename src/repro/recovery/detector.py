"""Heartbeat failure detection for the async peer runtime.

The paper's peers "may be disconnected at any time" (§3.1) but the
protocol itself carries no liveness signal — a dead peer just goes
silent, and the only pre-existing symptom is a stagnating pass.  The
:class:`HeartbeatFailureDetector` closes that gap: every scheduler
round each live peer registers a heartbeat, and a peer whose last
heartbeat is older than ``timeout`` time units is *suspected*.  The
supervisor (:mod:`repro.recovery.supervisor`) only restarts a peer
once the detector suspects it, which makes detection latency — not
just crash schedules — part of the deterministic timeline under
VirtualClock (docs/PROTOCOL.md §15.3).

An optional phi-accrual-style smoothing (Hayashibara et al.; see
docs/PROTOCOL.md §15.3) is available via ``phi_threshold``: instead of
a hard timeout, suspicion triggers when the accrued value
``phi = elapsed / mean_interval`` exceeds the threshold, with the mean
taken over a sliding window of observed heartbeat inter-arrival times.
With no history yet, phi mode falls back to the hard timeout.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["HeartbeatFailureDetector"]

#: Sliding-window length for phi-accrual inter-arrival history.
_PHI_WINDOW = 32


class HeartbeatFailureDetector:
    """Tracks per-peer heartbeats and reports suspicion.

    Parameters
    ----------
    num_peers:
        Total peers under observation (ids ``0..num_peers-1``).
    timeout:
        Hard suspicion deadline: a peer is suspected once
        ``now - last_heartbeat >= timeout``.  Expressed in clock time
        units (the runtime passes ``heartbeat_timeout_passes *
        pass_time``).
    phi_threshold:
        Optional phi-accrual threshold.  When set, suspicion requires
        ``elapsed / mean_inter_arrival > phi_threshold`` once at least
        two heartbeats have been seen; the hard ``timeout`` still
        applies as an upper bound so a peer with no history cannot
        evade detection.
    """

    def __init__(
        self,
        num_peers: int,
        *,
        timeout: float,
        phi_threshold: Optional[float] = None,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if phi_threshold is not None and phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be positive, got {phi_threshold}"
            )
        self.num_peers = num_peers
        self.timeout = float(timeout)
        self.phi_threshold = phi_threshold
        self._last: Dict[int, float] = {}
        self._intervals: Dict[int, Deque[float]] = {
            p: deque(maxlen=_PHI_WINDOW) for p in range(num_peers)
        }
        #: Heartbeats observed, total.
        self.heartbeats = 0

    # ------------------------------------------------------------------
    def heartbeat(self, peer: int, now: float) -> None:
        """Record a liveness signal from ``peer`` at time ``now``."""
        previous = self._last.get(peer)
        if previous is not None and now > previous:
            self._intervals[peer].append(now - previous)
        self._last[peer] = now
        self.heartbeats += 1

    def forget(self, peer: int) -> None:
        """Drop a peer's history (called when a crash is *observed* so
        a restarted peer starts with a clean inter-arrival window)."""
        self._last.pop(peer, None)
        self._intervals[peer].clear()

    # ------------------------------------------------------------------
    def last_heartbeat(self, peer: int) -> Optional[float]:
        return self._last.get(peer)

    def phi(self, peer: int, now: float) -> float:
        """Accrued suspicion level (0 while history is insufficient)."""
        last = self._last.get(peer)
        intervals = self._intervals[peer]
        if last is None or not intervals:
            return 0.0
        mean = sum(intervals) / len(intervals)
        if mean <= 0:
            return 0.0
        return (now - last) / mean

    def suspect(self, peer: int, now: float) -> bool:
        """True when ``peer`` has missed its liveness deadline."""
        last = self._last.get(peer)
        if last is None:
            # Never heard from: suspect only the full timeout after t=0.
            return now >= self.timeout
        if now - last >= self.timeout:
            return True
        if self.phi_threshold is not None and self._intervals[peer]:
            return self.phi(peer, now) > self.phi_threshold
        return False

    def suspected(self, now: float) -> List[int]:
        """All suspected peer ids, ascending (deterministic order)."""
        return [p for p in range(self.num_peers) if self.suspect(p, now)]

    # ------------------------------------------------------------------
    def deadline(self, peer: int) -> float:
        """The earliest time at which ``peer`` becomes suspected by the
        hard timeout (phi may trigger earlier; this is the bound the
        scheduler must not skip past)."""
        last = self._last.get(peer, 0.0)
        return last + self.timeout

    def next_deadline(self, peers: Tuple[int, ...]) -> Optional[float]:
        """Earliest hard-timeout deadline among ``peers`` (the
        supervisor passes only peers currently down, so live peers'
        deadlines never stall the scheduler)."""
        if not peers:
            return None
        return min(self.deadline(p) for p in peers)
