"""Chaos soak harness: randomized crash storms with invariant probes.

The recovery subsystem's correctness claim is behavioural: under *any*
seeded storm of crashes, restarts, partitions and loss, the supervised
runtime must keep its invariants — every rank finite and positive, no
document abandoned, total mass inside a sane band — and still converge
to the reference ranking once the chaos subsides (the asynchronous-
iteration guarantee of Kollias et al., PAPERS.md, with the paper's own
§3.1 churn assumption as the failure model).  :func:`run_soak`
executes one such seeded schedule end to end: it draws a randomized
:class:`~repro.faults.plan.FaultPlan` from the soak seed, drives a
recovery-supervised :class:`~repro.runtime.runtime.AsyncPeerRuntime`
with a continuous invariant probe attached, checks the final state
against a fault-free pass-based reference, and reports every violation
as a structured :class:`SoakViolation` — streamed as
``recovery.incident`` JSONL events through :mod:`repro.obs` when a
trace sink is given (docs/OBSERVABILITY.md §10).

``repro soak`` is the CLI face; ``make soak-smoke`` and the CI
``soak-smoke`` job run a short-budget schedule over three seeds.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.faults.plan import FaultPlan, FaultSpec, Partition
from repro.graphs import broder_graph
from repro.p2p import DocumentPlacement, P2PNetwork
from repro.recovery.supervisor import RecoveryConfig

__all__ = ["SoakConfig", "SoakViolation", "SoakReport", "build_soak_plan", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One chaos soak schedule (fully determined by its fields + seed).

    Attributes
    ----------
    docs, peers:
        Problem size.
    epsilon:
        Publish gate / convergence threshold.
    drop_rate:
        Background message loss while the storm rages.
    crashes:
        Crash events drawn into the schedule (random pass, peer, and
        down spell, from the soak seed).
    partitions:
        Transient link partitions drawn into the schedule.
    down_passes_max:
        Upper bound on a drawn crash's down spell (lower bound 2).
    max_rounds:
        Scheduler round budget.
    check_every:
        Rounds between continuous invariant probes.
    mass_tolerance:
        Allowed relative gap between final total mass and the
        reference's (a conservation check — mass lost to a crash that
        recovery failed to heal shows up here).
    rank_tolerance:
        Allowed p99 relative rank error vs the fault-free reference.
    mass_band:
        ``(lo, hi)`` multiples of the document count the in-flight
        total mass must stay inside at every probe.
    heartbeat_timeout_passes, snapshot_interval:
        Forwarded into :class:`~repro.recovery.supervisor.RecoveryConfig`.
    """

    docs: int = 120
    peers: int = 6
    epsilon: float = 1e-4
    drop_rate: float = 0.05
    crashes: int = 2
    partitions: int = 0
    down_passes_max: int = 5
    max_rounds: int = 20_000
    check_every: int = 8
    mass_tolerance: float = 0.02
    rank_tolerance: float = 5e-3
    mass_band: Tuple[float, float] = (0.2, 5.0)
    heartbeat_timeout_passes: float = 2.0
    snapshot_interval: int = 256

    def __post_init__(self) -> None:
        if self.docs < 2:
            raise ValueError(f"docs must be >= 2, got {self.docs}")
        if self.peers < 2:
            raise ValueError(f"peers must be >= 2, got {self.peers}")
        if self.crashes < 0 or self.partitions < 0:
            raise ValueError("crashes/partitions must be >= 0")
        if self.down_passes_max < 2:
            raise ValueError(
                f"down_passes_max must be >= 2, got {self.down_passes_max}"
            )
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")


@dataclass(frozen=True)
class SoakViolation:
    """One invariant breach observed during a soak run."""

    kind: str
    round: int
    detail: str


@dataclass
class SoakReport:
    """Outcome of one seeded soak schedule."""

    seed: int
    converged: bool
    quiesced: bool
    rounds: int
    crashes: int
    restarts: int
    abandoned_updates: int
    mass_error: float
    p99_error: float
    violations: List[SoakViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the schedule completed with zero violations."""
        return not self.violations


def build_soak_plan(config: SoakConfig, seed: SeedLike) -> FaultPlan:
    """Draw one randomized (but seeded) fault schedule.

    Crash passes land early (1–7) so restarts interleave with active
    computation; down spells and victims are drawn uniformly;
    partitions are transient two-sided spells that always heal.
    """
    rng = as_generator(seed)
    crashes = tuple(
        (
            1 + int(rng.integers(7)),
            int(rng.integers(config.peers)),
            2 + int(rng.integers(config.down_passes_max - 1)),
        )
        for _ in range(config.crashes)
    )
    partitions = []
    for _ in range(config.partitions):
        a = int(rng.integers(config.peers))
        b = int(rng.integers(config.peers - 1))
        if b >= a:
            b += 1
        start = 1 + int(rng.integers(5))
        partitions.append(
            Partition(
                peer_a=a,
                peer_b=b,
                start_pass=start,
                end_pass=start + 2 + int(rng.integers(4)),
            )
        )
    spec = FaultSpec(
        drop_rate=config.drop_rate,
        crashes=crashes,
        partitions=tuple(partitions),
    )
    return FaultPlan(spec, seed=rng)


def run_soak(
    config: SoakConfig,
    *,
    seed: int = 0,
    trace=None,
) -> SoakReport:
    """Execute one seeded chaos schedule under full recovery supervision.

    ``trace`` is an optional :class:`repro.obs.TraceSink`; every
    violation streams as a ``recovery.incident`` event and the run
    summary as ``recovery.soak``.
    """
    # Imported here: this module is imported by repro.recovery's
    # package init, which repro.runtime pulls in for journals.
    from repro.runtime.runtime import AsyncPeerRuntime
    from repro.simulation import P2PPagerankSimulation

    graph = broder_graph(config.docs, seed=seed)
    placement = DocumentPlacement.random(config.docs, config.peers, seed=seed + 1)
    plan = build_soak_plan(config, seed + 2)
    network = P2PNetwork(config.peers, placement, build_ring=False)
    runtime = AsyncPeerRuntime(
        graph,
        network,
        epsilon=config.epsilon,
        seed=seed + 3,
        faults=plan,
        recovery=RecoveryConfig(
            heartbeat_timeout_passes=config.heartbeat_timeout_passes,
            snapshot_interval=config.snapshot_interval,
            verify_replay_on_crash=True,
        ),
    )
    violations: List[SoakViolation] = []

    def record(kind: str, round_index: int, detail: str) -> None:
        violation = SoakViolation(kind=kind, round=round_index, detail=detail)
        violations.append(violation)
        sup = runtime._supervisor
        if sup is not None:
            sup.instruments.violations.inc()
        if trace is not None:
            trace.event(
                "recovery.incident",
                seed=seed,
                kind=kind,
                round=round_index,
                detail=detail,
            )

    lo, hi = config.mass_band

    def probe(rounds: int, rt) -> None:
        if rounds % config.check_every:
            return
        total = 0.0
        for node in rt.nodes:
            for doc, value in node.peer.rank.items():
                if not math.isfinite(value):
                    record(
                        "rank_not_finite", rounds,
                        f"doc {doc} on peer {node.peer.peer_id} is {value!r}",
                    )
                    return
                if value <= 0.0:
                    record(
                        "rank_not_positive", rounds,
                        f"doc {doc} on peer {node.peer.peer_id} is {value!r}",
                    )
                    return
                total += value
        if not lo * config.docs <= total <= hi * config.docs:
            record(
                "mass_band", rounds,
                f"total mass {total:.6g} outside "
                f"[{lo * config.docs:.6g}, {hi * config.docs:.6g}]",
            )

    report = asyncio.run(runtime.run(max_rounds=config.max_rounds, round_hook=probe))

    # Ownership partition: every document held by exactly one peer.
    owned: dict = {}
    for node in runtime.nodes:
        for doc in node.peer.documents:
            doc = int(doc)
            if doc in owned:
                record(
                    "document_double_owned", report.rounds,
                    f"doc {doc} on peers {owned[doc]} and {node.peer.peer_id}",
                )
            owned[doc] = node.peer.peer_id
    missing = config.docs - len(owned)
    if missing:
        record(
            "document_abandoned", report.rounds,
            f"{missing} documents have no owning peer",
        )

    if not report.converged:
        record(
            "not_converged", report.rounds,
            f"quiesced={report.quiesced} "
            f"abandoned={report.abandoned_updates} "
            f"staleness={report.max_staleness:.3g}",
        )

    # Reference: the same problem, fault-free, pass-based.
    reference = P2PPagerankSimulation(
        graph,
        P2PNetwork(config.peers, placement, build_ring=False),
        epsilon=config.epsilon,
    ).run(keep_history=False)
    ref_ranks = reference.ranks
    rel = np.abs(report.ranks - ref_ranks) / np.maximum(np.abs(ref_ranks), 1e-12)
    p99 = float(np.percentile(rel, 99))
    if p99 > config.rank_tolerance:
        record(
            "rank_divergence", report.rounds,
            f"p99 relative error {p99:.3g} > {config.rank_tolerance:.3g}",
        )
    ref_mass = float(ref_ranks.sum())
    mass_error = abs(float(report.ranks.sum()) - ref_mass) / ref_mass
    if mass_error > config.mass_tolerance:
        record(
            "mass_conservation", report.rounds,
            f"relative mass gap {mass_error:.3g} > {config.mass_tolerance:.3g}",
        )

    soak = SoakReport(
        seed=seed,
        converged=report.converged,
        quiesced=report.quiesced,
        rounds=report.rounds,
        crashes=report.crashes,
        restarts=report.restarts,
        abandoned_updates=report.abandoned_updates,
        mass_error=mass_error,
        p99_error=p99,
        violations=violations,
    )
    if trace is not None:
        trace.event(
            "recovery.soak",
            seed=seed,
            ok=soak.ok,
            converged=soak.converged,
            rounds=soak.rounds,
            crashes=soak.crashes,
            restarts=soak.restarts,
            violations=len(violations),
            mass_error=mass_error,
            p99_error=p99,
        )
    return soak
