"""Crash scheduling, suspicion tracking, and restart supervision.

Glue between the fault plan, the failure detector, and the runtime:
the :class:`Supervisor` owns the deterministic crash timeline (from
:meth:`repro.faults.plan.FaultPlan.crash_events`, scaled by the run's
``pass_time``), tracks which peers are down, decides *when* a restart
may fire — only after the detector has suspected the peer **and** the
scheduled down-spell has elapsed — and feeds the scheduler the exact
times it must visit so detection latency and downtime are part of the
reproducible VirtualClock timeline (docs/PROTOCOL.md §15.3–§15.4).

The actual crash/restart mechanics (wiping volatile state, WAL replay,
re-publish anti-entropy) live in
:class:`~repro.runtime.runtime.AsyncPeerRuntime`; the supervisor is
pure bookkeeping so it can be unit-tested without an event loop.
``recovery.*`` metrics (docs/OBSERVABILITY.md §10) are emitted here
and by the soak harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import get_registry
from repro.recovery.detector import HeartbeatFailureDetector

__all__ = ["RecoveryConfig", "Supervisor"]


class _RecoveryInstruments:
    """Registry handles for the recovery subsystem's emissions
    (no-op singletons under the default disabled registry).
    Catalogued in docs/OBSERVABILITY.md §10."""

    __slots__ = (
        "wal_records", "snapshots", "replayed", "crashes", "restarts",
        "suspicions", "false_suspicions", "state_loss", "republished",
        "healed", "parked", "detection_delay", "downtime", "violations",
    )

    def __init__(self, reg) -> None:
        self.wal_records = reg.counter(
            "recovery.wal_records", unit="records",
            description="durable mutations appended to peer WALs",
        )
        self.snapshots = reg.counter(
            "recovery.snapshots", unit="snapshots",
            description="compaction snapshots captured (WAL truncations)",
        )
        self.replayed = reg.counter(
            "recovery.wal_replayed_records", unit="records",
            description="WAL records re-applied during restart replays",
        )
        self.crashes = reg.counter(
            "recovery.crashes", unit="crashes",
            description="peer crashes applied by the supervisor",
        )
        self.restarts = reg.counter(
            "recovery.restarts", unit="restarts",
            description="supervised peer restarts from WAL+snapshot",
        )
        self.suspicions = reg.counter(
            "recovery.suspicions", unit="peers",
            description="down peers flagged by the failure detector",
        )
        self.false_suspicions = reg.counter(
            "recovery.false_suspicions", unit="peers",
            description="live peers the detector wrongly suspected",
        )
        self.state_loss = reg.counter(
            "recovery.state_loss", unit="crashes",
            description="crashes where replay failed the bitwise check",
        )
        self.republished = reg.counter(
            "recovery.republished_updates", unit="messages",
            description="anti-entropy updates re-published around restarts",
        )
        self.healed = reg.counter(
            "recovery.abandoned_healed", unit="messages",
            description="abandoned updates forgiven after neighbor re-publish",
        )
        self.parked = reg.counter(
            "recovery.parked_deliveries", unit="envelopes",
            description="envelopes parked for down peers and redelivered",
        )
        self.detection_delay = reg.histogram(
            "recovery.detection_delay", unit="time",
            description="crash-to-suspicion latency per detected crash",
        )
        self.downtime = reg.histogram(
            "recovery.downtime", unit="time",
            description="crash-to-restart duration per recovered peer",
        )
        self.violations = reg.counter(
            "recovery.soak_violations", unit="violations",
            description="invariant violations recorded by the soak harness",
        )


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables for the durable-state and self-healing layer.

    Attributes
    ----------
    snapshot_interval:
        WAL records between compaction snapshots
        (docs/PROTOCOL.md §15.2).
    heartbeat_timeout_passes:
        Failure-detector hard timeout, in pass-time units.
    phi_threshold:
        Optional phi-accrual suspicion threshold (None = hard timeout
        only; docs/PROTOCOL.md §15.3).
    neighbor_republish:
        After a restart, have live peers re-publish their current
        values toward the recovered peer and forgive abandoned flights
        (anti-entropy catch-up, docs/PROTOCOL.md §15.4).
    verify_replay_on_crash:
        At every crash, check that WAL+snapshot replay reproduces the
        crashed peer's durable state bitwise (cheap; the §15.1
        invariant — failures count into ``recovery.state_loss``).
    wal_dir:
        Optional directory for file-backed WAL mirrors (one JSONL file
        per peer); None keeps logs in memory.
    """

    snapshot_interval: int = 256
    heartbeat_timeout_passes: float = 2.0
    phi_threshold: Optional[float] = None
    neighbor_republish: bool = True
    verify_replay_on_crash: bool = True
    wal_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {self.snapshot_interval}"
            )
        if self.heartbeat_timeout_passes <= 0:
            raise ValueError(
                "heartbeat_timeout_passes must be positive, got "
                f"{self.heartbeat_timeout_passes}"
            )


class Supervisor:
    """Deterministic crash/restart bookkeeping for the runtime.

    Parameters
    ----------
    num_peers:
        Peers under supervision.
    crash_events:
        ``(pass_index, peer, down_passes)`` tuples (see
        :meth:`repro.faults.plan.FaultPlan.crash_events`); the crash
        fires at ``pass_index * pass_time`` and the peer becomes
        *eligible* to restart ``down_passes`` passes later — the
        restart itself still waits for the failure detector.
    pass_time:
        Virtual-clock duration of one pass (scales pass-indexed
        schedules into clock time).
    config:
        Recovery tunables (detector timeout, phi threshold).
    """

    def __init__(
        self,
        num_peers: int,
        crash_events: Sequence[Tuple[int, int, int]],
        *,
        pass_time: float,
        config: Optional[RecoveryConfig] = None,
    ) -> None:
        self.num_peers = num_peers
        self.pass_time = float(pass_time)
        self.config = config if config is not None else RecoveryConfig()
        self.detector = HeartbeatFailureDetector(
            num_peers,
            timeout=self.config.heartbeat_timeout_passes * self.pass_time,
            phi_threshold=self.config.phi_threshold,
        )
        self.instruments = _RecoveryInstruments(get_registry())
        # Pending crash schedule, soonest first.
        self._schedule: List[Tuple[float, int, float]] = sorted(
            (
                (t * self.pass_time, int(peer), down * self.pass_time)
                for t, peer, down in crash_events
            ),
        )
        for _, peer, _ in self._schedule:
            if not 0 <= peer < num_peers:
                raise ValueError(f"crash schedules unknown peer {peer}")
        self._down: Dict[int, Dict[str, Optional[float]]] = {}
        #: Completed (peer, crashed_at, restarted_at) triples.
        self.history: List[Tuple[int, float, float]] = []
        self.crashes_applied = 0
        self.restarts_applied = 0

    # ------------------------------------------------------------------
    def is_down(self, peer: int) -> bool:
        return peer in self._down

    @property
    def down_peers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._down))

    @property
    def pending_crashes(self) -> int:
        return len(self._schedule)

    @property
    def idle(self) -> bool:
        """True when no crash is scheduled and nobody is down."""
        return not self._schedule and not self._down

    # ------------------------------------------------------------------
    def crashes_due(self, now: float) -> List[int]:
        """Pop and return peers whose crash time has arrived.

        A peer already down keeps its original record (overlapping
        schedule entries collapse into the first spell).
        """
        due: List[int] = []
        while self._schedule and self._schedule[0][0] <= now:
            _, peer, down_for = self._schedule.pop(0)
            if peer in self._down:
                continue
            self._down[peer] = {
                "crashed_at": now,
                "up_time": now + down_for,
                "detected_at": None,
            }
            due.append(peer)
        return due

    def mark_crashed(self, peer: int, now: float, *, down_for: float) -> None:
        """Record an unscheduled crash (used by tests and soak chaos)."""
        if peer in self._down:
            return
        self._down[peer] = {
            "crashed_at": now,
            "up_time": now + down_for,
            "detected_at": None,
        }

    def note_crash_applied(self, peer: int) -> None:
        """Count a crash the runtime has mechanically applied.  The
        detector keeps the peer's last heartbeat: suspicion must accrue
        from the silence that *follows* the crash."""
        self.crashes_applied += 1
        self.instruments.crashes.inc()

    # ------------------------------------------------------------------
    def observe(self, now: float) -> List[int]:
        """Run suspicion checks; returns newly suspected down peers.

        Live peers the detector suspects (slow, not dead) are counted
        as ``recovery.false_suspicions`` but never restarted.
        """
        newly: List[int] = []
        for peer in sorted(self._down):
            record = self._down[peer]
            if record["detected_at"] is None and self.detector.suspect(peer, now):
                record["detected_at"] = now
                crashed_at = record["crashed_at"]
                assert crashed_at is not None
                self.instruments.suspicions.inc()
                self.instruments.detection_delay.observe(now - crashed_at)
                newly.append(peer)
        for peer in range(self.num_peers):
            if peer not in self._down and self.detector.suspect(peer, now):
                self.instruments.false_suspicions.inc()
        return newly

    def restarts_due(self, now: float) -> List[int]:
        """Down peers whose restart may fire now: suspected by the
        detector *and* past their scheduled down spell."""
        due: List[int] = []
        for peer in sorted(self._down):
            record = self._down[peer]
            up_time = record["up_time"]
            assert up_time is not None
            if record["detected_at"] is not None and now >= up_time:
                due.append(peer)
        return due

    def mark_restarted(self, peer: int, now: float) -> None:
        record = self._down.pop(peer)
        crashed_at = record["crashed_at"]
        assert crashed_at is not None
        self.history.append((peer, crashed_at, now))
        self.restarts_applied += 1
        self.instruments.restarts.inc()
        self.instruments.downtime.observe(now - crashed_at)
        # Restarted peers heartbeat from 'now' on a fresh inter-arrival
        # window, so the phi estimator never sees the downtime gap.
        self.detector.forget(peer)
        self.detector.heartbeat(peer, now)

    # ------------------------------------------------------------------
    def next_event(self, now: float) -> Optional[float]:
        """Earliest future time the scheduler must visit on the
        supervisor's account: the next scheduled crash, a down peer's
        suspicion deadline, or a suspected peer's restart eligibility."""
        candidates: List[float] = []
        for t, _, _ in self._schedule:
            if t > now:
                candidates.append(t)
                break
        for peer in self._down:
            record = self._down[peer]
            up_time = record["up_time"]
            assert up_time is not None
            if record["detected_at"] is None:
                deadline = self.detector.deadline(peer)
                if deadline > now:
                    candidates.append(deadline)
            if up_time > now:
                candidates.append(up_time)
        future = [t for t in candidates if t > now]
        return min(future) if future else None
