"""Compacted peer snapshots: the WAL's checkpoint counterpart.

An unbounded WAL makes restart cost proportional to the whole run; the
paper's peers are expected to crash and rejoin "at any time" (§3.1),
so recovery must be cheap.  A :class:`PeerSnapshot` is a point-in-time
copy of exactly the durable slice of a :class:`~repro.p2p.peer.Peer` —
ranks, published values, received remote values, both version maps,
and the owned-document set — everything :meth:`PeerSnapshot.restore`
needs to rebuild a peer that is *bitwise identical* to the captured
one (floats are copied, never re-derived).  Volatile state (outbox,
deferred store, retransmit buffers) is deliberately excluded: a crash
destroys it, and recovery heals it by re-publishing
(docs/PROTOCOL.md §15.2).

The journal layer (:mod:`repro.recovery.journal`) captures a snapshot
every ``snapshot_interval`` WAL records and truncates the log — the
classic checkpoint-plus-tail recovery scheme.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graphs.linkgraph import LinkGraph
from repro.p2p.peer import Peer

__all__ = ["PeerSnapshot"]


@dataclass(frozen=True)
class PeerSnapshot:
    """The durable slice of one peer, frozen at a point in time.

    Attributes
    ----------
    peer_id:
        The captured peer.
    init_rank, honor_versions:
        Constructor parameters needed to rebuild an equivalent peer.
    documents:
        Owned document ids (sorted).
    rank, published:
        Per-document current and last-announced values.
    remote_values:
        Last received value per remote in-linking document.
    remote_versions:
        Version of each held remote value.
    publish_versions:
        Per-local-document publish sequence numbers.
    """

    peer_id: int
    init_rank: float
    honor_versions: bool
    documents: Tuple[int, ...]
    rank: Dict[int, float]
    published: Dict[int, float]
    remote_values: Dict[int, float]
    remote_versions: Dict[int, int]
    publish_versions: Dict[int, int]

    @classmethod
    def capture(cls, peer: Peer) -> "PeerSnapshot":
        """Copy the peer's durable state (no float is recomputed)."""
        return cls(
            peer_id=peer.peer_id,
            init_rank=peer.init_rank,
            honor_versions=peer.honor_versions,
            documents=tuple(int(d) for d in peer.documents),
            rank=dict(peer.rank),
            published=dict(peer.published),
            remote_values=dict(peer.remote_values),
            remote_versions=dict(peer._remote_versions),
            publish_versions=dict(peer._publish_version),
        )

    def restore(self, graph: LinkGraph) -> Peer:
        """Rebuild a peer bitwise-equal (durably) to the captured one."""
        peer = Peer(
            self.peer_id,
            self.documents,
            graph,
            init_rank=self.init_rank,
            honor_versions=self.honor_versions,
        )
        peer.rank = dict(self.rank)
        peer.published = dict(self.published)
        peer.remote_values = dict(self.remote_values)
        peer._remote_versions = dict(self.remote_versions)
        peer._publish_version = dict(self.publish_versions)
        return peer

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise as one JSON line (repr-exact floats)."""
        return json.dumps(
            {
                "peer_id": self.peer_id,
                "init_rank": self.init_rank,
                "honor_versions": self.honor_versions,
                "documents": list(self.documents),
                "rank": {str(k): v for k, v in sorted(self.rank.items())},
                "published": {str(k): v for k, v in sorted(self.published.items())},
                "remote_values": {
                    str(k): v for k, v in sorted(self.remote_values.items())
                },
                "remote_versions": {
                    str(k): v for k, v in sorted(self.remote_versions.items())
                },
                "publish_versions": {
                    str(k): v for k, v in sorted(self.publish_versions.items())
                },
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "PeerSnapshot":
        """Parse a line written by :meth:`to_json`."""
        body = json.loads(line)
        return cls(
            peer_id=int(body["peer_id"]),
            init_rank=float(body["init_rank"]),
            honor_versions=bool(body["honor_versions"]),
            documents=tuple(int(d) for d in body["documents"]),
            rank={int(k): float(v) for k, v in body["rank"].items()},
            published={int(k): float(v) for k, v in body["published"].items()},
            remote_values={
                int(k): float(v) for k, v in body["remote_values"].items()
            },
            remote_versions={
                int(k): int(v) for k, v in body["remote_versions"].items()
            },
            publish_versions={
                int(k): int(v) for k, v in body["publish_versions"].items()
            },
        )
