"""Internal utilities shared across the :mod:`repro` package.

Nothing in here is part of the public API; downstream users should not
import from :mod:`repro._util` directly.  The helpers are grouped by
concern:

``rng``
    Deterministic random-number-generator plumbing.  Every stochastic
    component in the library accepts a ``seed`` (or ``rng``) argument
    and routes it through :func:`repro._util.rng.as_generator` so that
    experiments are exactly reproducible.

``validation``
    Small argument-checking helpers that raise consistent, descriptive
    exceptions.  Hot paths validate once at the boundary and then trust
    their inputs, per the "validate at the edges" idiom.

``timers``
    Lightweight wall-clock timers used by the simulation engines to
    report per-pass cost without dragging in a profiler dependency.
"""

from repro._util.rng import as_generator, spawn_generators
from repro._util.timers import Timer
from repro._util.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_threshold,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_threshold",
]
