"""Boundary argument validation helpers.

These raise ``ValueError``/``TypeError`` with uniform messages.  They
are used at public-API boundaries only; inner loops assume validated
inputs (validation inside a per-pass loop would show up in profiles).
"""

from __future__ import annotations

import numbers


def check_positive(name: str, value, *, strict: bool = True) -> None:
    """Require ``value`` to be a positive (or non-negative) real number.

    Parameters
    ----------
    name:
        Argument name used in the error message.
    value:
        The value to check.
    strict:
        When true (default) require ``value > 0``; otherwise allow 0.
    """
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value) -> None:
    """Require ``value`` in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_fraction(name: str, value) -> None:
    """Require ``value`` in the half-open interval (0, 1]."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")


def check_threshold(name: str, value) -> None:
    """Require a convergence threshold: a strictly positive float < 1.

    The paper evaluates thresholds between 0.2 and 1e-7; anything >= 1
    would declare convergence immediately and is almost certainly a
    caller bug, so it is rejected loudly.
    """
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value!r}")
