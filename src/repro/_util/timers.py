"""Lightweight wall-clock timing for simulation passes.

The hpc-parallel guideline is "no optimisation without measuring"; the
simulation engines wrap each pass in a :class:`Timer` so per-pass cost
is always available in their metrics without requiring an external
profiler.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(10))
    >>> t.count
    1
    >>> t.total >= 0.0
    True
    """

    total: float = 0.0
    count: int = 0
    last: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.last = time.perf_counter() - self._start
        self.total += self.last
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean seconds per timed block (0.0 if never used)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero all accumulated statistics."""
        self.total = 0.0
        self.count = 0
        self.last = 0.0
