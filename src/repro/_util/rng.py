"""Deterministic random-number-generator plumbing.

All stochastic code in :mod:`repro` takes a ``seed`` argument that may
be ``None`` (fresh OS entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralising the conversion in
:func:`as_generator` keeps the convention uniform and makes experiments
reproducible end to end: the benchmark drivers pass a single integer
seed and every substrate below them derives its randomness from it.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream,
        a :class:`numpy.random.SeedSequence`, or an existing
        ``Generator`` (returned unchanged, so callers can thread one
        generator through a whole experiment).

    Examples
    --------
    >>> g = as_generator(42)
    >>> h = as_generator(g)
    >>> g is h
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or numpy Generator, got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Used when an experiment has several stochastic components (graph
    synthesis, document placement, churn, query generation) that must
    not share a stream — otherwise changing the number of draws in one
    component would silently perturb the others.

    The derivation uses :class:`numpy.random.SeedSequence` spawning,
    which guarantees statistical independence between the children.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream.
        children = seed.spawn(n)
        return list(children)
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
