"""Centralized-crawler alternative cost model (paper §5).

The paper briefly weighs a centralized crawler against the distributed
scheme on a P2P store.  Three designs are priced here, in bytes moved,
so the §5 qualitative argument becomes a quantitative comparison:

1. **naive crawler** — fetch every document to a central server
   (the "undesirable" strawman: traffic = total corpus bytes per
   recomputation cycle);
2. **link crawler** — transmit only each document's link structure to
   the server, compute centrally, redistribute the ranks (the paper's
   "more efficient crawler");
3. **distributed** — the paper's scheme: update messages only, priced
   from a measured message count.

The crawler designs pay their cost *per recomputation cycle* (the web
practice the paper criticises: days-long recrawls), whereas the
distributed scheme pays once to converge and then only incremental
updates — :func:`amortized_comparison` exposes exactly that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.graphs.linkgraph import LinkGraph
from repro.p2p.messages import MESSAGE_SIZE_BYTES

__all__ = ["CrawlCosts", "crawl_costs", "amortized_comparison"]

#: Mean document size implied by the paper's corpus (99 MB / ~11,000
#: documents ≈ 9 KB per document).
DEFAULT_DOC_BYTES = 9_000

#: Bytes to encode one link during a link-structure-only crawl: source
#: and target GUIDs (2 × 128 bits).
LINK_RECORD_BYTES = 32

#: Bytes to redistribute one computed rank: GUID + value (the paper's
#: update-message layout).
RANK_RECORD_BYTES = MESSAGE_SIZE_BYTES


@dataclass(frozen=True)
class CrawlCosts:
    """Bytes moved by each design for one full pagerank computation.

    Attributes
    ----------
    naive_crawler_bytes:
        Fetch every document to the central server.
    link_crawler_bytes:
        Ship link records in, redistribute ranks out.
    distributed_bytes:
        The distributed scheme's update-message traffic.
    """

    naive_crawler_bytes: int
    link_crawler_bytes: int
    distributed_bytes: int

    @property
    def naive_vs_distributed(self) -> float:
        """How many times more traffic the naive crawler moves."""
        return self.naive_crawler_bytes / max(self.distributed_bytes, 1)

    @property
    def link_vs_distributed(self) -> float:
        """How many times more (or less) the link crawler moves."""
        return self.link_crawler_bytes / max(self.distributed_bytes, 1)


def crawl_costs(
    graph: LinkGraph,
    distributed_messages: int,
    *,
    mean_document_bytes: float = DEFAULT_DOC_BYTES,
) -> CrawlCosts:
    """Price all three designs for one full computation.

    Parameters
    ----------
    graph:
        The document link graph (node count and link count drive the
        crawler costs).
    distributed_messages:
        Measured update-message total of a distributed run at the
        chosen ε (e.g. ``RunReport.total_messages``).
    mean_document_bytes:
        Average document size for the naive design.
    """
    check_positive("mean_document_bytes", mean_document_bytes)
    if distributed_messages < 0:
        raise ValueError("distributed_messages must be >= 0")
    n, e = graph.num_nodes, graph.num_edges
    return CrawlCosts(
        naive_crawler_bytes=int(n * mean_document_bytes),
        link_crawler_bytes=int(e * LINK_RECORD_BYTES + n * RANK_RECORD_BYTES),
        distributed_bytes=int(distributed_messages * MESSAGE_SIZE_BYTES),
    )


def amortized_comparison(
    costs: CrawlCosts,
    *,
    recompute_cycles: int,
    incremental_bytes_per_cycle: float = 0.0,
) -> dict:
    """Total bytes over ``recompute_cycles`` update periods.

    Crawler designs repeat their full cost every cycle (the periodic
    recrawl); the distributed scheme pays its full cost once, then only
    the incremental insert/delete traffic per cycle (§3.1/§4.7) —
    measured e.g. via :func:`repro.core.incremental.simulate_insert`
    node-coverage totals.
    """
    if recompute_cycles < 1:
        raise ValueError(f"recompute_cycles must be >= 1, got {recompute_cycles}")
    if incremental_bytes_per_cycle < 0:
        raise ValueError("incremental_bytes_per_cycle must be >= 0")
    return {
        "naive_crawler_bytes": costs.naive_crawler_bytes * recompute_cycles,
        "link_crawler_bytes": costs.link_crawler_bytes * recompute_cycles,
        "distributed_bytes": int(
            costs.distributed_bytes
            + incremental_bytes_per_cycle * (recompute_cycles - 1)
        ),
    }
