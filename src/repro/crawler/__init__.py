"""Centralized-crawler alternative (paper §5) — cost models comparing
the distributed scheme against crawler-based central computation."""

from repro.crawler.cost import (
    DEFAULT_DOC_BYTES,
    LINK_RECORD_BYTES,
    RANK_RECORD_BYTES,
    CrawlCosts,
    amortized_comparison,
    crawl_costs,
)

__all__ = [
    "CrawlCosts",
    "crawl_costs",
    "amortized_comparison",
    "DEFAULT_DOC_BYTES",
    "LINK_RECORD_BYTES",
    "RANK_RECORD_BYTES",
]
