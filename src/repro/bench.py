"""Performance benchmark harness (``repro bench``).

Runs a pinned scenario matrix over the engines this reproduction
ships — the vectorized pass engine (:class:`repro.core.ChaoticPagerank`),
the sharded protocol simulator
(:class:`repro.simulation.P2PPagerankSimulation`), and the concurrent
asyncio runtime (:class:`repro.runtime.AsyncPeerRuntime`, deterministic
scheduler mode over the in-memory transport) — and records wall-time,
pass counts, and bytes-on-wire into a JSON file
(``BENCH_pagerank.json`` at the repo root by convention).

The matrix is pinned: N ∈ {1k, 10k, 100k} documents, message loss
∈ {0, 0.2} (protocol simulator only — the vectorized engine models a
lossless network), churn on/off (75 % availability when on), plus one
1k-document async-runtime row (``async_runtime_1k``; for runtime rows
the ``passes`` column records scheduler rounds).  On top of the
matrix, a dedicated 10k convergence scenario measures the sharded
(``csr``) simulator against the per-edge Python (``naive``) path — the
speedup sharding buys — the payload's ``async_vs_pass`` entry pairs
the async runtime's wall-time with the pass simulator's on the
matching 1k scenario, and ``parallel_vs_serial`` pairs the
multi-process sharded engine (:mod:`repro.parallel`) with the serial
vectorized engine at the largest common size, recording ``cpu_count``
because the ratio is hardware-dependent (a single-core host pays the
process/barrier overhead with no parallel compute to buy it back).

Pass counts, message counts, and bytes are **deterministic** (same
seeds → same values); :func:`compare_results` checks them for exact
equality against a previously committed file.  Wall-times are not
portable across machines, so every run also times a fixed calibration
workload and comparisons scale the committed wall-times by the ratio
of calibration times before applying the regression threshold.

Run it::

    python -m repro bench                  # full matrix, writes JSON
    python -m repro bench --smoke          # 1k rows only
    python -m repro bench --smoke --compare  # regression-check, no write

See docs/PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "BenchScenario",
    "BenchResult",
    "BenchComparison",
    "default_matrix",
    "speedup_scenarios",
    "calibrate",
    "run_scenario",
    "run_bench",
    "compare_results",
    "render_results",
    "configure_parser",
    "main",
]

#: Schema version of the JSON payload.
SCHEMA_VERSION = 1

#: Default wall-time regression threshold (fraction over committed).
DEFAULT_THRESHOLD = 0.25

#: Absolute wall-time slack added on top of the fractional threshold.
#: Millisecond-scale rows (the 1k smoke scenarios run in ~3 ms) sit at
#: the granularity of scheduler noise, where a pure ratio check flakes;
#: the additive floor makes the gate meaningful at every row size
#: without loosening the multi-second rows.
WALL_SLACK_S = 0.05

#: Peers used at each pinned graph size.
PEERS_AT = {1_000: 50, 10_000: 100, 100_000: 500}

#: Availability fraction of the churn-on rows (the paper's 75 % column).
CHURN_AVAILABILITY = 0.75


@dataclass(frozen=True)
class BenchScenario:
    """One pinned cell of the benchmark matrix.

    ``engine`` is ``"vectorized"`` (the pass engine), ``"simulator"``
    (the protocol-level simulator), ``"runtime"`` (the concurrent
    asyncio runtime in deterministic scheduler mode — its ``passes``
    measurement records scheduler rounds), ``"parallel"`` (the
    multi-process sharded engine of :mod:`repro.parallel`, with
    ``workers`` worker processes), or ``"serve"`` (the query-serving
    layer of :mod:`repro.serve` offering ``qps`` queries per clock
    unit for ``duration`` units — its ``passes`` measurement records
    completed queries and ``messages`` the document ids moved);
    ``kernel`` is the :func:`repro.core.kernel_backend` the run is
    pinned to.
    """

    name: str
    engine: str
    docs: int
    peers: int
    epsilon: float
    loss: float
    churn: bool
    kernel: str = "csr"
    seed: int = 7
    max_passes: int = 5_000
    repeats: int = 1
    workers: int = 1
    qps: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.engine not in (
            "vectorized", "simulator", "runtime", "parallel", "serve"
        ):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.kernel not in ("csr", "naive"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.engine == "vectorized" and self.loss:
            raise ValueError("the vectorized engine models a lossless network")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.workers > 1 and self.engine != "parallel":
            raise ValueError(
                f"workers applies to the parallel engine only, got {self.engine!r}"
            )
        if self.engine == "serve":
            if self.qps <= 0 or self.duration <= 0:
                raise ValueError("serve scenarios need qps > 0 and duration > 0")
            if self.loss or self.churn:
                raise ValueError(
                    "serve scenarios run a lossless, churn-free runtime"
                )
        elif self.qps or self.duration:
            raise ValueError(
                f"qps/duration apply to the serve engine only, got {self.engine!r}"
            )


@dataclass(frozen=True)
class BenchResult:
    """Measured outcome of one scenario: the deterministic protocol
    numbers (passes/messages/bytes/converged) plus wall-time.

    ``extra`` carries engine-specific measurements flattened into the
    JSON row — the serve engine records achieved QPS, latency
    percentiles, and cache hit rate there (docs/PERFORMANCE.md,
    "Serve rows").
    """

    scenario: BenchScenario
    wall_s: float
    passes: int
    messages: int
    bytes_on_wire: int
    converged: bool
    extra: Optional[Dict[str, float]] = None

    def to_json(self) -> Dict[str, object]:
        d = dict(asdict(self.scenario))
        d.update(
            wall_s=self.wall_s,
            passes=self.passes,
            messages=self.messages,
            bytes_on_wire=self.bytes_on_wire,
            converged=self.converged,
        )
        if self.extra:
            d.update(self.extra)
        return d


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of checking a fresh run against a committed file."""

    regressions: List[str]
    mismatches: List[str]
    checked: int

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatches


def default_matrix(*, smoke: bool = False) -> List[BenchScenario]:
    """The pinned scenario matrix.

    ``smoke`` restricts it to the 1k-document rows (the CI smoke job);
    the full matrix covers N ∈ {1k, 10k, 100k}.
    """
    sizes = [1_000] if smoke else [1_000, 10_000, 100_000]
    scenarios: List[BenchScenario] = []
    for docs in sizes:
        peers = PEERS_AT[docs]
        label = f"{docs // 1000}k"
        for churn in (False, True):
            suffix = "churn" if churn else "stable"
            scenarios.append(
                BenchScenario(
                    name=f"engine_{label}_{suffix}",
                    engine="vectorized",
                    docs=docs,
                    peers=peers,
                    epsilon=1e-4,
                    loss=0.0,
                    churn=churn,
                )
            )
            for loss in (0.0, 0.2):
                loss_tag = f"loss{int(loss * 100)}"
                scenarios.append(
                    BenchScenario(
                        name=f"sim_{label}_{loss_tag}_{suffix}",
                        engine="simulator",
                        docs=docs,
                        peers=peers,
                        epsilon=1e-4,
                        loss=loss,
                        churn=churn,
                    )
                )
    # One async-runtime row: the concurrent runtime is a per-document
    # Python path, so it is priced at 1k only (enough to track the
    # async-vs-pass ratio without dominating the matrix's wall-time).
    scenarios.append(
        BenchScenario(
            name="async_runtime_1k",
            engine="runtime",
            docs=1_000,
            peers=PEERS_AT[1_000],
            epsilon=1e-4,
            loss=0.0,
            churn=False,
        )
    )
    # Sharded multi-process engine rows.  The smoke matrix carries one
    # 2-worker 1k row (the CI parallel-smoke gate); the full matrix
    # scales workers at 10k and prices the 100k w∈{1,4}
    # parallel-vs-serial pair.  Protocol numbers of every parallel row
    # are worker-count-invariant, so they compare exactly like the
    # serial rows'.
    if smoke:
        parallel_rows = [("parallel_1k_w2", 1_000, 2)]
    else:
        parallel_rows = [
            ("parallel_1k_w2", 1_000, 2),
            ("parallel_10k_w1", 10_000, 1),
            ("parallel_10k_w2", 10_000, 2),
            ("parallel_10k_w4", 10_000, 4),
            ("parallel_100k_w1", 100_000, 1),
            ("parallel_100k_w4", 100_000, 4),
        ]
    for name, docs, workers in parallel_rows:
        scenarios.append(
            BenchScenario(
                name=name,
                engine="parallel",
                docs=docs,
                peers=PEERS_AT[docs],
                epsilon=1e-4,
                loss=0.0,
                churn=False,
                workers=workers,
            )
        )
    # Query-serving rows: the 1k-document corpus served at 1,000 QPS
    # (smoke) and 10,000 QPS (full matrix, the open-loop overload
    # regime).  Names key on offered QPS; the durations are short —
    # offered load, not wall-time, is what scales the row.
    serve_rows = [("serve_qps_1k", 1_000.0, 2.0)]
    if not smoke:
        serve_rows.append(("serve_qps_10k", 10_000.0, 1.0))
    for name, qps, duration in serve_rows:
        scenarios.append(
            BenchScenario(
                name=name,
                engine="serve",
                docs=1_000,
                peers=PEERS_AT[1_000],
                epsilon=1e-4,
                loss=0.0,
                churn=False,
                qps=qps,
                duration=duration,
            )
        )
    return scenarios


def speedup_scenarios(*, docs: int = 10_000) -> List[BenchScenario]:
    """The convergence speedup pair: the same simulator scenario on the
    per-edge ``naive`` path and the sharded ``csr`` path.

    Pinned at 50 peers (200 documents each at 10k) and best-of-two
    timing, so the recorded ratio reflects steady-state per-pass cost
    rather than scheduler noise.
    """
    label = f"{docs // 1000}k"
    return [
        BenchScenario(
            name=f"speedup_sim_{label}_{kernel}",
            engine="simulator",
            docs=docs,
            peers=50,
            epsilon=1e-4,
            loss=0.0,
            churn=False,
            kernel=kernel,
            repeats=2,
        )
        for kernel in ("naive", "csr")
    ]


def calibrate(*, docs: int = 50_000, repeats: int = 20) -> float:
    """Time a fixed kernel workload, for cross-machine scaling.

    The workload (``repeats`` full pull passes over a pinned synthetic
    graph) is deterministic; only its duration varies with the host.
    Comparisons divide current by committed calibration time to scale
    committed wall-times onto this machine before thresholding.
    """
    from repro.core import make_workspace
    from repro.graphs import broder_graph

    graph = broder_graph(docs, seed=0)
    ws = make_workspace(graph)
    values = np.ones(graph.num_nodes)
    out = np.empty_like(values)
    start = time.perf_counter()
    for _ in range(repeats):
        ws.pull(values, 0.85, out=out)
    return time.perf_counter() - start


def run_scenario(scenario: BenchScenario) -> BenchResult:
    """Execute one scenario and measure it.

    The kernel backend is pinned by temporarily setting the
    ``REPRO_KERNEL`` environment switch around engine construction
    (peers/workspaces read it when built).
    """
    from repro.core.kernels import _KERNEL_ENV

    previous = os.environ.get(_KERNEL_ENV)
    os.environ[_KERNEL_ENV] = scenario.kernel
    runner = {
        "vectorized": _run_vectorized,
        "simulator": _run_simulator,
        "runtime": _run_runtime,
        "parallel": _run_parallel,
        "serve": _run_serve,
    }[scenario.engine]
    try:
        result = runner(scenario)
        for _ in range(scenario.repeats - 1):
            again = runner(scenario)
            if (again.passes, again.messages, again.converged) != (
                result.passes, result.messages, result.converged
            ):
                raise AssertionError(
                    f"{scenario.name}: repeat diverged — same seeds must "
                    "give identical protocol numbers"
                )
            if again.wall_s < result.wall_s:
                result = again
        return result
    finally:
        if previous is None:
            os.environ.pop(_KERNEL_ENV, None)
        else:
            os.environ[_KERNEL_ENV] = previous


def _run_vectorized(scenario: BenchScenario) -> BenchResult:
    from repro.core import ChaoticPagerank
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, FixedFractionChurn
    from repro.p2p.messages import MESSAGE_SIZE_BYTES

    graph = broder_graph(scenario.docs, seed=scenario.seed)
    placement = DocumentPlacement.random(
        scenario.docs, scenario.peers, seed=scenario.seed + 1
    )
    engine = ChaoticPagerank(
        graph,
        placement.assignment,
        num_peers=scenario.peers,
        epsilon=scenario.epsilon,
    )
    availability = (
        FixedFractionChurn(
            scenario.peers, CHURN_AVAILABILITY, seed=scenario.seed + 2
        )
        if scenario.churn
        else None
    )
    start = time.perf_counter()
    report = engine.run(
        availability=availability,
        keep_history=False,
        max_passes=scenario.max_passes,
    )
    wall = time.perf_counter() - start
    return BenchResult(
        scenario=scenario,
        wall_s=wall,
        passes=report.passes,
        messages=report.total_messages,
        bytes_on_wire=report.total_messages * MESSAGE_SIZE_BYTES,
        converged=report.converged,
    )


def _run_parallel(scenario: BenchScenario) -> BenchResult:
    from repro.faults.plan import FaultSpec
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, FixedFractionChurn
    from repro.p2p.messages import MESSAGE_SIZE_BYTES
    from repro.parallel import ParallelPagerank

    graph = broder_graph(scenario.docs, seed=scenario.seed)
    placement = DocumentPlacement.random(
        scenario.docs, scenario.peers, seed=scenario.seed + 1
    )
    engine = ParallelPagerank(
        graph,
        placement.assignment,
        num_peers=scenario.peers,
        epsilon=scenario.epsilon,
        workers=scenario.workers,
    )
    availability = (
        FixedFractionChurn(
            scenario.peers, CHURN_AVAILABILITY, seed=scenario.seed + 2
        )
        if scenario.churn
        else None
    )
    fault_spec = FaultSpec(drop_rate=scenario.loss) if scenario.loss else None
    start = time.perf_counter()
    report = engine.run(
        availability=availability,
        fault_spec=fault_spec,
        fault_seed=scenario.seed + 3,
        keep_history=False,
        max_passes=scenario.max_passes,
    )
    wall = time.perf_counter() - start
    return BenchResult(
        scenario=scenario,
        wall_s=wall,
        passes=report.passes,
        messages=report.total_messages,
        bytes_on_wire=report.total_messages * MESSAGE_SIZE_BYTES,
        converged=report.converged,
    )


def _run_simulator(scenario: BenchScenario) -> BenchResult:
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, FixedFractionChurn, P2PNetwork
    from repro.simulation import P2PPagerankSimulation

    graph = broder_graph(scenario.docs, seed=scenario.seed)
    placement = DocumentPlacement.random(
        scenario.docs, scenario.peers, seed=scenario.seed + 1
    )
    network = P2PNetwork(scenario.peers, placement, build_ring=False)
    faults = (
        FaultPlan(FaultSpec(drop_rate=scenario.loss), seed=scenario.seed + 3)
        if scenario.loss
        else None
    )
    sim = P2PPagerankSimulation(
        graph, network, epsilon=scenario.epsilon, faults=faults
    )
    availability = (
        FixedFractionChurn(
            scenario.peers, CHURN_AVAILABILITY, seed=scenario.seed + 2
        )
        if scenario.churn
        else None
    )
    start = time.perf_counter()
    report = sim.run(
        availability=availability,
        keep_history=False,
        max_passes=scenario.max_passes,
    )
    wall = time.perf_counter() - start
    return BenchResult(
        scenario=scenario,
        wall_s=wall,
        passes=report.passes,
        messages=sim.traffic.update_messages,
        bytes_on_wire=sim.traffic.bytes_transferred,
        converged=report.converged,
    )


def _run_runtime(scenario: BenchScenario) -> BenchResult:
    import asyncio

    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.graphs import broder_graph
    from repro.p2p import DocumentPlacement, P2PNetwork
    from repro.p2p.messages import ACK_SIZE_BYTES, MESSAGE_SIZE_BYTES
    from repro.runtime import AsyncPeerRuntime
    from repro.simulation.events import OnOffSchedule

    graph = broder_graph(scenario.docs, seed=scenario.seed)
    placement = DocumentPlacement.random(
        scenario.docs, scenario.peers, seed=scenario.seed + 1
    )
    network = P2PNetwork(scenario.peers, placement, build_ring=False)
    faults = (
        FaultPlan(FaultSpec(drop_rate=scenario.loss), seed=scenario.seed + 3)
        if scenario.loss
        else None
    )
    availability = (
        OnOffSchedule(scenario.peers, mean_up=30.0, mean_down=10.0,
                      seed=scenario.seed + 2)
        if scenario.churn
        else None
    )
    runtime = AsyncPeerRuntime(
        graph,
        network,
        epsilon=scenario.epsilon,
        faults=faults,
        availability=availability,
        seed=scenario.seed + 4,
    )
    start = time.perf_counter()
    report = asyncio.run(runtime.run())
    wall = time.perf_counter() - start
    return BenchResult(
        scenario=scenario,
        wall_s=wall,
        passes=report.rounds,
        messages=report.messages,
        bytes_on_wire=(
            report.messages * MESSAGE_SIZE_BYTES + report.acks * ACK_SIZE_BYTES
        ),
        converged=report.converged,
    )


def _run_serve(scenario: BenchScenario) -> BenchResult:
    from repro.serve.service import ServeConfig, ServeSession

    config = ServeConfig(
        docs=scenario.docs,
        peers=scenario.peers,
        seed=scenario.seed,
        qps=scenario.qps,
        duration=scenario.duration,
        epsilon=scenario.epsilon,
    )
    session = ServeSession(config)
    start = time.perf_counter()
    report = session.run()
    wall = time.perf_counter() - start
    return BenchResult(
        scenario=scenario,
        wall_s=wall,
        passes=report.completed,
        messages=report.traffic_doc_ids,
        bytes_on_wire=report.bytes_on_wire,
        converged=report.runtime.converged,
        extra={
            "qps_achieved": report.qps_achieved,
            "latency_p50_s": report.latency_p50,
            "latency_p99_s": report.latency_p99,
            "cache_hit_rate": report.cache_hit_rate,
            "shed_rate": report.shed_rate,
        },
    )


def run_bench(
    *,
    smoke: bool = False,
    with_speedup: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the pinned matrix (plus the speedup pair) and return the
    JSON-ready payload.

    ``progress`` is an optional callable invoked with a line of text
    per completed scenario (the CLI passes ``print``).
    """
    results: List[BenchResult] = []
    scenarios = default_matrix(smoke=smoke)
    if with_speedup and not smoke:
        scenarios = scenarios + speedup_scenarios()
    calibration = calibrate()
    if progress is not None:
        progress(f"calibration workload: {calibration:.3f}s")
    for scenario in scenarios:
        result = run_scenario(scenario)
        results.append(result)
        if progress is not None:
            progress(
                f"{scenario.name}: wall={result.wall_s:.3f}s "
                f"passes={result.passes} bytes={result.bytes_on_wire} "
                f"converged={result.converged}"
            )
    payload: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "calibration_s": calibration,
        "cpu_count": os.cpu_count(),
        "scenarios": [r.to_json() for r in results],
    }
    by_name = {r.scenario.name: r for r in results}
    naive = by_name.get("speedup_sim_10k_naive")
    csr = by_name.get("speedup_sim_10k_csr")
    if naive is not None and csr is not None:
        payload["speedup_10k"] = {
            "naive_wall_s": naive.wall_s,
            "csr_wall_s": csr.wall_s,
            "ratio": naive.wall_s / csr.wall_s if csr.wall_s else float("inf"),
        }
    # Parallel-vs-serial pair at the largest size both engines ran.
    # The ratio is hardware-dependent: on a single-core host the
    # multi-process run adds barrier/IPC overhead with no parallel
    # compute to buy it back, so the pair records ``cpu_count``
    # alongside the honest measurement instead of asserting a floor
    # (docs/PERFORMANCE.md "Sharded execution model").
    for label in ("100k", "10k", "1k"):
        serial_row = by_name.get(f"engine_{label}_stable")
        par_rows = {
            w: by_name.get(f"parallel_{label}_w{w}") for w in (1, 2, 4)
        }
        best = next(
            (par_rows[w] for w in (4, 2, 1) if par_rows[w] is not None), None
        )
        if serial_row is not None and best is not None:
            payload["parallel_vs_serial"] = {
                "docs": serial_row.scenario.docs,
                "cpu_count": os.cpu_count(),
                "serial_wall_s": serial_row.wall_s,
                "parallel_workers": best.scenario.workers,
                "parallel_wall_s": best.wall_s,
                "ratio": (
                    serial_row.wall_s / best.wall_s
                    if best.wall_s
                    else float("inf")
                ),
            }
            break
    async_row = by_name.get("async_runtime_1k")
    pass_row = by_name.get("sim_1k_loss0_stable")
    if async_row is not None and pass_row is not None:
        payload["async_vs_pass"] = {
            "async_wall_s": async_row.wall_s,
            "pass_wall_s": pass_row.wall_s,
            "ratio": (
                async_row.wall_s / pass_row.wall_s
                if pass_row.wall_s
                else float("inf")
            ),
        }
    return payload


def compare_results(
    current: Dict[str, object],
    committed: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Check a fresh payload against a committed one.

    Deterministic protocol numbers (passes, messages, bytes,
    convergence) must match exactly for every scenario present in both
    files with the same parameters.  Wall-times regress when the
    current time exceeds the committed time — scaled by the ratio of
    calibration workloads — by more than ``threshold``.
    """
    regressions: List[str] = []
    mismatches: List[str] = []
    cur_cal = float(current.get("calibration_s", 0.0))
    old_cal = float(committed.get("calibration_s", 0.0))
    scale = cur_cal / old_cal if cur_cal > 0 and old_cal > 0 else 1.0
    committed_rows = {
        row["name"]: row for row in committed.get("scenarios", [])
    }
    checked = 0
    param_keys = (
        "engine", "kernel", "docs", "peers", "epsilon", "loss", "churn",
        "seed", "max_passes", "workers", "qps", "duration",
    )
    for row in current.get("scenarios", []):
        old = committed_rows.get(row["name"])
        if old is None:
            continue
        if any(row.get(k) != old.get(k) for k in param_keys):
            # Parameters changed: the committed row is a different
            # experiment, not a baseline.
            continue
        checked += 1
        deterministic = ["passes", "messages", "bytes_on_wire", "converged"]
        if row.get("engine") == "serve":
            # Serving runs on the virtual clock, so even its latency
            # percentiles are seeded and exact (docs/SERVING.md).
            deterministic += [
                "qps_achieved", "latency_p50_s", "latency_p99_s",
                "cache_hit_rate", "shed_rate",
            ]
        for key in deterministic:
            if row.get(key) != old.get(key):
                mismatches.append(
                    f"{row['name']}: {key} changed "
                    f"{old.get(key)} -> {row.get(key)} (deterministic "
                    "protocol number; same seeds must give same values)"
                )
        allowed = float(old["wall_s"]) * scale * (1.0 + threshold) + WALL_SLACK_S
        if float(row["wall_s"]) > allowed:
            regressions.append(
                f"{row['name']}: wall {row['wall_s']:.3f}s exceeds "
                f"{allowed:.3f}s (committed {old['wall_s']:.3f}s x "
                f"calibration {scale:.2f} x {1 + threshold:.2f} "
                f"+ {WALL_SLACK_S:.2f}s slack)"
            )
    return BenchComparison(
        regressions=regressions, mismatches=mismatches, checked=checked
    )


def render_results(payload: Dict[str, object]) -> str:
    """Human-readable table of a payload (the CLI's stdout)."""
    lines = [
        f"{'scenario':34} {'engine':10} {'kernel':6} "
        f"{'wall_s':>8} {'passes':>6} {'bytes':>12} conv"
    ]
    for row in payload.get("scenarios", []):
        lines.append(
            f"{row['name']:34} {row['engine']:10} {row['kernel']:6} "
            f"{row['wall_s']:8.3f} {row['passes']:6d} "
            f"{row['bytes_on_wire']:12d} {str(row['converged'])}"
        )
    speedup = payload.get("speedup_10k")
    if speedup:
        lines.append(
            f"\n10k simulator speedup (per-edge naive vs sharded csr): "
            f"{speedup['ratio']:.2f}x "
            f"({speedup['naive_wall_s']:.3f}s -> {speedup['csr_wall_s']:.3f}s)"
        )
    pair = payload.get("parallel_vs_serial")
    if pair:
        lines.append(
            f"\n{pair['docs']} docs parallel (w={pair['parallel_workers']}) "
            f"vs serial wall-time: {pair['ratio']:.2f}x "
            f"(serial {pair['serial_wall_s']:.3f}s, parallel "
            f"{pair['parallel_wall_s']:.3f}s, {pair['cpu_count']} CPUs)"
        )
    async_vs_pass = payload.get("async_vs_pass")
    if async_vs_pass:
        lines.append(
            f"\n1k async runtime vs pass simulator wall-time: "
            f"{async_vs_pass['ratio']:.2f}x "
            f"(async {async_vs_pass['async_wall_s']:.3f}s, "
            f"pass {async_vs_pass['pass_wall_s']:.3f}s)"
        )
    serve_rows = [
        row for row in payload.get("scenarios", [])
        if row.get("engine") == "serve"
    ]
    for row in serve_rows:
        lines.append(
            f"\n{row['name']}: achieved {row['qps_achieved']:.0f} qps "
            f"(offered {row['qps']:.0f}), latency p50 "
            f"{row['latency_p50_s']:.4f}s / p99 {row['latency_p99_s']:.4f}s, "
            f"cache hit rate {row['cache_hit_rate']:.2f}, "
            f"shed rate {row['shed_rate']:.2f}"
        )
    return "\n".join(lines)


def main(args) -> int:
    """``repro bench`` command body (parsed-args entry point)."""
    payload = run_bench(
        smoke=args.smoke,
        with_speedup=not args.smoke,
        progress=print,
    )
    print()
    print(render_results(payload))
    out_path = args.out
    if args.compare:
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                committed = json.load(fh)
        except FileNotFoundError:
            print(f"\nno committed benchmark file at {out_path}; nothing to compare")
            return 1
        comparison = compare_results(
            payload, committed, threshold=args.threshold
        )
        print(
            f"\ncompared {comparison.checked} scenarios against {out_path} "
            f"(threshold {args.threshold:.0%})"
        )
        for line in comparison.mismatches:
            print(f"MISMATCH: {line}")
        for line in comparison.regressions:
            print(f"REGRESSION: {line}")
        if not comparison.ok:
            return 1
        print("no regressions")
        return 0
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {out_path}")
    return 0


def configure_parser(parser) -> None:
    """Attach ``repro bench`` arguments (shared with tests)."""
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the 1k-document rows (CI smoke job)",
    )
    parser.add_argument(
        "--out", type=str, default="BENCH_pagerank.json",
        help="benchmark JSON path (committed at the repo root)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="compare against the existing JSON instead of overwriting it; "
        "exit 1 on wall-time regression or protocol-number mismatch",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional wall-time regression (default 0.25)",
    )
