"""Document placement strategies (paper §4.2, §6, §8).

The paper's experiments use uniform random placement; its future work
asks whether link-structure-aware mapping could cut network overhead,
and its conclusion sketches a web-server deployment where each server
(peer) hosts whole sites.  This module provides all three placement
families behind one interface, so the traffic experiments can compare
them directly:

* :func:`random_placement` — the paper's methodology (§4.2);
* :func:`link_clustered_placement` — greedy BFS blocks: each peer gets
  a contiguous link neighbourhood, the cheap stand-in for the §6
  link-aware mapping (the ablation benchmark shows ~20 % message
  savings);
* :func:`host_clustered_placement` — the §8 web-server model:
  documents belong to hosts (power-law site sizes, strong intra-host
  linking in real webs), hosts are atomic placement units.

All return :class:`~repro.p2p.network.DocumentPlacement`; use
:func:`cross_edge_fraction` to compare the traffic-relevant statistic.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.graphs.linkgraph import LinkGraph
from repro.graphs.powerlaw import sample_power_law_degrees
from repro.p2p.network import DocumentPlacement

__all__ = [
    "random_placement",
    "link_clustered_placement",
    "host_clustered_placement",
    "refine_placement",
    "cross_edge_fraction",
]


def random_placement(
    num_docs: int, num_peers: int, *, seed: SeedLike = None
) -> DocumentPlacement:
    """Uniform random placement — the paper's §4.2 methodology."""
    return DocumentPlacement.random(num_docs, num_peers, seed=seed)


def link_clustered_placement(
    graph: LinkGraph,
    num_peers: int,
    *,
    seed: SeedLike = None,
) -> DocumentPlacement:
    """Greedy BFS-block placement: co-locate link neighbourhoods.

    Peers are filled one at a time with breadth-first link
    neighbourhoods of roughly equal size (``ceil(N / P)`` documents),
    so most links land intra-peer and generate no update messages.
    This is a cheap approximation of graph partitioning — good enough
    to answer the paper's §6 question affirmatively; a production
    system would use a proper balanced min-cut partitioner.
    """
    if num_peers < 1:
        raise ValueError(f"num_peers must be >= 1, got {num_peers}")
    n = graph.num_nodes
    target = int(np.ceil(n / num_peers)) if n else 0
    assignment = np.full(n, -1, dtype=np.int64)
    rng = as_generator(seed)
    order = rng.permutation(n)
    peer, filled = 0, 0
    queue: deque = deque()
    for start in order:
        if assignment[start] >= 0:
            continue
        queue.append(int(start))
        while queue:
            u = queue.popleft()
            if assignment[u] >= 0:
                continue
            assignment[u] = peer
            filled += 1
            if filled >= target and peer < num_peers - 1:
                peer, filled = peer + 1, 0
                queue.clear()
                break
            for v in graph.out_links(u):
                if assignment[int(v)] < 0:
                    queue.append(int(v))
    assignment[assignment < 0] = num_peers - 1
    return DocumentPlacement(assignment, num_peers)


def host_clustered_placement(
    num_docs: int,
    num_peers: int,
    *,
    mean_host_size: float = 20.0,
    host_size_exponent: float = 1.8,
    seed: SeedLike = None,
) -> Tuple[DocumentPlacement, np.ndarray]:
    """Web-server placement (§8): hosts are atomic units on peers.

    Documents are grouped into hosts whose sizes follow a truncated
    power law (real web-site sizes are heavy-tailed); each host is
    assigned wholly to one peer chosen uniformly.  Returns the
    placement and the per-document host id, which graph generators can
    use to bias intra-host linking.

    Parameters
    ----------
    mean_host_size:
        Approximate mean documents per host (controls the truncation).
    host_size_exponent:
        Power-law exponent of host sizes (> 1).
    """
    if num_docs < 1:
        raise ValueError(f"num_docs must be >= 1, got {num_docs}")
    if num_peers < 1:
        raise ValueError(f"num_peers must be >= 1, got {num_peers}")
    if mean_host_size < 1:
        raise ValueError(f"mean_host_size must be >= 1, got {mean_host_size}")
    rng = as_generator(seed)
    k_max = max(2, int(mean_host_size * 20))
    sizes = []
    total = 0
    while total < num_docs:
        s = int(
            sample_power_law_degrees(
                1, host_size_exponent, k_min=1, k_max=k_max, seed=rng
            )[0]
        )
        sizes.append(s)
        total += s
    sizes[-1] -= total - num_docs  # trim the overshoot
    if sizes[-1] == 0:
        sizes.pop()
    host_of = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    # Shuffle document ids so host membership is independent of id order.
    perm = rng.permutation(num_docs)
    host_per_doc = np.empty(num_docs, dtype=np.int64)
    host_per_doc[perm] = host_of
    host_peer = rng.integers(0, num_peers, size=len(sizes), dtype=np.int64)
    assignment = host_peer[host_per_doc]
    return DocumentPlacement(assignment, num_peers), host_per_doc


def refine_placement(
    graph: LinkGraph,
    placement: DocumentPlacement,
    *,
    max_sweeps: int = 3,
    balance_slack: float = 1.25,
    seed: SeedLike = None,
) -> DocumentPlacement:
    """Greedy gain-based refinement of any placement (KL/FM-style).

    Each sweep visits documents in random order and moves a document to
    the peer holding the most of its link neighbours (in- plus
    out-links) whenever that strictly reduces its cross-peer links and
    the target peer is under the balance cap
    ``ceil(N / P · balance_slack)``.  A few sweeps typically shave a
    further 10-25 % of cross links off the BFS clustering — the cheap
    local-search step a production partitioner would run.

    Returns a new placement; the input is untouched.
    """
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if balance_slack < 1.0:
        raise ValueError(f"balance_slack must be >= 1.0, got {balance_slack}")
    if placement.num_docs != graph.num_nodes:
        raise ValueError("placement and graph disagree on document count")
    rng = as_generator(seed)
    n, p = graph.num_nodes, placement.num_peers
    assignment = placement.assignment.copy()
    counts = np.bincount(assignment, minlength=p)
    cap = int(np.ceil(n / p * balance_slack)) if n else 0
    rev = graph.reverse()

    for _ in range(max_sweeps):
        moved = 0
        for node in rng.permutation(n):
            node = int(node)
            neighbours = np.concatenate(
                [graph.out_links(node), rev.out_links(node)]
            )
            if neighbours.size == 0:
                continue
            peer_votes = np.bincount(assignment[neighbours], minlength=p)
            current = int(assignment[node])
            best = int(np.argmax(peer_votes))
            if best == current:
                continue
            if peer_votes[best] <= peer_votes[current]:
                continue
            if counts[best] >= cap:
                continue
            assignment[node] = best
            counts[current] -= 1
            counts[best] += 1
            moved += 1
        if moved == 0:
            break
    return DocumentPlacement(assignment, p)


def cross_edge_fraction(graph: LinkGraph, placement: DocumentPlacement) -> float:
    """Fraction of links crossing peers — the traffic driver.

    Uniform random placement over P peers gives ≈ ``1 - 1/P``;
    anything materially lower means the placement is saving messages.
    """
    if placement.num_docs != graph.num_nodes:
        raise ValueError("placement and graph disagree on document count")
    if graph.num_edges == 0:
        return 0.0
    a = placement.assignment
    src_peer = np.repeat(a, graph.out_degrees())
    dst_peer = a[graph.indices]
    return float((src_peer != dst_peer).mean())
