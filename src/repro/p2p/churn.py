"""Peer availability (churn) models (paper §3.1, §4.3 "Dynamic effects").

Table 1's dynamic columns hold a fixed *fraction* of peers present at
any given time, with the membership re-randomised between passes ("in
between such passes, sets of peers randomly leave and join").  The
models here implement that and a couple of variants; all satisfy the
:class:`repro.core.distributed.AvailabilityModel` protocol (a single
``sample(pass_index) -> bool array`` method) and are deterministic
given a seed.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_generator, check_fraction, check_probability
from repro._util.rng import SeedLike
from repro.obs import get_registry

__all__ = [
    "AlwaysOn",
    "FixedFractionChurn",
    "IndependentChurn",
    "MarkovChurn",
]


class _ChurnObserver:
    """Derives churn metrics from the stream of availability masks.

    Every model routes its ``sample()`` result through
    :meth:`observe`, which compares successive masks to count
    departures and rejoins and to measure each peer's absence spell in
    passes (the "rejoin latency" that store-and-resend state has to
    survive).  Entirely skipped — one ``enabled`` check — under the
    default disabled registry, so the engines' churn paths keep their
    timings.
    """

    __slots__ = ("_last", "_absence")

    def __init__(self) -> None:
        self._last = None
        self._absence = None

    def observe(self, mask: np.ndarray) -> np.ndarray:
        reg = get_registry()
        if not reg.enabled:
            return mask
        reg.counter(
            "p2p.churn.samples", unit="passes",
            description="availability masks drawn by churn models",
        ).inc()
        reg.gauge(
            "p2p.churn.live_peers", unit="peers",
            description="peers present in the latest sampled pass",
        ).set(int(mask.sum()))
        if self._absence is None or self._absence.size != mask.size:
            self._absence = np.zeros(mask.size, dtype=np.int64)
            self._last = None
        if self._last is not None:
            departed = int((self._last & ~mask).sum())
            rejoined = ~self._last & mask
            if departed:
                reg.counter(
                    "p2p.churn.departures", unit="peers",
                    description="peer up->down transitions across passes",
                ).inc(departed)
            n_rejoined = int(rejoined.sum())
            if n_rejoined:
                reg.counter(
                    "p2p.churn.rejoins", unit="peers",
                    description="peer down->up transitions across passes",
                ).inc(n_rejoined)
                spells = reg.histogram(
                    "p2p.churn.absence_passes", unit="passes",
                    description="absence spell length at rejoin "
                    "(store-and-resend holding time)",
                )
                for spell in self._absence[rejoined]:
                    spells.observe(int(spell))
        self._absence[~mask] += 1
        self._absence[mask] = 0
        self._last = mask.copy()
        return mask


class AlwaysOn:
    """All peers present every pass (Table 1's 100 % column)."""

    def __init__(self, num_peers: int) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        self._mask = np.ones(num_peers, dtype=bool)
        self._observer = _ChurnObserver()

    def sample(self, pass_index: int) -> np.ndarray:
        return self._observer.observe(self._mask)


class FixedFractionChurn:
    """Exactly ``round(fraction * P)`` peers present, re-drawn each pass.

    This is the paper's stated model for the 75 % / 50 % columns of
    Table 1: a fixed fraction of randomly selected peers is available
    at any given time.

    Parameters
    ----------
    num_peers:
        Total peer population.
    fraction_present:
        Fraction of peers up during any pass, in (0, 1].
    seed:
        Deterministic seed.
    """

    def __init__(self, num_peers: int, fraction_present: float, *, seed: SeedLike = None) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        check_fraction("fraction_present", fraction_present)
        self.num_peers = num_peers
        self.fraction_present = float(fraction_present)
        self._rng = as_generator(seed)
        self._k = max(1, int(round(num_peers * fraction_present)))
        self._observer = _ChurnObserver()

    def sample(self, pass_index: int) -> np.ndarray:
        mask = np.zeros(self.num_peers, dtype=bool)
        up = self._rng.choice(self.num_peers, size=self._k, replace=False)
        mask[up] = True
        return self._observer.observe(mask)


class IndependentChurn:
    """Each peer present independently with probability ``p`` per pass.

    A Bernoulli variant of :class:`FixedFractionChurn`; the live count
    fluctuates around ``p·P``.  Useful in robustness tests where the
    exact-count model would hide variance effects.
    """

    def __init__(self, num_peers: int, p_present: float, *, seed: SeedLike = None) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        check_probability("p_present", p_present)
        self.num_peers = num_peers
        self.p_present = float(p_present)
        self._rng = as_generator(seed)
        self._observer = _ChurnObserver()

    def sample(self, pass_index: int) -> np.ndarray:
        return self._observer.observe(self._rng.random(self.num_peers) < self.p_present)


class MarkovChurn:
    """Two-state Markov churn: peers stay up/down for correlated spells.

    Real P2P session times are heavy-tailed and correlated across
    passes — a peer that is down tends to stay down a while.  Each peer
    flips up→down with probability ``p_leave`` and down→up with
    ``p_join`` per pass, giving stationary availability
    ``p_join / (p_join + p_leave)`` with geometric spell lengths.  Used
    by the churn-robustness ablation (the paper's model redraws
    membership i.i.d.; this one is strictly harsher on store-and-resend
    state).
    """

    def __init__(
        self,
        num_peers: int,
        p_leave: float,
        p_join: float,
        *,
        seed: SeedLike = None,
        start_up: bool = True,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        check_probability("p_leave", p_leave)
        check_probability("p_join", p_join)
        # Exactly-zero is the one invalid rate: peers could never return.
        if p_join == 0.0:  # repro: noqa[FLT001]
            raise ValueError("p_join must be > 0 or peers never return")
        self.num_peers = num_peers
        self.p_leave = float(p_leave)
        self.p_join = float(p_join)
        self._rng = as_generator(seed)
        self._state = np.full(num_peers, bool(start_up))
        self._observer = _ChurnObserver()

    @property
    def stationary_availability(self) -> float:
        """Long-run fraction of peers present."""
        return self.p_join / (self.p_join + self.p_leave)

    def sample(self, pass_index: int) -> np.ndarray:
        u = self._rng.random(self.num_peers)
        flip_down = self._state & (u < self.p_leave)
        flip_up = ~self._state & (u < self.p_join)
        self._state = (self._state & ~flip_down) | flip_up
        return self._observer.observe(self._state.copy())
