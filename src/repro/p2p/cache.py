"""IP-address caching of document locations (paper §3.2).

On DHT systems without anonymity requirements, the first pagerank
update for a document is routed through the DHT to discover which peer
stores it; the discovered address is then cached at the sender and all
later updates go direct.  Storage grows linearly with the sum of
out-links in a peer's documents — exactly the bound the paper states.

:class:`LocationCache` implements the scheme per sending peer and
keeps the hit/miss/hop statistics the routing-overhead experiments
report.  On Freenet-style systems the cache must be disabled
(anonymity), which is the ``repro.p2p.routing.RoutedDelivery`` policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.p2p.chord import ChordRing
from repro.p2p.guid import document_guid

__all__ = ["CacheStats", "LocationCache"]


@dataclass
class CacheStats:
    """Counters for one peer's location cache.

    Attributes
    ----------
    hits:
        Lookups answered from cache (direct send, no DHT traffic).
    misses:
        Lookups that had to route through the DHT.
    routed_hops:
        Total DHT hops paid across all misses.
    """

    hits: int = 0
    misses: int = 0
    routed_hops: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LocationCache:
    """Per-sender cache of document → peer locations.

    Parameters
    ----------
    owner_peer:
        The peer this cache belongs to (the start point of DHT routes).
    ring:
        The Chord ring used to resolve misses.
    capacity:
        Optional bound on cached entries (FIFO eviction).  ``None``
        (default) is unbounded — the paper's scheme, whose state is
        bounded by the peer's total out-links anyway.
    """

    def __init__(
        self,
        owner_peer: int,
        ring: ChordRing,
        *,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.owner_peer = owner_peer
        self.ring = ring
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: Dict[int, int] = {}

    def locate(self, doc: int) -> int:
        """Peer currently responsible for ``doc``.

        A cached answer costs nothing; a miss routes through the DHT
        (hops recorded in :attr:`stats`) and populates the cache.
        """
        peer = self._entries.get(doc)
        if peer is not None:
            self.stats.hits += 1
            return peer
        result = self.ring.route(document_guid(doc), self.owner_peer)
        self.stats.misses += 1
        self.stats.routed_hops += result.hops
        self._remember(doc, result.owner)
        return result.owner

    def invalidate(self, doc: int) -> None:
        """Drop a cached location (e.g. after a failed direct send when
        the target peer departed and its documents moved)."""
        self._entries.pop(doc, None)

    def seed(self, doc: int, peer: int) -> None:
        """Pre-populate an entry without a lookup (used when placement
        is known out of band, e.g. the simulator's global view)."""
        self._remember(doc, peer)

    def _remember(self, doc: int, peer: int) -> None:
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # FIFO eviction: drop the oldest insertion.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[doc] = peer

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc: int) -> bool:
        return doc in self._entries
