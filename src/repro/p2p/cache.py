"""IP-address caching of document locations (paper §3.2).

On DHT systems without anonymity requirements, the first pagerank
update for a document is routed through the DHT to discover which peer
stores it; the discovered address is then cached at the sender and all
later updates go direct.  Storage grows linearly with the sum of
out-links in a peer's documents — exactly the bound the paper states.

:class:`LocationCache` implements the scheme per sending peer and
keeps the hit/miss/hop statistics the routing-overhead experiments
report.  On Freenet-style systems the cache must be disabled
(anonymity), which is the ``repro.p2p.routing.RoutedDelivery`` policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import get_registry
from repro.p2p.chord import ChordRing
from repro.p2p.guid import document_guid

__all__ = ["CacheStats", "LocationCache"]


@dataclass
class CacheStats:
    """Counters for one peer's location cache.

    Attributes
    ----------
    hits:
        Lookups answered from cache (direct send, no DHT traffic).
    misses:
        Lookups that had to route through the DHT.
    routed_hops:
        Total DHT hops paid across all misses.
    invalidations:
        Cached entries explicitly dropped (stale location evicted
        after e.g. a failed direct send).
    """

    hits: int = 0
    misses: int = 0
    routed_hops: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache; 0.0 before any
        lookup has been recorded (never raises / never NaN)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LocationCache:
    """Per-sender cache of document → peer locations.

    Parameters
    ----------
    owner_peer:
        The peer this cache belongs to (the start point of DHT routes).
    ring:
        The Chord ring used to resolve misses.
    capacity:
        Optional bound on cached entries (FIFO eviction).  ``None``
        (default) is unbounded — the paper's scheme, whose state is
        bounded by the peer's total out-links anyway.
    guid_fn:
        Key → GUID mapping used to resolve misses on the ring.
        Defaults to :func:`~repro.p2p.guid.document_guid`; the serving
        layer passes a term-namespace GUID so the same cache serves
        term-owner discovery (docs/SERVING.md).

    Hit/miss/invalidation counts are mirrored to the process metrics
    registry (``p2p.location_cache.*``, docs/OBSERVABILITY.md §3) in
    addition to the per-instance :attr:`stats`.
    """

    def __init__(
        self,
        owner_peer: int,
        ring: ChordRing,
        *,
        capacity: Optional[int] = None,
        guid_fn: Callable[[int], int] = document_guid,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.owner_peer = owner_peer
        self.ring = ring
        self.capacity = capacity
        self.guid_fn = guid_fn
        self.stats = CacheStats()
        self._entries: Dict[int, int] = {}

    def locate(self, doc: int) -> int:
        """Peer currently responsible for ``doc``.

        A cached answer costs nothing; a miss routes through the DHT
        (hops recorded in :attr:`stats`) and populates the cache.
        """
        peer = self._entries.get(doc)
        if peer is not None:
            self.stats.hits += 1
            get_registry().counter(
                "p2p.location_cache.hits", unit="lookups",
                description="location-cache lookups answered without DHT traffic",
            ).inc()
            return peer
        result = self.ring.route(self.guid_fn(doc), self.owner_peer)
        self.stats.misses += 1
        self.stats.routed_hops += result.hops
        get_registry().counter(
            "p2p.location_cache.misses", unit="lookups",
            description="location-cache lookups that routed through the DHT",
        ).inc()
        self._remember(doc, result.owner)
        return result.owner

    def invalidate(self, doc: int) -> None:
        """Drop a cached location (e.g. after a failed direct send when
        the target peer departed and its documents moved)."""
        if self._entries.pop(doc, None) is not None:
            self.stats.invalidations += 1
            get_registry().counter(
                "p2p.location_cache.invalidations", unit="entries",
                description="cached locations explicitly dropped as stale",
            ).inc()

    def seed(self, doc: int, peer: int) -> None:
        """Pre-populate an entry without a lookup (used when placement
        is known out of band, e.g. the simulator's global view)."""
        self._remember(doc, peer)

    def _remember(self, doc: int, peer: int) -> None:
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # FIFO eviction: drop the oldest insertion.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[doc] = peer

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc: int) -> bool:
        return doc in self._entries
