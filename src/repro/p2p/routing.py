"""Message-delivery cost policies (paper §3.2).

The paper contrasts two regimes for pagerank update delivery:

* **cached direct** (DHT systems, no anonymity): the first update for
  a document routes through the DHT (O(log P) hops) to learn its
  location, which is cached; every later update travels one direct hop.
* **routed every time** (Freenet-style anonymity): addresses may not
  be cached, so *every* update pays the full routed path through
  intermediate nodes.

A delivery policy turns "peer ``s`` sends an update for document ``t``"
into a hop count, so the traffic experiments can price both regimes
from the same message stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.p2p.cache import LocationCache
from repro.p2p.chord import ChordRing
from repro.p2p.guid import document_guid

__all__ = [
    "DeliveryPolicy",
    "CachedDirectDelivery",
    "RoutedDelivery",
    "OracleDirectDelivery",
]


class DeliveryPolicy(ABC):
    """Prices the network hops of one update delivery."""

    @abstractmethod
    def delivery_hops(self, sender_peer: int, target_doc: int) -> int:
        """Hops consumed delivering one update from ``sender_peer`` to
        the peer storing ``target_doc``."""

    def delivery_hops_batch(
        self, sender_peer: int, target_docs: Sequence[int]
    ) -> int:
        """Total hops for one sender's batch of deliveries.

        The default prices each delivery individually in order, so
        stateful policies (location caches, per-route counters) observe
        the exact same sequence as repeated :meth:`delivery_hops`
        calls; stateless policies override this with an O(1) answer.
        """
        total = 0
        for doc in target_docs:
            total += self.delivery_hops(sender_peer, doc)
        return total

    def reset(self) -> None:
        """Clear any per-run state (caches, counters)."""


class OracleDirectDelivery(DeliveryPolicy):
    """Every delivery is one direct hop (the §4.2 simulation's
    idealisation and the fast engines' implicit model)."""

    def delivery_hops(self, sender_peer: int, target_doc: int) -> int:
        return 1

    def delivery_hops_batch(
        self, sender_peer: int, target_docs: Sequence[int]
    ) -> int:
        return len(target_docs)


class CachedDirectDelivery(DeliveryPolicy):
    """§3.2's scheme: first update per (sender, document) routes
    through the DHT, later ones go direct.

    Parameters
    ----------
    ring:
        The Chord ring resolving cold lookups.
    """

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self._caches: Dict[int, LocationCache] = {}

    def cache_of(self, peer: int) -> LocationCache:
        """The sending peer's location cache (created lazily)."""
        cache = self._caches.get(peer)
        if cache is None:
            cache = self._caches[peer] = LocationCache(peer, self.ring)
        return cache

    def delivery_hops(self, sender_peer: int, target_doc: int) -> int:
        cache = self.cache_of(sender_peer)
        if target_doc in cache:
            cache.locate(target_doc)  # records the hit
            return 1
        before = cache.stats.routed_hops
        cache.locate(target_doc)
        lookup_hops = cache.stats.routed_hops - before
        # The discovery route carries the update itself (piggybacked),
        # so a miss costs the routed path; at minimum one hop.
        return max(lookup_hops, 1)

    def reset(self) -> None:
        self._caches.clear()

    def total_stats(self) -> Dict[str, int]:
        """Aggregated hit/miss/hop counters across all sender caches."""
        hits = sum(c.stats.hits for c in self._caches.values())
        misses = sum(c.stats.misses for c in self._caches.values())
        hops = sum(c.stats.routed_hops for c in self._caches.values())
        return {"hits": hits, "misses": misses, "routed_hops": hops}


class RoutedDelivery(DeliveryPolicy):
    """Freenet-style anonymity-preserving delivery: every update is
    individually routed through intermediate nodes; no caching."""

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self.total_hops = 0
        self.deliveries = 0

    def delivery_hops(self, sender_peer: int, target_doc: int) -> int:
        hops = max(self.ring.route(document_guid(target_doc), sender_peer).hops, 1)
        self.total_hops += hops
        self.deliveries += 1
        return hops

    def reset(self) -> None:
        self.total_hops = 0
        self.deliveries = 0

    @property
    def mean_hops(self) -> float:
        """Average routed path length per delivery."""
        return self.total_hops / self.deliveries if self.deliveries else 0.0
