"""Document replication and cached-copy consistency (paper §2.3).

P2P storage systems replicate or cache documents on multiple peers to
cut retrieval latency.  The paper notes the consequence for pagerank:
"pointers need to be maintained at document sources to point to cached
copies, so that all copies of the document can contain the correct
computed pagerank" — i.e. every rank update for a replicated document
must also reach its replicas.

:class:`ReplicaRegistry` implements that bookkeeping:

* each document has a *primary* peer (its placement) plus zero or more
  replica peers;
* the registry answers "which peers must a rank update for document X
  reach" (primary + replicas);
* :meth:`replication_overhead` prices the §2.3 consistency cost: one
  extra update message per replica per rank change, the linear factor
  the traffic experiments fold in.

The registry is deliberately independent of the engines — it is a
multiplier on their message counts, applied by
:func:`replicated_message_cost` — because replication changes *where*
updates go, never the convergence math (replicas are read-only copies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro._util import as_generator, check_positive
from repro._util.rng import SeedLike
from repro.core.convergence import RunReport
from repro.graphs.linkgraph import LinkGraph
from repro.p2p.network import DocumentPlacement

__all__ = ["ReplicaRegistry", "replicated_message_cost"]


class ReplicaRegistry:
    """Tracks replica locations per document.

    Parameters
    ----------
    placement:
        The primary placement (who owns each document).
    """

    def __init__(self, placement: DocumentPlacement) -> None:
        self.placement = placement
        self._replicas: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def with_random_replicas(
        cls,
        placement: DocumentPlacement,
        *,
        replicas_per_doc: float,
        seed: SeedLike = None,
    ) -> "ReplicaRegistry":
        """Populate with a Poisson-ish random replica set.

        Each document receives ``round-robin`` draws so the *mean*
        replica count is ``replicas_per_doc``; replica peers are chosen
        uniformly among peers other than the primary.  This models
        popularity-agnostic caching; callers wanting popularity-biased
        replication can :meth:`add_replica` explicitly.
        """
        check_positive("replicas_per_doc", replicas_per_doc, strict=False)
        registry = cls(placement)
        if placement.num_peers < 2 or replicas_per_doc == 0:
            return registry
        rng = as_generator(seed)
        counts = rng.poisson(replicas_per_doc, size=placement.num_docs)
        counts = np.minimum(counts, placement.num_peers - 1)
        for doc in np.flatnonzero(counts):
            primary = placement.peer_of(int(doc))
            candidates = [p for p in range(placement.num_peers) if p != primary]
            chosen = rng.choice(
                candidates, size=int(counts[doc]), replace=False
            )
            for peer in chosen:
                registry.add_replica(int(doc), int(peer))
        return registry

    # ------------------------------------------------------------------
    def add_replica(self, doc: int, peer: int) -> None:
        """Register a cached copy of ``doc`` on ``peer``.

        The primary never counts as a replica of itself.
        """
        if not 0 <= doc < self.placement.num_docs:
            raise IndexError(f"doc {doc} out of range")
        if not 0 <= peer < self.placement.num_peers:
            raise IndexError(f"peer {peer} out of range")
        if peer == self.placement.peer_of(doc):
            return
        self._replicas.setdefault(doc, set()).add(peer)

    def drop_replica(self, doc: int, peer: int) -> None:
        """Remove a cached copy (cache eviction / peer departure)."""
        peers = self._replicas.get(doc)
        if peers is not None:
            peers.discard(peer)
            if not peers:
                del self._replicas[doc]

    def replicas_of(self, doc: int) -> Set[int]:
        """Replica peers of ``doc`` (primary excluded)."""
        return set(self._replicas.get(doc, ()))

    def update_targets(self, doc: int) -> Set[int]:
        """All peers a rank update for ``doc`` must reach."""
        targets = self.replicas_of(doc)
        targets.add(self.placement.peer_of(doc))
        return targets

    def replica_counts(self) -> np.ndarray:
        """Replica count per document (dense array)."""
        out = np.zeros(self.placement.num_docs, dtype=np.int64)
        for doc, peers in self._replicas.items():
            out[doc] = len(peers)
        return out

    @property
    def total_replicas(self) -> int:
        return sum(len(p) for p in self._replicas.values())

    def storage_overhead(self) -> float:
        """Mean copies per document (1.0 = no replication)."""
        n = self.placement.num_docs
        return 1.0 + self.total_replicas / n if n else 1.0


def replicated_message_cost(
    report: RunReport,
    registry: ReplicaRegistry,
    *,
    per_pass_updates: Optional[np.ndarray] = None,
) -> int:
    """Total update messages including replica-consistency traffic.

    Every time a document publishes a rank change, one extra message
    per replica keeps the cached copies' stored pagerank correct
    (§2.3).  Without per-document publish counts, the engine's history
    gives the number of *active* documents per pass; this helper uses
    the exact per-document counts when provided (``per_pass_updates``:
    publishes per document over the run) and otherwise bounds the cost
    with the mean replica factor.

    Returns the total messages: the report's own cross-peer traffic
    plus the replica fan-out.
    """
    counts = registry.replica_counts()
    if per_pass_updates is not None:
        per_pass_updates = np.asarray(per_pass_updates)
        if per_pass_updates.shape != counts.shape:
            raise ValueError(
                "per_pass_updates must have one entry per document"
            )
        replica_msgs = int((per_pass_updates * counts).sum())
    else:
        total_publishes = sum(p.active_documents for p in report.history)
        replica_msgs = int(round(total_publishes * counts.mean()))
    return report.total_messages + replica_msgs
