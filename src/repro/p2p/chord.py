"""Chord-like distributed hash table (Stoica et al., paper ref. [22]).

The paper assumes a DHT layer that can (a) map any document GUID to
the peer responsible for it and (b) route a message there in O(log P)
hops.  This module provides exactly that, in process: a consistent-
hashing ring with per-peer finger tables and the standard
closest-preceding-finger greedy routing.

The implementation favours clarity and faithful hop counts over raw
lookup speed — the vectorized pagerank engines never call into it per
edge; only the object-level protocol simulator and the caching layer
(§3.2) do, and they need the hop counts to be right, not fast.

Supported operations:

* :meth:`ChordRing.owner` — O(log P) successor lookup (who stores a
  key), the ground truth the routing must agree with;
* :meth:`ChordRing.route` — greedy finger routing from an arbitrary
  start peer, returning the owner *and* the hop count;
* :meth:`ChordRing.join` / :meth:`ChordRing.leave` — membership
  changes with finger-table refresh, used by the churn protocol tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import get_registry
from repro.p2p.guid import ID_BITS, ID_SPACE, in_interval, peer_guid

__all__ = ["ChordRing", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Result of a routed DHT lookup.

    Attributes
    ----------
    owner:
        Peer id responsible for the key (its successor on the ring).
    hops:
        Number of routing hops taken (0 when the start peer already
        owns the key).
    path:
        The sequence of peer ids visited, starting at the start peer
        and ending at the owner.
    """

    owner: int
    hops: int
    path: Tuple[int, ...]


class ChordRing:
    """A Chord identifier ring over a set of peers.

    Parameters
    ----------
    peer_ids:
        Application-level peer identifiers (any hashable ints); each is
        hashed onto the ring with :func:`~repro.p2p.guid.peer_guid`.

    Notes
    -----
    Peer GUIDs are assumed distinct (SHA-1 collisions on realistic peer
    counts are ignored, as in every Chord deployment); a collision
    raises ``ValueError`` at construction.
    """

    def __init__(self, peer_ids: List[int]) -> None:
        if not peer_ids:
            raise ValueError("a ring needs at least one peer")
        self._guid_of: Dict[int, int] = {}
        self._peer_at: Dict[int, int] = {}
        for pid in peer_ids:
            g = peer_guid(pid)
            if g in self._peer_at:
                raise ValueError(f"peer GUID collision for peer {pid}")
            self._guid_of[int(pid)] = g
            self._peer_at[g] = int(pid)
        self._ring: List[int] = sorted(self._peer_at)  # sorted peer GUIDs
        self._fingers: Dict[int, List[int]] = {}
        self._rebuild_fingers()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def peers(self) -> List[int]:
        """Current peer ids, in ring (GUID) order."""
        return [self._peer_at[g] for g in self._ring]

    @property
    def num_peers(self) -> int:
        return len(self._ring)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._guid_of

    def join(self, peer_id: int) -> None:
        """Add a peer and refresh finger tables.

        A real Chord node fixes fingers lazily; for simulation accuracy
        we refresh eagerly so hop counts immediately reflect the new
        membership.
        """
        if peer_id in self._guid_of:
            raise ValueError(f"peer {peer_id} already in ring")
        g = peer_guid(peer_id)
        if g in self._peer_at:
            raise ValueError(f"peer GUID collision for peer {peer_id}")
        self._guid_of[int(peer_id)] = g
        self._peer_at[g] = int(peer_id)
        bisect.insort(self._ring, g)
        self._rebuild_fingers()
        get_registry().counter(
            "p2p.chord.joins", unit="peers",
            description="peers that joined the ring",
        ).inc()

    def leave(self, peer_id: int) -> None:
        """Remove a peer and refresh finger tables."""
        g = self._guid_of.pop(peer_id, None)
        if g is None:
            raise KeyError(f"peer {peer_id} not in ring")
        del self._peer_at[g]
        self._ring.remove(g)
        if not self._ring:
            raise ValueError("cannot remove the last peer from the ring")
        self._rebuild_fingers()
        get_registry().counter(
            "p2p.chord.leaves", unit="peers",
            description="peers that left the ring",
        ).inc()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner(self, key: int) -> int:
        """Peer id of the key's successor (who stores the key)."""
        g = self._successor_guid(key % ID_SPACE)
        return self._peer_at[g]

    def route(self, key: int, start_peer: int) -> LookupResult:
        """Greedy finger-table routing from ``start_peer`` to the key's
        owner, counting hops.

        This is Chord's ``find_successor``: forward to the closest
        finger preceding the key until the key falls between the
        current peer and its immediate successor.
        """
        result = self._route(key, start_peer)
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                "p2p.chord.lookups", unit="lookups",
                description="routed DHT lookups (find_successor calls)",
            ).inc()
            reg.histogram(
                "p2p.chord.hops", unit="hops",
                description="routing hops per lookup (O(log P) bound)",
            ).observe(result.hops)
        return result

    def _route(self, key: int, start_peer: int) -> LookupResult:
        if start_peer not in self._guid_of:
            raise KeyError(f"start peer {start_peer} not in ring")
        key %= ID_SPACE
        current = self._guid_of[start_peer]
        path = [start_peer]
        hops = 0
        # log-bounded loop; the +2 slack covers the final successor hop.
        for _ in range(ID_BITS + 2):
            # Am I the owner?  True iff the key lies in
            # (predecessor, me] — the check every Chord node makes
            # before forwarding.
            pred = self._predecessor_guid(current)
            if in_interval(key, pred, current, inclusive_right=True):
                return LookupResult(self._peer_at[current], hops, tuple(path))
            succ = self._successor_guid_after(current)
            if in_interval(key, current, succ, inclusive_right=True):
                owner_guid = succ if succ != current else current
                if owner_guid != current:
                    hops += 1
                    path.append(self._peer_at[owner_guid])
                return LookupResult(self._peer_at[owner_guid], hops, tuple(path))
            nxt = self._closest_preceding(current, key)
            if nxt == current:
                nxt = succ
            current = nxt
            hops += 1
            path.append(self._peer_at[current])
        raise RuntimeError("routing failed to converge (ring corrupt?)")  # pragma: no cover

    def lookup_hops(self, key: int, start_peer: int) -> int:
        """Convenience: just the hop count of :meth:`route`."""
        return self.route(key, start_peer).hops

    def successor_list(self, peer_id: int, k: int) -> List[int]:
        """The ``k`` peers following ``peer_id`` on the ring.

        Chord's fault-tolerance primitive: if a peer fails, its keys
        re-home to the first live successor.  Used by
        :meth:`owner_excluding`.
        """
        if peer_id not in self._guid_of:
            raise KeyError(f"peer {peer_id} not in ring")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        g = self._guid_of[peer_id]
        i = self._ring.index(g)
        n = len(self._ring)
        return [
            self._peer_at[self._ring[(i + j) % n]]
            for j in range(1, min(k, n - 1) + 1)
        ]

    def owner_excluding(self, key: int, dead) -> int:
        """The key's owner when some peers are unreachable.

        Walks the successor chain past ``dead`` peers — the §3.1
        re-homing rule a deployment needs when a peer is absent
        long-term (stored documents move to the next live successor).

        Raises ``ValueError`` if every peer is dead.
        """
        dead = set(dead)
        g = self._successor_guid(key % ID_SPACE)
        n = len(self._ring)
        i = self._ring.index(g)
        for j in range(n):
            candidate = self._peer_at[self._ring[(i + j) % n]]
            if candidate not in dead:
                return candidate
        raise ValueError("all peers are marked dead")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _successor_guid(self, key: int) -> int:
        """First peer GUID clockwise at or after ``key``."""
        i = bisect.bisect_left(self._ring, key)
        return self._ring[i % len(self._ring)]

    def _successor_guid_after(self, guid: int) -> int:
        """First peer GUID strictly after ``guid`` (wrapping)."""
        i = bisect.bisect_right(self._ring, guid)
        return self._ring[i % len(self._ring)]

    def _predecessor_guid(self, guid: int) -> int:
        """First peer GUID strictly before ``guid`` (wrapping)."""
        i = bisect.bisect_left(self._ring, guid)
        return self._ring[(i - 1) % len(self._ring)]

    def _rebuild_fingers(self) -> None:
        """Recompute every peer's finger table.

        finger[i] of peer p = successor(p + 2^i); stored deduplicated
        in ring order for the closest-preceding scan.
        """
        self._fingers = {}
        for g in self._ring:
            table = []
            seen = set()
            for i in range(ID_BITS):
                f = self._successor_guid((g + (1 << i)) % ID_SPACE)
                if f not in seen and f != g:
                    seen.add(f)
                    table.append(f)
            self._fingers[g] = table

    def _closest_preceding(self, current: int, key: int) -> int:
        """Closest finger of ``current`` strictly between it and the key."""
        for f in reversed(self._fingers[current]):
            if in_interval(f, current, key, inclusive_right=False):
                return f
        return current
