"""Pagerank update messages and per-peer batching (paper §2.3, §4.6.1).

The protocol has a single message type: *pagerank update* — "document
X's contribution to you is now v".  The paper's traffic accounting
(§4.6.1) prices each at 24 bytes: a 128-bit target GUID plus a 64-bit
rank value; and its execution-time model assumes peers batch all
updates bound for the same destination peer within a pass into one
network call.  Both conventions are encoded here so every layer prices
traffic identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "MESSAGE_SIZE_BYTES",
    "ACK_SIZE_BYTES",
    "PagerankUpdate",
    "MessageBatch",
    "BatchAck",
    "Outbox",
]

#: Bytes per pagerank update message: 128-bit GUID + 64-bit value (§4.6.1).
MESSAGE_SIZE_BYTES = 24

#: Bytes per batch acknowledgement: a 64-bit flight id plus the 64-bit
#: sender/receiver pair.  Reliability-layer overhead, never part of the
#: paper's 24-byte update accounting (docs/PROTOCOL.md §13).
ACK_SIZE_BYTES = 24


@dataclass(frozen=True)
class PagerankUpdate:
    """One pagerank update message.

    Attributes
    ----------
    target_doc:
        Document the update is addressed to (the link target).
    source_doc:
        Document whose rank changed (the link source).  Receivers need
        it to know *which* in-link's contribution to replace.
    value:
        The sender's new rank.  Deletion updates carry the negated rank
        (§3.1); the sign is data, not protocol.
    version:
        Per-source publish sequence number.  The paper's message format
        (GUID + value) has no ordering information, but with realistic
        latencies two updates from the same document can arrive out of
        order, and applying the older one last leaves the receiver
        permanently stale — a failure mode this reproduction's
        asynchronous simulator actually hit.  Receivers keep only the
        highest version per source (:meth:`repro.p2p.peer.Peer.receive`).
    """

    target_doc: int
    source_doc: int
    value: float
    version: int = 0

    @property
    def size_bytes(self) -> int:
        """Wire size under the paper's 24-byte accounting."""
        return MESSAGE_SIZE_BYTES


@dataclass
class MessageBatch:
    """All updates one peer sends to one other peer within a pass.

    The §4.6.1 transfer model serialises one network call per
    (sender, receiver) pair per pass; the batch is that call's payload.
    """

    sender_peer: int
    receiver_peer: int
    updates: List[PagerankUpdate] = field(default_factory=list)

    def add(self, update: PagerankUpdate) -> None:
        self.updates.append(update)

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[PagerankUpdate]:
        return iter(self.updates)

    @property
    def size_bytes(self) -> int:
        """Total payload bytes (updates only; headers ignored, as in
        the paper's estimate)."""
        return len(self.updates) * MESSAGE_SIZE_BYTES


@dataclass(frozen=True)
class BatchAck:
    """Receiver's acknowledgement of one delivered batch flight.

    Part of the reliable-delivery layer (:mod:`repro.faults.transport`),
    not of the paper's protocol: ``flight_id`` is the transport-level
    transfer id being confirmed.  Acks are priced separately
    (:data:`ACK_SIZE_BYTES`) and never count toward the paper's update
    traffic model.
    """

    flight_id: int
    sender_peer: int
    receiver_peer: int

    @property
    def size_bytes(self) -> int:
        return ACK_SIZE_BYTES


class Outbox:
    """Per-peer staging area that groups updates by destination peer.

    Usage per pass: the peer stages every update it generates, then the
    network layer drains :meth:`batches` — one
    :class:`MessageBatch` per destination — and delivers or defers
    them.
    """

    def __init__(self, owner_peer: int) -> None:
        self.owner_peer = owner_peer
        self._by_dest: Dict[int, MessageBatch] = {}

    def stage(self, dest_peer: int, update: PagerankUpdate) -> None:
        """Queue ``update`` for ``dest_peer``."""
        batch = self._by_dest.get(dest_peer)
        if batch is None:
            batch = self._by_dest[dest_peer] = MessageBatch(self.owner_peer, dest_peer)
        batch.add(update)

    def batches(self) -> List[MessageBatch]:
        """Drain and return all staged batches."""
        out = list(self._by_dest.values())
        self._by_dest.clear()
        return out

    def wipe(self) -> int:
        """Discard everything staged (crash-with-state-loss semantics).

        Returns the number of updates destroyed, for the fault layer's
        state-loss accounting.
        """
        lost = sum(len(b) for b in self._by_dest.values())
        self._by_dest.clear()
        return lost

    def __len__(self) -> int:
        """Total staged updates across all destinations."""
        return sum(len(b) for b in self._by_dest.values())

    @property
    def destinations(self) -> Tuple[int, ...]:
        return tuple(self._by_dest)
