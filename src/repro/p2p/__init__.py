"""P2P/DHT substrate (paper §2.1, §2.4.2, §3).

The layers the distributed pagerank computation sits on:

* :mod:`~repro.p2p.guid` — SHA-1 GUIDs on a 128-bit ring;
* :mod:`~repro.p2p.chord` — Chord-like DHT with finger routing;
* :mod:`~repro.p2p.network` — document placement and peer-pair link
  accounting;
* :mod:`~repro.p2p.peer` / :mod:`~repro.p2p.messages` — the protocol
  state machine and the 24-byte update-message model;
* :mod:`~repro.p2p.churn` — peer availability models (§3.1);
* :mod:`~repro.p2p.cache` / :mod:`~repro.p2p.routing` — location
  caching vs. anonymity-preserving routed delivery (§3.2).
"""

from repro.p2p.cache import CacheStats, LocationCache
from repro.p2p.chord import ChordRing, LookupResult
from repro.p2p.churn import AlwaysOn, FixedFractionChurn, IndependentChurn, MarkovChurn
from repro.p2p.guid import (
    ID_BITS,
    ID_SPACE,
    document_guid,
    guid_of,
    in_interval,
    peer_guid,
    ring_distance,
)
from repro.p2p.messages import (
    ACK_SIZE_BYTES,
    MESSAGE_SIZE_BYTES,
    BatchAck,
    MessageBatch,
    Outbox,
    PagerankUpdate,
)
from repro.p2p.network import DocumentPlacement, P2PNetwork
from repro.p2p.peer import PassOutcome, Peer
from repro.p2p.replication import ReplicaRegistry, replicated_message_cost
from repro.p2p.freenet import FreenetDelivery, FreenetNetwork, FreenetRouteResult
from repro.p2p.strategies import (
    cross_edge_fraction,
    host_clustered_placement,
    link_clustered_placement,
    random_placement,
    refine_placement,
)
from repro.p2p.routing import (
    CachedDirectDelivery,
    DeliveryPolicy,
    OracleDirectDelivery,
    RoutedDelivery,
)

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "guid_of",
    "document_guid",
    "peer_guid",
    "ring_distance",
    "in_interval",
    "ChordRing",
    "LookupResult",
    "AlwaysOn",
    "FixedFractionChurn",
    "IndependentChurn",
    "MarkovChurn",
    "MESSAGE_SIZE_BYTES",
    "ACK_SIZE_BYTES",
    "PagerankUpdate",
    "MessageBatch",
    "BatchAck",
    "Outbox",
    "DocumentPlacement",
    "P2PNetwork",
    "Peer",
    "PassOutcome",
    "CacheStats",
    "LocationCache",
    "DeliveryPolicy",
    "OracleDirectDelivery",
    "CachedDirectDelivery",
    "RoutedDelivery",
    "random_placement",
    "link_clustered_placement",
    "refine_placement",
    "host_clustered_placement",
    "cross_edge_fraction",
    "ReplicaRegistry",
    "replicated_message_cost",
    "FreenetNetwork",
    "FreenetDelivery",
    "FreenetRouteResult",
]
