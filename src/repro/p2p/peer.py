"""Peer state machine for the protocol-level simulator (paper Fig. 1).

Each :class:`Peer` is "a simple state machine exchanging messages"
(§2.3): it stores a subset of the documents, recomputes their ranks
from the contributions it has *received*, and stages update messages
for out-links on other peers whenever a document's relative change
exceeds ε.  Intra-peer link updates are applied by publishing the new
value locally — visible to co-located consumers next pass without any
network message — but note that, per the pseudocode, publishing too is
gated by ε: a document that did not change significantly exposes its
previous value everywhere.

This class is intentionally plain-Python and per-document: it is the
readable reference implementation of the protocol, cross-validated
against the vectorized engine by the integration tests, and it is what
the discrete-event simulator drives asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.kernels import expand_rows, kernel_backend, relative_change
from repro.graphs.linkgraph import LinkGraph
from repro.p2p.messages import Outbox, PagerankUpdate

__all__ = ["Peer", "PassOutcome"]


@dataclass(frozen=True)
class PassOutcome:
    """What one peer did in one compute pass.

    Attributes
    ----------
    active_documents:
        Local documents whose relative change exceeded ε (and hence
        published/sent updates).
    max_rel_change:
        Largest relative change among local documents this pass.
    staged_updates:
        Update messages staged for other peers.
    published_docs:
        The documents that published this pass.  The simulator needs
        them to mark *co-located* link targets as awaiting a recompute
        (remote targets are marked at delivery time instead).
    """

    active_documents: int
    max_rel_change: float
    staged_updates: int
    published_docs: Tuple[int, ...] = ()


class Peer:
    """One peer: local documents, received contributions, outbox.

    Parameters
    ----------
    peer_id:
        Dense peer identifier.
    documents:
        The document ids this peer stores.
    graph:
        The global link graph.  A real peer only knows its documents'
        links; the simulator hands every peer the same immutable graph
        purely as the container of that local information (out-links of
        local docs, in-links needed for recompute).
    init_rank:
        Initial rank; a global protocol constant, so contributions from
        documents never heard from are assumed to be at it.
    honor_versions:
        When true (default) reordered stale updates are discarded using
        the per-source version numbers; false reproduces the paper's
        unversioned wire format, where the last arrival wins even if it
        is older (the reordering hazard the ablation benchmarks
        measure).
    """

    def __init__(
        self,
        peer_id: int,
        documents: Iterable[int],
        graph: LinkGraph,
        *,
        init_rank: float = 1.0,
        honor_versions: bool = True,
    ) -> None:
        self.peer_id = int(peer_id)
        self.documents = np.asarray(sorted(int(d) for d in documents), dtype=np.int64)
        self.graph = graph
        self.init_rank = float(init_rank)
        self.honor_versions = bool(honor_versions)
        self._local = set(int(d) for d in self.documents)
        #: Current rank of each local document.
        self.rank: Dict[int, float] = {int(d): self.init_rank for d in self.documents}
        #: Last value each local document exposed to its consumers.
        self.published: Dict[int, float] = dict(self.rank)
        #: Last received value per remote in-linking document.
        self.remote_values: Dict[int, float] = {}
        #: Version of the value held in :attr:`remote_values`.
        self._remote_versions: Dict[int, int] = {}
        #: Per-local-document publish sequence numbers.
        self._publish_version: Dict[int, int] = {}
        #: Stored updates awaiting absent receivers: peer -> updates.
        self.deferred: Dict[int, List[PagerankUpdate]] = {}
        self.outbox = Outbox(self.peer_id)
        # Reciprocal out-degrees, multiplied rather than divided so the
        # floating-point operations match the vectorized engine bit for
        # bit (the integration tests assert exact rank equality).
        out_deg = graph.out_degrees()
        self._inv_out = np.zeros(graph.num_nodes, dtype=np.float64)
        nz = out_deg > 0
        self._inv_out[nz] = 1.0 / out_deg[nz]
        # Per-peer reverse sub-CSR shard (``csr`` kernel backend only).
        # Built lazily from the global reverse graph; invalidated when
        # the local document set changes (surrender/adopt).  The shard
        # accumulates with np.bincount, whose sequential accumulation
        # order over ``in_links(doc)`` is bit-identical to the
        # per-edge Python loop in :meth:`_fresh_rank`.
        self._use_csr = kernel_backend() == "csr"
        self._lsrc: Optional[np.ndarray] = None  # flat in-link sources
        self._lrow: Optional[np.ndarray] = None  # local row id per in-link
        self._lslot: Optional[np.ndarray] = None  # visible-slot per in-link
        self._lw: Optional[np.ndarray] = None  # 1/outdeg per in-link
        self._rank_arr: Optional[np.ndarray] = None  # rank, documents order
        self._vis_ids: Optional[np.ndarray] = None  # global ids, sorted
        self._vis_index: Optional[Dict[int, int]] = None  # global id -> slot
        self._visible: Optional[np.ndarray] = None  # compact visible values

    # ------------------------------------------------------------------
    def _invalidate_shard(self) -> None:
        """Drop the vectorized shard; the next pass rebuilds it."""
        self._lsrc = None
        self._lrow = None
        self._lslot = None
        self._lw = None
        self._rank_arr = None
        self._vis_ids = None
        self._vis_index = None
        self._visible = None

    def _ensure_shard(self) -> None:
        """Build the per-peer reverse sub-CSR over the local documents.

        The shard is the flattened concatenation of
        ``graph.in_links(doc)`` for the sorted local documents, plus a
        *compact* visible-value array covering exactly the global ids
        this peer ever reads (its in-link sources and its own docs) —
        O(local in-edges) memory rather than O(N) per peer.
        """
        if self._lsrc is not None:
            return
        docs = self.documents
        rev = self.graph.reverse()
        pos, lens = expand_rows(rev.indptr, docs)
        lsrc = rev.indices[pos]
        self._lsrc = lsrc
        self._lrow = np.repeat(np.arange(docs.size, dtype=np.int64), lens)
        self._lw = self._inv_out[lsrc]
        need = np.unique(np.concatenate([lsrc, docs])) if docs.size else docs
        self._vis_ids = need
        self._vis_index = {int(g): i for i, g in enumerate(need)}
        visible = np.empty(need.size, dtype=np.float64)
        for i, g in enumerate(need):
            visible[i] = self.visible_value(int(g))
        self._visible = visible
        self._lslot = np.searchsorted(need, lsrc)
        self._rank_arr = np.array(
            [self.rank[int(d)] for d in docs], dtype=np.float64
        )

    # ------------------------------------------------------------------
    def owns(self, doc: int) -> bool:
        """True if this peer stores ``doc``."""
        return doc in self._local

    def visible_value(self, doc: int) -> float:
        """The value of ``doc`` as this peer currently sees it."""
        if doc in self._local:
            return self.published[doc]
        return self.remote_values.get(doc, self.init_rank)

    def receive(self, update: PagerankUpdate) -> bool:
        """Fold one received update into local knowledge.

        Updates carry per-source versions; a reordered older update is
        discarded rather than overwriting fresher knowledge, and a
        replayed *equal*-version update (a §3.1 resend, a reliability-
        layer retransmit, or an adversarial replay) is suppressed
        without touching state — delivery is idempotent (the wire
        provides no ordering or at-most-once guarantee — see
        :class:`repro.p2p.messages.PagerankUpdate`).

        Returns True if the update mutated local knowledge, False if it
        was suppressed as stale or duplicate (the reliable-delivery
        layer counts suppressions).
        """
        if self.honor_versions:
            held = self._remote_versions.get(update.source_doc, -1)
            if update.version < held:
                return False
            if update.version == held and update.source_doc in self.remote_values:
                return False
            self._remote_versions[update.source_doc] = update.version
        self.remote_values[update.source_doc] = update.value
        if self._visible is not None and update.source_doc not in self._local:
            slot = self._vis_index.get(update.source_doc)  # type: ignore[union-attr]
            if slot is not None:
                self._visible[slot] = update.value
        return True

    def receive_batch(self, updates: Iterable[PagerankUpdate]) -> int:
        """Receive many updates; returns how many mutated state."""
        applied = 0
        for u in updates:
            if self.receive(u):
                applied += 1
        return applied

    # ------------------------------------------------------------------
    def compute_pass(
        self,
        damping: float,
        epsilon: float,
        peer_of: np.ndarray,
    ) -> PassOutcome:
        """Recompute every local document; stage updates for changes > ε.

        Parameters
        ----------
        damping, epsilon:
            Algorithm parameters.
        peer_of:
            Document → peer array, used to split each document's
            out-links into local (free) and remote (message) targets.

        Returns
        -------
        PassOutcome
        """
        if self._use_csr:
            return self._compute_pass_csr(damping, epsilon, peer_of)
        active = 0
        staged = 0
        max_change = 0.0
        new_ranks: Dict[int, float] = {}
        # Two-phase update: all local documents read the *previous*
        # published values (synchronous-pass semantics, matching the
        # vectorized engine), then publish together.
        for doc in self.documents:
            doc = int(doc)
            new_ranks[doc] = self._fresh_rank(doc, damping)

        published: List[int] = []
        for doc, new in new_ranks.items():
            old = self.rank[doc]
            rel = abs(old - new) / new if new != 0 else 0.0
            self.rank[doc] = new
            if rel > max_change:
                max_change = rel
            if rel > epsilon:
                active += 1
                self.published[doc] = new
                published.append(doc)
                staged += self._stage_updates(doc, new, peer_of)
        return PassOutcome(
            active_documents=active,
            max_rel_change=max_change,
            staged_updates=staged,
            published_docs=tuple(published),
        )

    def _compute_pass_csr(
        self,
        damping: float,
        epsilon: float,
        peer_of: np.ndarray,
    ) -> PassOutcome:
        """Sharded pass: one bincount segment-sum over the local
        in-link shard instead of a per-edge Python loop.

        Bit-identical to the naive path: bincount accumulates each
        row's contributions sequentially in ``in_links(doc)`` order,
        ``damping * total + (1 - damping)`` commutes with the scalar
        expression in :meth:`_fresh_rank`, and the publish loop walks
        active documents in the same ascending order.
        """
        self._ensure_shard()
        assert self._visible is not None and self._rank_arr is not None
        docs = self.documents
        k = docs.size
        contrib = self._visible[self._lslot] * self._lw
        sums = np.bincount(self._lrow, weights=contrib, minlength=k)
        new = sums * damping
        new += 1.0 - damping
        old = self._rank_arr
        rel = relative_change(old, new)
        max_change = float(rel.max()) if k else 0.0
        # Sync the rank dict only where the bits actually changed.
        for i in np.flatnonzero(new != old):
            self.rank[int(docs[i])] = float(new[i])
        self._rank_arr = new
        staged = 0
        published: List[int] = []
        vis_index = self._vis_index
        assert vis_index is not None
        for i in np.flatnonzero(rel > epsilon):
            doc = int(docs[i])
            value = float(new[i])
            self.published[doc] = value
            self._visible[vis_index[doc]] = value
            published.append(doc)
            staged += self._stage_updates(doc, value, peer_of)
        return PassOutcome(
            active_documents=len(published),
            max_rel_change=max_change,
            staged_updates=staged,
            published_docs=tuple(published),
        )

    # ------------------------------------------------------------------
    def _fresh_rank(self, doc: int, damping: float) -> float:
        """Recompute ``doc``'s rank from currently visible values."""
        total = 0.0
        for src in self.graph.in_links(doc):
            src = int(src)
            total += self.visible_value(src) * self._inv_out[src]
        return (1.0 - damping) + damping * total

    def _stage_updates(self, doc: int, value: float, peer_of: np.ndarray) -> int:
        """Stage update messages for ``doc``'s remote out-links."""
        staged = 0
        version = self._publish_version.get(doc, 0) + 1
        self._publish_version[doc] = version
        for target in self.graph.out_links(doc):
            target = int(target)
            target_peer = int(peer_of[target])
            if target_peer != self.peer_id:
                self.outbox.stage(
                    target_peer,
                    PagerankUpdate(
                        target_doc=target,
                        source_doc=doc,
                        value=value,
                        version=version,
                    ),
                )
                staged += 1
        return staged

    def recompute_document(
        self,
        doc: int,
        damping: float,
        epsilon: float,
        peer_of: np.ndarray,
        *,
        gate: str = "published",
    ) -> Tuple[float, bool]:
        """Event-driven single-document recompute (Fig. 1's message
        handler): recompute ``doc`` now, and if the relative change
        exceeds ε publish it and stage updates for remote out-links.

        Returns ``(relative_change, published)``.  Used by the
        discrete-event asynchronous simulator, where recomputation is
        triggered per received message rather than per global pass.

        ``gate`` selects what the change is measured against:

        * ``"published"`` (default) — the last value this document
          actually announced.  Sub-ε changes then *accumulate* until
          they cross ε, so consumers are never more than ε-stale.
        * ``"rank"`` — the last computed rank, the literal reading of
          Figure 1's ``relerr = abs(oldrank - newrank)/newrank``.
          Under fine-grained asynchronous interleaving many tiny
          arrivals can each stay below ε while their sum drifts
          arbitrarily far from what consumers saw — a protocol hazard
          this reproduction surfaced; see DESIGN.md.
        """
        if doc not in self._local:
            raise KeyError(f"peer {self.peer_id} does not store document {doc}")
        if gate not in ("published", "rank"):
            raise ValueError(f"gate must be 'published' or 'rank', got {gate!r}")
        new = self._fresh_rank(doc, damping)
        old = self.published[doc] if gate == "published" else self.rank[doc]
        rel = abs(old - new) / new if new != 0 else 0.0
        self.rank[doc] = new
        if self._rank_arr is not None:
            self._rank_arr[int(np.searchsorted(self.documents, doc))] = new
        if rel > epsilon:
            self.published[doc] = new
            if self._visible is not None:
                assert self._vis_index is not None
                self._visible[self._vis_index[doc]] = new
            self._stage_updates(doc, new, peer_of)
            return rel, True
        return rel, False

    # ------------------------------------------------------------------
    # Store-and-resend support (§3.1)
    # ------------------------------------------------------------------
    def defer(self, dest_peer: int, updates: List[PagerankUpdate]) -> None:
        """Store updates whose receiver is currently absent.

        Only the newest value per (source, target) pair is kept — an
        older stored update is obsolete the moment a fresh one exists.
        """
        store = self.deferred.setdefault(dest_peer, [])
        fresh = {(u.source_doc, u.target_doc) for u in updates}
        store[:] = [u for u in store if (u.source_doc, u.target_doc) not in fresh]
        store.extend(updates)

    def take_deferred(self, dest_peer: int) -> List[PagerankUpdate]:
        """Pop all stored updates for a peer that has reappeared."""
        return self.deferred.pop(dest_peer, [])

    @property
    def deferred_count(self) -> int:
        """Total stored updates across destinations (the §3.1 state
        bound: at most the sum of local documents' out-links)."""
        return sum(len(v) for v in self.deferred.values())

    def crash_volatile(self) -> int:
        """Crash-with-state-loss: wipe the outbox and the §3.1 deferred
        store (volatile memory), keeping rank/published/version state
        (persistent storage survives a crash).

        Distinct from a graceful departure, where deferred updates are
        preserved for resend on return.  Returns the number of updates
        destroyed, for the fault layer's state-loss accounting.
        """
        lost = self.outbox.wipe()
        lost += self.deferred_count
        self.deferred.clear()
        return lost

    def reboot_republish(self, peer_of: np.ndarray) -> int:
        """Crash recovery: re-announce every local document's persisted
        published value to its remote consumers.

        A rebooted peer cannot know which of its staged or in-flight
        sends survived the crash, so it conservatively replays the
        current value at its *current* publish version.  Receivers that
        already saw it suppress the equal-version replay (delivery is
        idempotent — :meth:`receive`); any consumer the crash robbed of
        an update applies it, healing the permanent staleness a bare
        wipe would leave.  Returns the number of updates staged.
        """
        staged = 0
        for doc in self.documents:
            doc = int(doc)
            version = self._publish_version.get(doc, 0)
            if version == 0:
                # Never published past the globally known initial value.
                continue
            value = self.published[doc]
            for target in self.graph.out_links(doc):
                target = int(target)
                target_peer = int(peer_of[target])
                if target_peer != self.peer_id:
                    self.outbox.stage(
                        target_peer,
                        PagerankUpdate(
                            target_doc=target,
                            source_doc=doc,
                            value=value,
                            version=version,
                        ),
                    )
                    staged += 1
        return staged

    def republish_to(self, dest_peer: int, peer_of: np.ndarray) -> int:
        """Anti-entropy catch-up toward one recovered neighbor: stage
        the current published value of every local document that links
        into ``dest_peer``'s holdings, at the current publish version.

        The directional counterpart of :meth:`reboot_republish` — after
        a supervised restart the *recovered* peer re-announces its own
        values, while its live neighbors call this so the recovered
        peer's view of *them* is refreshed too (it may have crashed
        before their latest updates arrived, and those flights may have
        been abandoned meanwhile — docs/PROTOCOL.md §15.4).  Replays
        are equal-version idempotent at the receiver.  Returns the
        number of updates staged.
        """
        staged = 0
        for doc in self.documents:
            doc = int(doc)
            version = self._publish_version.get(doc, 0)
            if version == 0:
                continue
            value = self.published[doc]
            for target in self.graph.out_links(doc):
                target = int(target)
                if int(peer_of[target]) == dest_peer:
                    self.outbox.stage(
                        dest_peer,
                        PagerankUpdate(
                            target_doc=target,
                            source_doc=doc,
                            value=value,
                            version=version,
                        ),
                    )
                    staged += 1
        return staged

    # ------------------------------------------------------------------
    # Document migration (DHT re-homing support)
    # ------------------------------------------------------------------
    def surrender_documents(self, docs) -> Dict[int, tuple]:
        """Remove ``docs`` from this peer, returning their state.

        Used by the simulator's §3.1 re-homing: when this peer is
        declared long-term absent, the DHT's successor takes over its
        documents.  Returns ``{doc: (rank, published, publish_version)}``;
        the version counters travel with the state so versioned updates
        stay monotone across owners.
        """
        state: Dict[int, tuple] = {}
        moving = set(int(d) for d in docs)
        missing = moving - self._local
        if missing:
            raise KeyError(f"peer {self.peer_id} does not store {sorted(missing)}")
        # Sorted so the returned dict's order is canonical no matter how
        # the caller ordered ``docs`` — adopters insert in this order.
        for doc in sorted(moving):
            state[doc] = (
                self.rank.pop(doc),
                self.published.pop(doc),
                self._publish_version.pop(doc, 0),
            )
            self._local.discard(doc)
        self.documents = np.asarray(sorted(self._local), dtype=np.int64)
        self._invalidate_shard()
        return state

    def export_inlink_knowledge(self, docs) -> List[PagerankUpdate]:
        """Package this peer's view of ``docs``' in-link sources.

        A migrating document is worthless without the contribution
        values it was being computed from; re-homing sends these along
        as ordinary versioned updates so the new owner merges them
        under the standard newest-wins rule.  Sources this peer has
        never heard from are omitted (the receiver keeps its own view
        or the protocol initial value).
        """
        updates: List[PagerankUpdate] = []
        for doc in docs:
            doc = int(doc)
            for src in self.graph.in_links(doc):
                src = int(src)
                if src in self._local:
                    value = self.published[src]
                    version = self._publish_version.get(src, 0)
                elif src in self.remote_values:
                    value = self.remote_values[src]
                    version = self._remote_versions.get(src, 0)
                else:
                    continue
                updates.append(
                    PagerankUpdate(
                        target_doc=doc, source_doc=src, value=value, version=version
                    )
                )
        return updates

    def adopt_documents(self, state: Dict[int, tuple]) -> None:
        """Take over documents surrendered by another peer.

        ``state`` maps doc -> (rank, published, publish_version), the
        tuple :meth:`surrender_documents` produced.
        """
        for doc, (rank, published, version) in state.items():
            doc = int(doc)
            if doc in self._local:
                raise ValueError(f"peer {self.peer_id} already stores {doc}")
            self._local.add(doc)
            self.rank[doc] = float(rank)
            self.published[doc] = float(published)
            if version:
                self._publish_version[doc] = int(version)
        self.documents = np.asarray(sorted(self._local), dtype=np.int64)
        self._invalidate_shard()
