"""Global unique identifiers (GUIDs) for documents and peers.

DHT-based P2P systems (Chord, CAN, Pastry — §2.1) address both peers
and documents by fixed-width hashed identifiers on a ring.  We follow
Chord's convention: SHA-1 of the name, truncated to ``ID_BITS`` bits.
The paper's message-size accounting (§4.6.1) assumes 128-bit GUIDs, so
the default ring width is 128 bits; it is a module constant rather than
per-ring configuration because every component of one deployment must
agree on it.

Python integers hold the ids exactly, and NumPy ``uint64`` pairs are
used where vectorized ring arithmetic matters.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "guid_of",
    "document_guid",
    "peer_guid",
    "ring_distance",
    "in_interval",
    "guids_array",
]

#: Width of the identifier ring (bits).  The paper budgets 128 bits per
#: GUID in its 24-byte update message (§4.6.1).
ID_BITS = 128

#: Size of the identifier space, ``2 ** ID_BITS``.
ID_SPACE = 1 << ID_BITS


def guid_of(name: str | bytes, *, namespace: str = "") -> int:
    """Deterministic GUID for ``name``: SHA-1 truncated to the ring.

    Parameters
    ----------
    name:
        Arbitrary identifier (document path, peer address, ...).
    namespace:
        Optional prefix separating id universes (documents vs. peers)
        so the same string never collides across kinds.
    """
    if isinstance(name, str):
        name = name.encode("utf-8")
    digest = hashlib.sha1(namespace.encode("utf-8") + b"\x00" + name).digest()
    return int.from_bytes(digest, "big") % ID_SPACE


def document_guid(doc_id: int | str) -> int:
    """GUID of a document (namespaced so it never collides with peers)."""
    return guid_of(str(doc_id), namespace="doc")


def peer_guid(peer_id: int | str) -> int:
    """GUID of a peer."""
    return guid_of(str(peer_id), namespace="peer")


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % ID_SPACE


def in_interval(x: int, a: int, b: int, *, inclusive_right: bool = True) -> bool:
    """True if ``x`` lies in the clockwise interval ``(a, b]`` (or
    ``(a, b)`` when ``inclusive_right`` is false), with wraparound.

    The standard Chord predicate: the interval covers the whole ring
    when ``a == b``.
    """
    a %= ID_SPACE
    b %= ID_SPACE
    x %= ID_SPACE
    if a == b:
        return inclusive_right or x != a
    if a < b:
        return (a < x <= b) if inclusive_right else (a < x < b)
    return (x > a or x <= b) if inclusive_right else (x > a or x < b)


def guids_array(names: Iterable[str], *, namespace: str = "") -> np.ndarray:
    """Vector of GUIDs as Python objects in a NumPy object array.

    128-bit ids do not fit ``uint64``; when vectorized comparisons are
    needed the ring code works on sorted Python-int lists instead (the
    per-lookup cost is O(log P) either way).
    """
    return np.array([guid_of(n, namespace=namespace) for n in names], dtype=object)
