"""Document placement and the P2P network facade (paper §4.2).

The simulation methodology assigns every document of the link graph to
a peer — the paper uses uniform random assignment onto 500 peers — and
all traffic accounting derives from that placement: links between
documents on the same peer are free, links across peers cost update
messages, and the Eq. 4 execution-time model needs the per-peer-pair
link counts ``L_ij``.

Two placement strategies are provided:

* :meth:`DocumentPlacement.random` — the paper's uniform random
  placement;
* :meth:`DocumentPlacement.by_guid` — consistent-hashing placement,
  where the document's GUID owner on the Chord ring stores it (what a
  real DHT deployment would do).  Used by the protocol-level simulator
  and by the placement ablation (the paper's future work asks whether
  link-aware mapping could cut network overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.obs import get_registry
from repro.graphs.linkgraph import LinkGraph
from repro.p2p.chord import ChordRing
from repro.p2p.guid import document_guid

__all__ = ["DocumentPlacement", "P2PNetwork"]


class DocumentPlacement:
    """Immutable document → peer mapping.

    Parameters
    ----------
    assignment:
        Integer array of length ``num_docs``; ``assignment[i]`` is the
        peer storing document ``i``.
    num_peers:
        Total number of peers (≥ ``assignment.max() + 1``).
    """

    def __init__(self, assignment: np.ndarray, num_peers: int) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise ValueError("assignment must be 1-D")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_peers):
            raise ValueError("assignment entries must be in [0, num_peers)")
        assignment = assignment.copy()
        assignment.setflags(write=False)
        self._assignment = assignment
        self._num_peers = int(num_peers)

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, num_docs: int, num_peers: int, *, seed: SeedLike = None) -> "DocumentPlacement":
        """Uniform random placement (the paper's §4.2 methodology)."""
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        rng = as_generator(seed)
        return cls(rng.integers(0, num_peers, size=num_docs, dtype=np.int64), num_peers)

    @classmethod
    def by_guid(cls, num_docs: int, ring: ChordRing) -> "DocumentPlacement":
        """Consistent-hashing placement: GUID successor owns the doc.

        Peers in ``ring`` must be numbered ``0 .. P-1`` (the dense ids
        the engines use).
        """
        peers = sorted(ring.peers)
        if peers != list(range(len(peers))):
            raise ValueError("ring peers must be densely numbered 0..P-1")
        assignment = np.fromiter(
            (ring.owner(document_guid(d)) for d in range(num_docs)),
            dtype=np.int64,
            count=num_docs,
        )
        return cls(assignment, len(peers))

    # ------------------------------------------------------------------
    @property
    def assignment(self) -> np.ndarray:
        """The document → peer array (read-only)."""
        return self._assignment

    @property
    def num_docs(self) -> int:
        return self._assignment.size

    @property
    def num_peers(self) -> int:
        return self._num_peers

    def peer_of(self, doc: int) -> int:
        """Peer storing document ``doc``."""
        return int(self._assignment[doc])

    def docs_of(self, peer: int) -> np.ndarray:
        """All documents stored on ``peer``."""
        if not 0 <= peer < self._num_peers:
            raise IndexError(f"peer {peer} out of range [0, {self._num_peers})")
        return np.flatnonzero(self._assignment == peer)

    def docs_by_peer(self) -> List[np.ndarray]:
        """Documents grouped by peer, computed in one O(N) pass."""
        order = np.argsort(self._assignment, kind="stable")
        sorted_peers = self._assignment[order]
        boundaries = np.searchsorted(sorted_peers, np.arange(self._num_peers + 1))
        return [order[boundaries[p] : boundaries[p + 1]] for p in range(self._num_peers)]

    def load_statistics(self) -> Dict[str, float]:
        """Docs-per-peer balance statistics."""
        counts = np.bincount(self._assignment, minlength=self._num_peers)
        return {
            "min": float(counts.min()),
            "max": float(counts.max()),
            "mean": float(counts.mean()),
            "std": float(counts.std()),
        }


class P2PNetwork:
    """A peer population, its DHT ring, and a document placement.

    This is the shared context the protocol-level simulator, the
    caching layer, and the timing model all hang off.

    Parameters
    ----------
    num_peers:
        Peers are densely numbered ``0 .. num_peers-1``.
    placement:
        Document placement; defaults to nothing until
        :meth:`place_documents` is called.
    build_ring:
        Build the Chord ring eagerly (skippable for experiments that
        only need placement and link accounting).
    """

    def __init__(
        self,
        num_peers: int,
        placement: Optional[DocumentPlacement] = None,
        *,
        build_ring: bool = True,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        self.num_peers = int(num_peers)
        self.ring: Optional[ChordRing] = (
            ChordRing(list(range(num_peers))) if build_ring else None
        )
        if placement is not None and placement.num_peers != num_peers:
            raise ValueError(
                f"placement has {placement.num_peers} peers, network has {num_peers}"
            )
        self.placement = placement

    def place_documents(
        self,
        num_docs: int,
        *,
        strategy: str = "random",
        seed: SeedLike = None,
    ) -> DocumentPlacement:
        """Create and attach a placement.

        ``strategy``: ``"random"`` (paper) or ``"guid"`` (consistent
        hashing on the ring).
        """
        if strategy == "random":
            self.placement = DocumentPlacement.random(num_docs, self.num_peers, seed=seed)
        elif strategy == "guid":
            if self.ring is None:
                raise ValueError("guid placement requires the Chord ring")
            self.placement = DocumentPlacement.by_guid(num_docs, self.ring)
        else:
            raise ValueError(f"unknown placement strategy {strategy!r}")
        reg = get_registry()
        if reg.enabled:
            reg.gauge(
                "p2p.placement.documents", unit="documents",
                description="documents placed onto the peer population",
            ).set(num_docs)
            reg.gauge(
                "p2p.placement.peers", unit="peers",
                description="peer population size of the current placement",
            ).set(self.num_peers)
        return self.placement

    def peer_link_matrix(self, graph: LinkGraph) -> csr_matrix:
        """``L[i, j]`` = number of document links from peer i to peer j.

        This is the ``L_ij`` of the paper's Eq. 4 execution-time model.
        Built with one vectorized pass over the edge arrays.
        """
        if self.placement is None:
            raise ValueError("no placement attached; call place_documents first")
        if self.placement.num_docs != graph.num_nodes:
            raise ValueError(
                f"placement covers {self.placement.num_docs} docs, "
                f"graph has {graph.num_nodes}"
            )
        a = self.placement.assignment
        out_deg = graph.out_degrees()
        src_peer = np.repeat(a, out_deg)
        dst_peer = a[graph.indices]
        data = np.ones(src_peer.size, dtype=np.int64)
        mat = coo_matrix(
            (data, (src_peer, dst_peer)), shape=(self.num_peers, self.num_peers)
        )
        return mat.tocsr()

    def cross_peer_edge_count(self, graph: LinkGraph) -> int:
        """Number of links whose endpoints live on different peers."""
        if self.placement is None:
            raise ValueError("no placement attached; call place_documents first")
        a = self.placement.assignment
        src_peer = np.repeat(a, graph.out_degrees())
        dst_peer = a[graph.indices]
        count = int((src_peer != dst_peer).sum())
        get_registry().gauge(
            "p2p.placement.cross_peer_links", unit="links",
            description="document links whose endpoints live on different "
            "peers (the traffic driver)",
        ).set(count)
        return count
