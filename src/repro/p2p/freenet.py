"""Freenet-style key-space routing substrate (paper §2.1, §3.2).

Besides DHTs, the paper repeatedly contrasts Freenet-like systems:
documents are addressed by subspace keys (SSKs), routing is greedy by
key distance over each node's local neighbour set *without* global
structure, there are **no bounded-search guarantees**, and anonymity
forbids the §3.2 location-caching shortcut — every pagerank update must
be routed through intermediate nodes.

:class:`FreenetNetwork` models that class faithfully enough for the
traffic experiments:

* peers sit at random positions on a key circle;
* each peer knows a few ring neighbours plus a few long-range contacts
  drawn with Kleinberg-style distance bias (what Freenet's
  location-swapping converges towards, and what makes greedy routing
  find short paths at all);
* :meth:`route` is pure greedy forwarding with a hops-to-live bound —
  it can *fail* (unlike Chord), exactly the unbounded-search caveat the
  paper points at, and the failure rate is an observable;
* :class:`FreenetDelivery` plugs the substrate into the protocol
  simulator's delivery-policy interface, pricing every update at its
  routed path length (no caching permitted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.p2p.routing import DeliveryPolicy

__all__ = ["FreenetNetwork", "FreenetRouteResult", "FreenetDelivery"]


@dataclass(frozen=True)
class FreenetRouteResult:
    """Outcome of a greedy key-space route.

    Attributes
    ----------
    owner:
        Peer closest to the key among those reached (the final node).
    hops:
        Hops taken.
    succeeded:
        True if the route reached the globally key-closest peer; greedy
        routing without structure can get stuck at a local minimum and
        the message must then be delivered by the fallback (counted as
        failure here — the paper's "no bounded search guarantees").
    path:
        Peers visited.
    """

    owner: int
    hops: int
    succeeded: bool
    path: Tuple[int, ...]


class FreenetNetwork:
    """A small-world key circle with greedy routing.

    Parameters
    ----------
    num_peers:
        Number of peers; positions are i.i.d. uniform on [0, 1).
    ring_neighbours:
        Nearest neighbours each side a peer always knows (Freenet's
        local connections).
    long_links:
        Long-range contacts per peer, drawn with probability ∝ 1/d
        (Kleinberg's harmonic distribution — the regime where greedy
        routing achieves polylog paths).
    seed:
        Deterministic seed.
    """

    def __init__(
        self,
        num_peers: int,
        *,
        ring_neighbours: int = 2,
        long_links: int = 3,
        seed: SeedLike = None,
    ) -> None:
        if num_peers < 2:
            raise ValueError(f"num_peers must be >= 2, got {num_peers}")
        if ring_neighbours < 1:
            raise ValueError("ring_neighbours must be >= 1")
        if long_links < 0:
            raise ValueError("long_links must be >= 0")
        rng = as_generator(seed)
        self.num_peers = int(num_peers)
        self.positions = np.sort(rng.random(num_peers))
        order = np.arange(num_peers)

        self._contacts: List[np.ndarray] = []
        for i in range(num_peers):
            contacts: Set[int] = set()
            for k in range(1, ring_neighbours + 1):
                contacts.add(int((i + k) % num_peers))
                contacts.add(int((i - k) % num_peers))
            # Kleinberg harmonic long links.
            for _ in range(long_links):
                d = self._circle_distance(self.positions, self.positions[i])
                d[i] = np.inf
                w = 1.0 / np.maximum(d, 1e-9)
                w[i] = 0.0
                w /= w.sum()
                contacts.add(int(rng.choice(order, p=w)))
            contacts.discard(i)
            self._contacts.append(np.fromiter(sorted(contacts), dtype=np.int64))

    # ------------------------------------------------------------------
    @staticmethod
    def _circle_distance(a: np.ndarray, b: float) -> np.ndarray:
        d = np.abs(a - b)
        return np.minimum(d, 1.0 - d)

    def key_position(self, key: int) -> float:
        """Map an integer key onto the circle."""
        return (key % (2**53)) / float(2**53)

    def closest_peer(self, key: int) -> int:
        """Ground truth: the peer whose position is key-closest."""
        pos = self.key_position(key)
        return int(np.argmin(self._circle_distance(self.positions, pos)))

    def contacts_of(self, peer: int) -> np.ndarray:
        """The peer's neighbour set."""
        if not 0 <= peer < self.num_peers:
            raise IndexError(f"peer {peer} out of range")
        return self._contacts[peer]

    def route(self, key: int, start_peer: int, *, hops_to_live: int = 50) -> FreenetRouteResult:
        """Greedy forwarding towards the key, Freenet-style.

        Each node forwards to its key-closest contact not yet visited;
        dead ends backtrack implicitly by simply stopping (Freenet
        backtracks explicitly; for traffic purposes the bounded
        hops-to-live dominates either way).
        """
        if not 0 <= start_peer < self.num_peers:
            raise IndexError(f"start peer {start_peer} out of range")
        if hops_to_live < 1:
            raise ValueError("hops_to_live must be >= 1")
        target = self.closest_peer(key)
        pos = self.key_position(key)
        current = start_peer
        path = [start_peer]
        visited = {start_peer}
        hops = 0
        while current != target and hops < hops_to_live:
            contacts = [c for c in self._contacts[current] if c not in visited]
            if not contacts:
                break
            dists = self._circle_distance(self.positions[contacts], pos)
            nxt = int(contacts[int(np.argmin(dists))])
            # Greedy: only move if it improves; otherwise stuck.
            if self._circle_distance(
                np.array([self.positions[nxt]]), pos
            )[0] >= self._circle_distance(
                np.array([self.positions[current]]), pos
            )[0] and nxt != target:
                # accept sideways/worse moves a bounded number of times
                # (Freenet does, within hops-to-live); keep going.
                pass
            current = nxt
            visited.add(current)
            path.append(current)
            hops += 1
        return FreenetRouteResult(
            owner=current,
            hops=hops,
            succeeded=current == target,
            path=tuple(path),
        )

    def routing_statistics(
        self, *, samples: int = 200, seed: SeedLike = None
    ) -> Dict[str, float]:
        """Empirical success rate and mean path length."""
        rng = as_generator(seed)
        successes = 0
        hops = []
        for _ in range(samples):
            key = int(rng.integers(0, 2**53))
            start = int(rng.integers(0, self.num_peers))
            result = self.route(key, start)
            if result.succeeded:
                successes += 1
                hops.append(result.hops)
        return {
            "success_rate": successes / samples,
            "mean_hops": float(np.mean(hops)) if hops else float("nan"),
        }


class FreenetDelivery(DeliveryPolicy):
    """Anonymity-preserving delivery over a Freenet substrate.

    Every update is routed greedily; no location caching (§3.2's
    Freenet caveat).  Failed routes are charged their full exploration
    and retried once from a random restart peer (counting both), a
    simple stand-in for Freenet's backtracking.
    """

    def __init__(self, network: FreenetNetwork, *, seed: SeedLike = None) -> None:
        self.network = network
        self._rng = as_generator(seed)
        self.total_hops = 0
        self.deliveries = 0
        self.failed_first_attempts = 0

    def delivery_hops(self, sender_peer: int, target_doc: int) -> int:
        from repro.p2p.guid import document_guid

        key = document_guid(target_doc)
        result = self.network.route(key, sender_peer % self.network.num_peers)
        hops = max(result.hops, 1)
        if not result.succeeded:
            self.failed_first_attempts += 1
            restart = int(self._rng.integers(0, self.network.num_peers))
            retry = self.network.route(key, restart)
            hops += max(retry.hops, 1)
        self.total_hops += hops
        self.deliveries += 1
        return hops

    def reset(self) -> None:
        self.total_hops = 0
        self.deliveries = 0
        self.failed_first_attempts = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.deliveries if self.deliveries else 0.0
