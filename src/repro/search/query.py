"""Synthetic search-query generation (paper §4.9).

The paper's queries are random combinations of the corpus's top-100
most frequent terms: twenty two-word and twenty three-word boolean
(AND) queries.  :func:`generate_queries` reproduces that, returning
term-id tuples; drawing from the high-frequency pool is what gives the
large hit lists that make the traffic problem (and the incremental
scheme's win) visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.search.corpus import Corpus

__all__ = ["Query", "generate_queries"]


@dataclass(frozen=True)
class Query:
    """One boolean AND query.

    Attributes
    ----------
    terms:
        Distinct term ids, in routing order (the order peers are
        visited; the paper routes in the order terms appear).
    """

    terms: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 1:
            raise ValueError("a query needs at least one term")
        if len(set(self.terms)) != len(self.terms):
            raise ValueError(f"query terms must be distinct, got {self.terms}")

    def __len__(self) -> int:
        return len(self.terms)


def generate_queries(
    corpus: Corpus,
    *,
    num_queries: int = 20,
    terms_per_query: int = 2,
    term_pool_size: int = 100,
    seed: SeedLike = None,
) -> List[Query]:
    """Random multi-word queries from the corpus's most frequent terms.

    Parameters
    ----------
    corpus:
        The corpus whose document frequencies define the term pool.
    num_queries:
        How many queries (paper: 20 per arity).
    terms_per_query:
        Words per query (paper: 2 and 3).
    term_pool_size:
        Size of the frequent-term pool to draw from (paper: 100).
    seed:
        Deterministic seed.

    Returns
    -------
    list of Query
        Queries with distinct terms; duplicates across queries are
        allowed (as with random generation in the paper).
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {num_queries}")
    if terms_per_query < 1:
        raise ValueError(f"terms_per_query must be >= 1, got {terms_per_query}")
    pool = corpus.top_terms(term_pool_size)
    if pool.size < terms_per_query:
        raise ValueError(
            f"term pool ({pool.size}) smaller than terms_per_query ({terms_per_query})"
        )
    rng = as_generator(seed)
    queries = []
    for _ in range(num_queries):
        picked = rng.choice(pool, size=terms_per_query, replace=False)
        queries.append(Query(terms=tuple(int(t) for t in picked)))
    return queries
