"""Baseline multi-word search: forward everything (paper §4.9).

The no-pagerank baseline Table 6 compares against: boolean multi-word
queries on a DHT index must ship the *entire* hit list from the peer
owning each term to the peer owning the next one, and finally ship the
whole result to the user.  Traffic is measured in document IDs moved,
matching the paper's metric.  Every query term is assumed to live on a
different peer (the paper's stated assumption), so every hop is a
network transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.search.index import DistributedIndex
from repro.search.query import Query

__all__ = [
    "SearchOutcome",
    "baseline_search",
    "intersect_sorted_by_rank",
    "order_terms",
]


@dataclass(frozen=True)
class SearchOutcome:
    """Result + traffic accounting of one query execution.

    Attributes
    ----------
    hits:
        Final result documents, sorted by descending pagerank.
    traffic_doc_ids:
        Total document IDs transferred peer-to-peer *and* back to the
        querying user (the paper's Table 6 unit).
    hop_sizes:
        Document IDs moved at each transfer, in order; the last entry
        is the return to the user.
    """

    hits: np.ndarray
    traffic_doc_ids: int
    hop_sizes: Tuple[int, ...]

    @property
    def num_hits(self) -> int:
        return int(self.hits.size)


def intersect_sorted_by_rank(
    index: DistributedIndex, current: np.ndarray, term: int
) -> np.ndarray:
    """AND the running result with a term's postings; re-sort by rank.

    The boolean operation each index peer performs on arrival of a
    forwarded hit set (§2.4.3).
    """
    postings = index.postings(term)
    merged = np.intersect1d(current, postings.docs, assume_unique=False)
    return index.sort_docs_by_rank(merged)


def order_terms(index: DistributedIndex, query: Query, route_order: str) -> tuple:
    """Resolve the term visiting order.

    ``"given"`` follows the query's own order (the paper routes to the
    peer owning "the first term in the query"); ``"rarest_first"`` is
    the classic IR optimisation of intersecting the smallest posting
    list first — since every hop ships the running set, starting from
    the rarest term minimises every subsequent transfer.  The result
    set is identical either way (AND is commutative); only traffic
    changes.
    """
    if route_order == "given":
        return query.terms
    if route_order == "rarest_first":
        return tuple(sorted(query.terms, key=lambda t: len(index.postings(t))))
    raise ValueError(
        f"route_order must be 'given' or 'rarest_first', got {route_order!r}"
    )


def baseline_search(
    index: DistributedIndex,
    query: Query,
    *,
    route_order: str = "given",
) -> SearchOutcome:
    """Execute a boolean AND query forwarding full hit lists.

    Hop ``i`` ships the entire running result to the peer owning term
    ``i+1``; the final hop ships the complete result to the user.
    ``route_order`` selects the term visiting order (see
    :func:`order_terms`).
    """
    terms = order_terms(index, query, route_order)
    hops: List[int] = []
    current = index.postings(terms[0]).docs.copy()
    for term in terms[1:]:
        hops.append(int(current.size))  # shipped to the next index peer
        current = intersect_sorted_by_rank(index, current, term)
    hops.append(int(current.size))  # shipped to the querying user
    current = index.sort_docs_by_rank(current)
    return SearchOutcome(
        hits=current,
        traffic_doc_ids=int(sum(hops)),
        hop_sizes=tuple(hops),
    )
