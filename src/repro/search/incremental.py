"""Incremental pagerank-ordered search (paper §2.4.3, §4.9).

The paper's answer to multi-word query traffic: every index peer sorts
the surviving hits by pagerank and forwards only the top ``x%`` to the
peer owning the next term — so each hop carries a small fraction of
the hits, "albeit encompassing the most important documents".  The peer
owning the last term performs the final boolean operation and returns
the resulting set (rank-sorted) to the user.

Faithfully reproduced simulation artifact: when the top ``x%`` of a
set would be fewer than ``min_forward`` documents (the paper used 20),
the *entire* set is forwarded instead.  This rule — applied at every
forwarding step — is what makes top-20% forwarding sometimes return
*fewer* final hits than top-10% (Table 6, three-term rows): 20 % of a
modest intersection clears the threshold and gets truncated, while
10 % of it falls below and ships everything.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._util import check_fraction
from repro.search.baseline import SearchOutcome, intersect_sorted_by_rank, order_terms
from repro.search.index import DistributedIndex
from repro.search.query import Query

__all__ = ["DEFAULT_MIN_FORWARD", "forward_top_fraction", "incremental_search"]

#: The paper's forwarding floor: below this many hits, forward them all.
DEFAULT_MIN_FORWARD = 20


def forward_top_fraction(
    sorted_docs: np.ndarray,
    fraction: float,
    *,
    min_forward: int = DEFAULT_MIN_FORWARD,
) -> np.ndarray:
    """Apply the §2.4.3 forwarding rule to a rank-sorted hit set.

    Parameters
    ----------
    sorted_docs:
        Hit documents sorted by descending pagerank.
    fraction:
        The ``x%`` to forward, in (0, 1].
    min_forward:
        The all-or-top threshold (paper: 20).

    Returns
    -------
    numpy.ndarray
        The forwarded subset (a copy).
    """
    check_fraction("fraction", fraction)
    if min_forward < 0:
        raise ValueError(f"min_forward must be >= 0, got {min_forward}")
    k = int(np.ceil(sorted_docs.size * fraction))
    if k < min_forward:
        return sorted_docs.copy()
    return sorted_docs[:k].copy()


def incremental_search(
    index: DistributedIndex,
    query: Query,
    *,
    fraction: float = 0.1,
    min_forward: int = DEFAULT_MIN_FORWARD,
    route_order: str = "given",
    user_top_k: int | None = None,
) -> SearchOutcome:
    """Execute a boolean AND query with top-``fraction`` forwarding.

    The first peer sorts its term's postings by pagerank and forwards
    the top fraction; each subsequent peer intersects what it received
    with its own postings, re-sorts, and forwards the top fraction
    again; the last peer returns the full final intersection to the
    user.  Traffic is the total document IDs moved, including the
    return to the user (the same unit as the baseline).

    ``route_order="rarest_first"`` visits the smallest posting list
    first (see :func:`repro.search.baseline.order_terms`) — an
    orthogonal optimisation that composes with top-x% forwarding.
    Note that unlike the baseline, the *result* can differ slightly
    between orders here, because the top-x% cut is taken against
    different intermediate sets.

    ``user_top_k`` implements the paper's §4.9 user-side pagination:
    "the user sees the most important documents first, while other
    documents can be fetched incrementally if requested" — only the
    top-k of the final (rank-sorted) result is returned and charged to
    the final hop; the remainder stays at the last index peer for
    follow-up fetches.
    """
    if user_top_k is not None and user_top_k < 1:
        raise ValueError(f"user_top_k must be >= 1, got {user_top_k}")
    terms = order_terms(index, query, route_order)
    hops: List[int] = []
    current = index.postings(terms[0]).docs.copy()
    for term in terms[1:]:
        forwarded = forward_top_fraction(current, fraction, min_forward=min_forward)
        hops.append(int(forwarded.size))
        current = intersect_sorted_by_rank(index, forwarded, term)
    if user_top_k is not None:
        current = current[:user_top_k]
    hops.append(int(current.size))  # final result to the user
    return SearchOutcome(
        hits=current,
        traffic_doc_ids=int(sum(hops)),
        hop_sizes=tuple(hops),
    )
