"""Synthetic document corpus — the crawl substitute (paper §4.9).

The paper built its search corpus by crawling ~11,000 news pages
(99 MB), removing stopwords, and thresholding to the most frequent
terms, ending with 1880-dimensional term data.  That crawl is not
available, so this module synthesises a corpus with the same
statistical profile, which is all Table 6 depends on:

* term frequencies are Zipf-distributed (the universal law for natural
  language), so "top-100 most frequent terms" is meaningful;
* each document draws a lognormal number of distinct terms from the
  Zipf law;
* the same post-processing pipeline is applied: the most frequent
  ``num_stopwords`` terms are removed (stopwords), then the vocabulary
  is thresholded to the ``vocab_size`` most frequent survivors.

The documents also carry the link structure used to compute their
pageranks, generated with the §4.1 power-law model, so hit lists have
realistically skewed rank distributions — the property incremental
search exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import as_generator, check_positive
from repro._util.rng import SeedLike, spawn_generators
from repro.graphs.linkgraph import LinkGraph
from repro.graphs.powerlaw import broder_graph

__all__ = ["Corpus", "CorpusConfig", "synthesize_corpus", "save_corpus", "load_corpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic corpus.

    Defaults mirror the paper's corpus: ~11,000 documents reduced to a
    1880-term vocabulary after dropping the most frequent (stopword)
    terms.
    """

    num_documents: int = 11_000
    vocab_size: int = 1_880
    num_stopwords: int = 100
    raw_vocab_size: int = 30_000
    zipf_exponent: float = 1.1
    # ~800 word draws per document (the paper's corpus is ~9 KB of news
    # text per page); this is what gives frequent terms the ~40 %
    # document frequency behind Table 6's thousand-hit lists.
    mean_terms_per_doc: float = 800.0
    sigma_terms_per_doc: float = 0.5

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise ValueError("num_documents must be >= 1")
        if self.vocab_size < 1:
            raise ValueError("vocab_size must be >= 1")
        if self.raw_vocab_size < self.vocab_size + self.num_stopwords:
            raise ValueError(
                "raw_vocab_size must cover stopwords + final vocabulary"
            )
        check_positive("zipf_exponent", self.zipf_exponent)
        check_positive("mean_terms_per_doc", self.mean_terms_per_doc)
        check_positive("sigma_terms_per_doc", self.sigma_terms_per_doc)


@dataclass
class Corpus:
    """A processed document corpus.

    Attributes
    ----------
    doc_terms:
        For each document, a sorted ``int64`` array of the distinct
        term ids it contains (ids index the *processed* vocabulary).
    vocab_size:
        Number of terms in the processed vocabulary.
    document_frequency:
        ``document_frequency[t]`` = number of documents containing
        term ``t``.
    link_graph:
        Optional link structure among the documents (for pagerank).
    """

    doc_terms: List[np.ndarray]
    vocab_size: int
    document_frequency: np.ndarray
    link_graph: Optional[LinkGraph] = None

    @property
    def num_documents(self) -> int:
        return len(self.doc_terms)

    def documents_with_term(self, term: int) -> np.ndarray:
        """All documents containing ``term`` (O(corpus) scan; the
        distributed index precomputes this as posting lists)."""
        if not 0 <= term < self.vocab_size:
            raise IndexError(f"term {term} out of range [0, {self.vocab_size})")
        return np.array(
            [d for d, terms in enumerate(self.doc_terms) if term in set(terms.tolist())],
            dtype=np.int64,
        )

    def top_terms(self, k: int) -> np.ndarray:
        """The ``k`` terms appearing in the most documents — the pool
        the paper draws its synthetic queries from (top 100)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        k = min(k, self.vocab_size)
        order = np.argsort(self.document_frequency, kind="stable")[::-1]
        return order[:k].astype(np.int64)


def synthesize_corpus(
    config: Optional[CorpusConfig] = None,
    *,
    seed: SeedLike = None,
    with_links: bool = True,
) -> Corpus:
    """Generate a corpus per :class:`CorpusConfig`.

    The generation pipeline mirrors the paper's §4.9 preparation:

    1. draw each document's raw terms from a Zipf law over the raw
       vocabulary;
    2. drop the globally most frequent ``num_stopwords`` raw terms
       (stopword removal);
    3. keep the ``vocab_size`` most document-frequent remaining terms
       and discard everything else (frequency thresholding);
    4. renumber surviving terms by descending document frequency, so
       term 0 is the most common non-stop term.

    Parameters
    ----------
    config:
        Corpus parameters (paper-scaled defaults).
    seed:
        Deterministic seed.
    with_links:
        Also generate a §4.1 power-law link graph over the documents
        (needed to compute their pageranks).
    """
    cfg = config or CorpusConfig()
    rng_terms, rng_links = spawn_generators(seed, 2)

    # Zipf term sampling over the raw vocabulary, via inverse CDF.
    ranks = np.arange(1, cfg.raw_vocab_size + 1, dtype=np.float64)
    pmf = ranks ** (-cfg.zipf_exponent)
    cdf = np.cumsum(pmf)
    cdf /= cdf[-1]

    # Lognormal number of raw term draws per document.
    mu = np.log(cfg.mean_terms_per_doc) - 0.5 * cfg.sigma_terms_per_doc**2
    lengths = np.maximum(
        1, rng_terms.lognormal(mu, cfg.sigma_terms_per_doc, cfg.num_documents).astype(np.int64)
    )

    total = int(lengths.sum())
    draws = np.searchsorted(cdf, rng_terms.random(total), side="left")
    offsets = np.zeros(cfg.num_documents + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])

    raw_doc_terms = [
        np.unique(draws[offsets[i] : offsets[i + 1]]) for i in range(cfg.num_documents)
    ]

    # Document frequency over the raw vocabulary.
    df = np.zeros(cfg.raw_vocab_size, dtype=np.int64)
    for terms in raw_doc_terms:
        df[terms] += 1

    # Stopword removal + frequency thresholding.
    order = np.argsort(df, kind="stable")[::-1]
    kept = order[cfg.num_stopwords : cfg.num_stopwords + cfg.vocab_size]
    remap = np.full(cfg.raw_vocab_size, -1, dtype=np.int64)
    # New ids ordered by descending document frequency.
    remap[kept] = np.arange(kept.size, dtype=np.int64)

    doc_terms: List[np.ndarray] = []
    for terms in raw_doc_terms:
        mapped = remap[terms]
        mapped = np.sort(mapped[mapped >= 0])
        doc_terms.append(mapped)

    final_df = np.zeros(kept.size, dtype=np.int64)
    for terms in doc_terms:
        final_df[terms] += 1

    link_graph = (
        broder_graph(cfg.num_documents, seed=rng_links) if with_links else None
    )
    return Corpus(
        doc_terms=doc_terms,
        vocab_size=int(kept.size),
        document_frequency=final_df,
        link_graph=link_graph,
    )


def save_corpus(corpus: Corpus, path) -> None:
    """Persist a corpus (terms + link structure) to one ``.npz`` file.

    Regenerating the paper-scale corpus takes seconds, but benchmark
    fixtures and downstream experiments want byte-identical inputs;
    the flat CSR-style encoding here is lossless and loads in O(size).
    """
    lengths = np.array([t.size for t in corpus.doc_terms], dtype=np.int64)
    flat = (
        np.concatenate(corpus.doc_terms)
        if corpus.doc_terms
        else np.empty(0, dtype=np.int64)
    )
    payload = {
        "lengths": lengths,
        "terms": flat,
        "vocab_size": np.int64(corpus.vocab_size),
        "document_frequency": corpus.document_frequency,
        "has_links": np.bool_(corpus.link_graph is not None),
    }
    if corpus.link_graph is not None:
        payload["indptr"] = corpus.link_graph.indptr
        payload["indices"] = corpus.link_graph.indices
    np.savez_compressed(path, **payload)


def load_corpus(path) -> Corpus:
    """Load a corpus written by :func:`save_corpus`."""
    with np.load(path) as data:
        lengths = data["lengths"]
        flat = data["terms"]
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        doc_terms = [
            flat[offsets[i] : offsets[i + 1]].copy() for i in range(lengths.size)
        ]
        link_graph = None
        if bool(data["has_links"]):
            link_graph = LinkGraph(
                data["indptr"].copy(), data["indices"].copy(), lengths.size
            )
        return Corpus(
            doc_terms=doc_terms,
            vocab_size=int(data["vocab_size"]),
            document_frequency=data["document_frequency"].copy(),
            link_graph=link_graph,
        )
