"""FASD/Freenet-style metadata-key search with pagerank (paper §2.4.1).

FASD (Kronfol, ref. [15]) represents every document by a metadata key —
a term vector — stored in a distributed, Freenet-like fashion; queries
are vectors too, and matching documents are those whose keys are
"close" to the query vector.  The paper's modification: results are
forwarded through the network based on a *linear combination of
document closeness and pagerank*, so globally important documents
surface first even in an anonymity-preserving system with no central
index.

This module models that scoring scheme over our corpus:

* metadata keys are L2-normalised binary term-incidence vectors;
* closeness is the cosine similarity between key and query vectors;
* the combined forwarding score is
  ``alpha * closeness + (1 - alpha) * normalised_pagerank``
  with pageranks scaled to [0, 1] over the corpus.

A full Freenet routing simulation is out of the paper's scope (it
defers details to its tech report [21]); what the paper relies on —
and what the tests exercise — is the *ranking behaviour* of the
combined score: ``alpha = 1`` reduces to pure content closeness,
``alpha = 0`` to pure pagerank, and intermediate values interpolate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro._util import check_probability
from repro.search.corpus import Corpus

__all__ = ["FasdScorer", "FasdResult"]


@dataclass(frozen=True)
class FasdResult:
    """Ranked FASD search result.

    Attributes
    ----------
    docs:
        Documents in descending combined-score order.
    scores:
        The combined scores, parallel to ``docs``.
    closeness:
        The pure cosine-closeness component, parallel to ``docs``.
    """

    docs: np.ndarray
    scores: np.ndarray
    closeness: np.ndarray


class FasdScorer:
    """Combined closeness ⊕ pagerank scorer over a corpus.

    Parameters
    ----------
    corpus:
        The document corpus (term sets become metadata keys).
    ranks:
        Per-document pageranks.
    alpha:
        Weight of content closeness in the combination; ``1 - alpha``
        weights the normalised pagerank.
    """

    def __init__(self, corpus: Corpus, ranks: np.ndarray, *, alpha: float = 0.5) -> None:
        check_probability("alpha", alpha)
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.shape != (corpus.num_documents,):
            raise ValueError(
                f"ranks must have shape ({corpus.num_documents},), got {ranks.shape}"
            )
        self.corpus = corpus
        self.alpha = float(alpha)
        # Normalise pageranks to [0, 1] so the two score components are
        # commensurable.
        span = ranks.max() - ranks.min()
        self._norm_rank = (ranks - ranks.min()) / span if span > 0 else np.zeros_like(ranks)
        # Key norms: documents are binary term vectors, so the L2 norm
        # is sqrt(#terms).
        self._key_norms = np.sqrt(
            np.array([t.size for t in corpus.doc_terms], dtype=np.float64)
        )

    def closeness(self, query_terms: Sequence[int]) -> np.ndarray:
        """Cosine closeness of every document's metadata key to the
        query vector (binary query over ``query_terms``)."""
        q = np.unique(np.asarray(list(query_terms), dtype=np.int64))
        if q.size == 0:
            raise ValueError("query must contain at least one term")
        if q.min() < 0 or q.max() >= self.corpus.vocab_size:
            raise ValueError("query terms out of vocabulary range")
        overlap = np.array(
            [np.intersect1d(t, q, assume_unique=True).size for t in self.corpus.doc_terms],
            dtype=np.float64,
        )
        qnorm = np.sqrt(float(q.size))
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = overlap / (self._key_norms * qnorm)
        cos[self._key_norms == 0] = 0.0
        return cos

    def search(self, query_terms: Sequence[int], *, top_k: int = 20) -> FasdResult:
        """Rank documents by the combined forwarding score.

        Returns the ``top_k`` documents a FASD node would forward
        first under the paper's modified scheme.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        close = self.closeness(query_terms)
        combined = self.alpha * close + (1.0 - self.alpha) * self._norm_rank
        k = min(top_k, combined.size)
        # Descending score, doc id as deterministic tie-break.
        order = np.lexsort((np.arange(combined.size), -combined))[:k]
        return FasdResult(
            docs=order.astype(np.int64),
            scores=combined[order],
            closeness=close[order],
        )
