"""Keyword search over the P2P index (paper §2.4, §4.9).

* :mod:`~repro.search.corpus` — the synthetic crawl substitute;
* :mod:`~repro.search.index` — the distributed inverted index with a
  pagerank column;
* :mod:`~repro.search.baseline` / :mod:`~repro.search.incremental` —
  full-forwarding vs. top-x% incremental search (Table 6);
* :mod:`~repro.search.bloom` — Bloom-filter-assisted intersection and
  its composition with incremental forwarding;
* :mod:`~repro.search.fasd` — the FASD/Freenet closeness ⊕ pagerank
  scoring variant.
"""

from repro.search.baseline import (
    SearchOutcome,
    baseline_search,
    intersect_sorted_by_rank,
    order_terms,
)
from repro.search.bloom import (
    DOC_ID_BYTES,
    BloomFilter,
    BloomSearchOutcome,
    bloom_search,
)
from repro.search.corpus import (
    Corpus,
    CorpusConfig,
    load_corpus,
    save_corpus,
    synthesize_corpus,
)
from repro.search.fasd import FasdResult, FasdScorer
from repro.search.incremental import (
    DEFAULT_MIN_FORWARD,
    forward_top_fraction,
    incremental_search,
)
from repro.search.index import DistributedIndex, PostingList
from repro.search.query import Query, generate_queries

__all__ = [
    "Corpus",
    "CorpusConfig",
    "synthesize_corpus",
    "save_corpus",
    "load_corpus",
    "DistributedIndex",
    "PostingList",
    "Query",
    "generate_queries",
    "SearchOutcome",
    "baseline_search",
    "intersect_sorted_by_rank",
    "order_terms",
    "incremental_search",
    "forward_top_fraction",
    "DEFAULT_MIN_FORWARD",
    "BloomFilter",
    "BloomSearchOutcome",
    "bloom_search",
    "DOC_ID_BYTES",
    "FasdScorer",
    "FasdResult",
]
