"""Bloom filters and Bloom-assisted distributed intersection.

The paper (§2.4.2-§2.4.3) notes that Bloom-filter methods (Reynolds &
Vahdat, ref. [19]; Bloom, ref. [3]) are the existing answer to
multi-word query traffic, and that incremental search "can be coupled
with a Bloom filter based method to provide further reduction".  This
module supplies both pieces:

* :class:`BloomFilter` — a from-scratch bit-array filter with
  double-hashing (Kirsch–Mitzenmacher), zero false negatives by
  construction;
* :func:`bloom_search` — the [19]-style two-peer intersection: ship a
  filter of the running hit set instead of the ids, let the next peer
  prefilter its postings, and measure traffic in *bytes* (filters and
  ids are not the same unit, so the byte metric is the honest one);
* the same machinery composed with top-x% forwarding
  (``fraction`` argument), the coupling the paper proposes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro._util import check_fraction
from repro.search.incremental import DEFAULT_MIN_FORWARD, forward_top_fraction
from repro.search.index import DistributedIndex
from repro.search.query import Query

__all__ = ["BloomFilter", "BloomSearchOutcome", "bloom_search", "DOC_ID_BYTES"]

#: Wire size of one document ID: a 128-bit GUID (matching the paper's
#: message accounting).
DOC_ID_BYTES = 16


class BloomFilter:
    """Classic Bloom filter over integer keys.

    Parameters
    ----------
    num_bits:
        Size of the bit array (``m``).
    num_hashes:
        Number of hash probes per key (``k``).

    Notes
    -----
    Uses double hashing: two 64-bit lanes derived from one SHA-256 per
    key give ``h_i(x) = h1 + i*h2 mod m``, which preserves the standard
    false-positive analysis.  Membership tests have **no false
    negatives** (property-tested in the suite); the false-positive rate
    for ``n`` inserted keys is ``(1 - e^(-kn/m))^k``.
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 8:
            raise ValueError(f"num_bits must be >= 8, got {num_bits}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self._bits = np.zeros(num_bits, dtype=bool)
        self._count = 0

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``capacity`` keys at a target false-positive
        rate, using the textbook optima ``m = -n ln p / ln²2`` and
        ``k = (m/n) ln 2``."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        m = int(np.ceil(-capacity * np.log(fp_rate) / (np.log(2) ** 2)))
        k = max(1, int(round(m / capacity * np.log(2))))
        return cls(max(m, 8), k)

    def _probes(self, key: int) -> np.ndarray:
        digest = hashlib.sha256(int(key).to_bytes(16, "big", signed=False)).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full cycle
        i = np.arange(self.num_hashes, dtype=np.uint64)
        return (np.uint64(h1) + i * np.uint64(h2)) % np.uint64(self.num_bits)

    def add(self, key: int) -> None:
        """Insert one key."""
        self._bits[self._probes(key)] = True
        self._count += 1

    def add_many(self, keys: Iterable[int]) -> None:
        for k in keys:
            self.add(int(k))

    def __contains__(self, key: int) -> bool:
        return bool(self._bits[self._probes(key)].all())

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Vector membership test (may include false positives)."""
        return np.array([int(k) in self for k in keys], dtype=bool)

    @property
    def size_bytes(self) -> int:
        """Wire size when shipped to another peer."""
        return (self.num_bits + 7) // 8

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation diagnostic)."""
        return float(self._bits.mean())

    def expected_fp_rate(self) -> float:
        """Analytic false-positive estimate for the current load."""
        k, m, n = self.num_hashes, self.num_bits, self._count
        return float((1.0 - np.exp(-k * n / m)) ** k)


@dataclass(frozen=True)
class BloomSearchOutcome:
    """Result + byte-level traffic of a Bloom-assisted query.

    Attributes
    ----------
    hits:
        Final result documents (exact — false positives are removed by
        the verification round), rank-sorted.
    traffic_bytes:
        Total bytes moved: filters + candidate ids + verified ids +
        the final return to the user.
    baseline_bytes:
        What the same query would have cost shipping full id lists
        (``DOC_ID_BYTES`` per id), for the reduction ratio.
    false_positives:
        Candidates that passed the filter but not the true
        intersection (removed during verification).
    """

    hits: np.ndarray
    traffic_bytes: int
    baseline_bytes: int
    false_positives: int

    @property
    def reduction_factor(self) -> float:
        """Baseline bytes / Bloom bytes (> 1 means the filter won)."""
        return self.baseline_bytes / self.traffic_bytes if self.traffic_bytes else 0.0


def bloom_search(
    index: DistributedIndex,
    query: Query,
    *,
    fp_rate: float = 0.01,
    fraction: Optional[float] = None,
    min_forward: int = DEFAULT_MIN_FORWARD,
) -> BloomSearchOutcome:
    """Reynolds–Vahdat-style Bloom intersection, optionally composed
    with the paper's top-x% incremental forwarding.

    Protocol per hop (peer A holds the running set S, peer B owns the
    next term):

    1. A ships ``Bloom(S)`` to B  (filter bytes);
    2. B prefilters its postings to candidates ``C = {d ∈ postings :
       d ∈ Bloom(S)}`` and ships C back to A  (id bytes, includes the
       filter's false positives);
    3. A intersects C with S exactly, yielding the true running set,
       and — when ``fraction`` is given — truncates it with the
       §2.4.3 top-x% rule before the next hop.

    The final exact set is shipped to the user.  The unassisted
    baseline cost for the same hops (full id lists each way where the
    protocol ships ids) is accumulated alongside for comparison.
    """
    if fraction is not None:
        check_fraction("fraction", fraction)

    current = index.postings(query.terms[0]).docs.copy()
    traffic = 0
    baseline = 0
    false_pos = 0

    for term in query.terms[1:]:
        if fraction is not None:
            current = forward_top_fraction(current, fraction, min_forward=min_forward)
        postings = index.postings(term).docs
        # Hop cost if we had shipped the set as plain ids:
        baseline += current.size * DOC_ID_BYTES

        bloom = BloomFilter.for_capacity(max(int(current.size), 1), fp_rate)
        bloom.add_many(current.tolist())
        traffic += bloom.size_bytes

        candidates = postings[bloom.contains_many(postings)]
        traffic += candidates.size * DOC_ID_BYTES

        true_set = np.intersect1d(current, candidates)
        false_pos += int(candidates.size - true_set.size)
        current = index.sort_docs_by_rank(true_set)

    traffic += current.size * DOC_ID_BYTES  # return to user
    baseline += current.size * DOC_ID_BYTES
    return BloomSearchOutcome(
        hits=current,
        traffic_bytes=int(traffic),
        baseline_bytes=int(baseline),
        false_positives=false_pos,
    )
