"""Distributed inverted keyword index over the DHT (paper §2.4.2).

Keyword search on DHT systems uses a distributed index: the index
entry for a keyword lives on the peer that owns the keyword's GUID and
points to every document containing the keyword.  The paper's addition
is an extra column: each posting also stores the document's *pagerank*,
kept current by index-update messages sent whenever a document's
pagerank (re)converges — which is what lets any single peer sort its
hit list by global importance without further communication.

:class:`DistributedIndex` implements that structure.  Posting lists are
kept sorted by descending pagerank (ties by doc id, so results are
deterministic) because every search variant consumes them in that
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.p2p.guid import guid_of
from repro.search.corpus import Corpus

__all__ = ["PostingList", "DistributedIndex"]


@dataclass
class PostingList:
    """Index entry for one term: documents + their pageranks.

    ``docs``/``ranks`` are parallel arrays sorted by descending rank
    (doc id ascending among equal ranks).
    """

    term: int
    docs: np.ndarray
    ranks: np.ndarray

    def __len__(self) -> int:
        return self.docs.size

    def top_fraction(self, fraction: float, *, min_forward: int) -> np.ndarray:
        """The paper's §2.4.3 forwarding rule: the top ``fraction`` of
        hits by pagerank — unless that would be fewer than
        ``min_forward`` documents, in which case *all* hits are
        forwarded (the simulation artifact called out in Table 6's
        discussion; the paper used a threshold of 20)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        k = int(np.ceil(self.docs.size * fraction))
        if k < min_forward:
            return self.docs.copy()
        return self.docs[:k].copy()


class DistributedIndex:
    """Term-partitioned inverted index with a pagerank column.

    Parameters
    ----------
    corpus:
        The document corpus to index.
    ranks:
        Per-document pageranks (what the §2.4.2 index-update messages
        deposited).
    num_peers:
        Number of index peers; terms are assigned to peers by hashing
        the term id (consistent with a DHT's GUID ownership without
        requiring a full ring here).

    Notes
    -----
    The index tracks ``index_update_messages``: one message per
    document per call to :meth:`update_rank`, plus the initial bulk
    load (one per (term, doc) posting), so traffic experiments can
    account for index maintenance if they choose to.
    """

    def __init__(self, corpus: Corpus, ranks: np.ndarray, num_peers: int) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.shape != (corpus.num_documents,):
            raise ValueError(
                f"ranks must have shape ({corpus.num_documents},), got {ranks.shape}"
            )
        self.corpus = corpus
        self.num_peers = int(num_peers)
        self._ranks = ranks.copy()
        self.index_update_messages = 0
        # GUID hashing dominates maintenance accounting on bulk
        # refreshes; both maps are stable for the index's lifetime.
        self._term_peer_cache: Dict[int, int] = {}
        self._doc_peer_count: Dict[int, int] = {}

        # Invert: term -> docs, one pass over the corpus.
        buckets: Dict[int, List[int]] = {}
        for doc, terms in enumerate(corpus.doc_terms):
            for t in terms.tolist():
                buckets.setdefault(t, []).append(doc)
        self._postings: Dict[int, PostingList] = {}
        for term, docs in buckets.items():
            docs_arr = np.asarray(docs, dtype=np.int64)
            self._postings[term] = self._sorted_posting(term, docs_arr)
        self.index_update_messages += sum(len(p) for p in self._postings.values())

    # ------------------------------------------------------------------
    def _sorted_posting(self, term: int, docs: np.ndarray) -> PostingList:
        r = self._ranks[docs]
        # Descending rank, ascending doc id among ties: lexsort keys
        # are applied last-key-primary.
        order = np.lexsort((docs, -r))
        return PostingList(term=term, docs=docs[order], ranks=r[order])

    # ------------------------------------------------------------------
    def peer_of_term(self, term: int) -> int:
        """Index peer owning ``term`` (GUID-hash partitioning)."""
        peer = self._term_peer_cache.get(term)
        if peer is None:
            peer = guid_of(str(term), namespace="term") % self.num_peers
            self._term_peer_cache[term] = peer
        return peer

    def postings(self, term: int) -> PostingList:
        """The posting list for ``term`` (empty list if unseen)."""
        p = self._postings.get(term)
        if p is None:
            return PostingList(
                term=term,
                docs=np.empty(0, dtype=np.int64),
                ranks=np.empty(0, dtype=np.float64),
            )
        return p

    def rank_of(self, doc: int) -> float:
        """Pagerank currently recorded for ``doc``."""
        return float(self._ranks[doc])

    def ranks_of(self, docs: np.ndarray) -> np.ndarray:
        """Vectorized rank lookup."""
        return self._ranks[np.asarray(docs, dtype=np.int64)]

    def update_rank(self, doc: int, rank: float) -> None:
        """Apply a §2.4.2 index-update message: a document's pagerank
        changed; every posting list containing it re-sorts."""
        if not 0 <= doc < self.corpus.num_documents:
            raise IndexError(f"doc {doc} out of range")
        self._ranks[doc] = float(rank)
        for term in self.corpus.doc_terms[doc].tolist():
            p = self._postings.get(term)
            if p is not None:
                self._postings[term] = self._sorted_posting(term, p.docs)
        self.index_update_messages += 1

    def index_peers_of_doc(self, doc: int) -> set:
        """The index peers holding postings that mention ``doc``.

        One §2.4.2 index-update message must reach each of them when
        the document's pagerank changes — the per-document maintenance
        cost the traffic analysis of index upkeep uses.
        """
        if not 0 <= doc < self.corpus.num_documents:
            raise IndexError(f"doc {doc} out of range")
        return {self.peer_of_term(int(t)) for t in self.corpus.doc_terms[doc]}

    def maintenance_messages(self, changed_docs) -> int:
        """Total index-update messages to refresh the pagerank column
        for ``changed_docs`` (one message per affected index peer per
        document)."""
        total = 0
        for d in changed_docs:
            doc = int(d)
            count = self._doc_peer_count.get(doc)
            if count is None:
                count = len(self.index_peers_of_doc(doc))
                self._doc_peer_count[doc] = count
            total += count
        return total

    def refresh_ranks(self, ranks: np.ndarray) -> int:
        """Apply a bulk batch of §2.4.2 index-update messages.

        The serving layer periodically republishes the background
        computation's current rank vector into the index (the paper's
        "index update messages are sent" moment); this is the bulk
        equivalent of calling :meth:`update_rank` per changed document,
        re-sorting each posting list once instead of once per change.

        Returns the number of index-update messages charged (one per
        affected index peer per changed document), also added to
        :attr:`index_update_messages`.  A no-change refresh costs
        nothing and leaves the index untouched.
        """
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.shape != self._ranks.shape:
            raise ValueError(
                f"ranks must have shape {self._ranks.shape}, got {ranks.shape}"
            )
        changed = np.flatnonzero(ranks != self._ranks)
        if changed.size == 0:
            return 0
        self._ranks = ranks.copy()
        for term, p in self._postings.items():
            self._postings[term] = self._sorted_posting(term, p.docs)
        messages = self.maintenance_messages(changed)
        self.index_update_messages += messages
        return messages

    def sort_docs_by_rank(self, docs: np.ndarray) -> np.ndarray:
        """Sort arbitrary doc ids by descending recorded pagerank."""
        docs = np.asarray(docs, dtype=np.int64)
        r = self._ranks[docs]
        return docs[np.lexsort((docs, -r))]
