"""Shared-memory arena backing the multi-process sharded engine.

One :class:`multiprocessing.shared_memory.SharedMemory` block carries
everything the parties of a parallel run exchange (§4.2's pass
simulation run across OS processes): the immutable forward CSR of the
link graph plus the placement assignment (zero-copy worker reads), the
live rank / last-sent / active arrays, the per-shard published-ids
regions and the per-shard statistics matrix.  The layout is a flat
list of named array specs with 8-byte-aligned offsets computed up
front; parent and workers map numpy views over the same bytes, and the
pass protocol's two barriers guarantee no view is written while
another party reads it (docs/PERFORMANCE.md "Sharded execution
model").
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["SharedArena", "plan_layout"]

#: (name, dtype string, shape) triple describing one shared array.
ArraySpec = Tuple[str, str, Tuple[int, ...]]

#: (name, dtype string, shape, byte offset) — a placed array.
PlacedSpec = Tuple[str, str, Tuple[int, ...], int]


def plan_layout(
    specs: Sequence[ArraySpec],
) -> Tuple[List[PlacedSpec], int]:
    """Assign 8-byte-aligned offsets to ``specs``; returns the placed
    specs plus the total byte size of the block."""
    placed: List[PlacedSpec] = []
    offset = 0
    for name, dtype, shape in specs:
        nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        offset = (offset + 7) & ~7
        placed.append((name, dtype, tuple(int(d) for d in shape), offset))
        offset += nbytes
    return placed, max(offset, 1)


class SharedArena:
    """Named numpy views over one shared-memory block.

    The parent :meth:`create`\\ s the arena (and later
    :meth:`unlink`\\ s it); workers :meth:`attach` by name.  Attaching
    unregisters the segment from the per-process ``resource_tracker``
    so only the creating process cleans it up — without this, every
    worker's tracker would try to unlink the same segment at exit.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: List[PlacedSpec],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._layout = layout
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        for name, dtype, shape, offset in layout:
            self._views[name] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset
            )

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, specs: Sequence[ArraySpec]) -> "SharedArena":
        """Allocate a fresh block sized for ``specs`` (parent side)."""
        layout, total = plan_layout(specs)
        shm = shared_memory.SharedMemory(create=True, size=total)
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(
        cls, name: str, layout: List[PlacedSpec], *, untrack: bool = False
    ) -> "SharedArena":
        """Map an existing block by name (worker side).

        ``untrack`` withdraws the attach-time ``resource_tracker``
        registration.  Required under the ``spawn`` start method, where
        each worker runs its own tracker that would otherwise unlink
        the still-live segment at worker exit; must stay off under
        ``fork``, where workers share the parent's tracker and an
        unregister would cancel the parent's own registration.
        """
        shm = shared_memory.SharedMemory(name=name)
        if untrack:
            try:  # pragma: no cover - tracker internals vary per version
                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
        return cls(shm, layout, owner=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The block's system-wide name (what workers attach by)."""
        return self._shm.name

    @property
    def layout(self) -> List[PlacedSpec]:
        """The placed specs (picklable; shipped to workers)."""
        return self._layout

    def view(self, name: str) -> np.ndarray:
        """The numpy view registered under ``name``."""
        return self._views[name]

    def views(self) -> Dict[str, np.ndarray]:
        """All views by name (shared dict; do not mutate)."""
        return self._views

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the views and unmap the block (every process)."""
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass

    def unlink(self) -> None:
        """Free the block system-wide (creating process only)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
