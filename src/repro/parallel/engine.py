"""Multi-process sharded execution engine for chaotic PageRank.

:class:`ParallelPagerank` runs the same chaotic iteration as
:class:`repro.core.distributed.ChaoticPagerank` (§2.3, Figure 1;
churn/faults per §3.1) but partitions the peer population into shards
executed by parallel worker OS processes over a shared-memory arena
(docs/PERFORMANCE.md "Sharded execution model").  Determinism
contract:

* fixed shard count → results are bit-for-bit identical at **any**
  worker count (shards, not workers, key the per-shard RNG streams);
* ``workers=1, shards=1`` → bit-for-bit identical to the serial
  engine, including under injected loss and churn;
* the static (no-churn, no-fault) path is bit-identical to the serial
  engine at every shard count.

Cross-shard exchange is priced like the paper's message accounting
(§4.6.1's 24-byte updates): each published document contributes one
delta per out-edge whose target lives in a different shard, and hop
counts follow the run's :class:`repro.p2p.routing.DeliveryPolicy`.
The ``in-process`` backend drives the identical per-shard code on one
thread (useful for tests and coverage); ``process`` is the real
multi-process backend; ``auto`` picks ``process`` when ``workers > 1``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.convergence import ConvergenceTracker, PassStats, RunReport
from repro.core.distributed import AvailabilityModel, PassObserver
from repro.core.kernels import expand_rows
from repro.core.pagerank import DEFAULT_DAMPING
from repro.faults.plan import FaultSpec
from repro.graphs.linkgraph import LinkGraph
from repro.obs import MetricsRegistry, get_registry
from repro.p2p.messages import MESSAGE_SIZE_BYTES
from repro.p2p.routing import DeliveryPolicy
from repro.parallel.control import (
    COL_ACTIVE,
    COL_COMPUTE_S,
    COL_COMPUTED,
    COL_CUT,
    COL_DEFERRED,
    COL_DROPPED,
    COL_MAX_CHANGE,
    COL_MESSAGES,
    COL_PUBLISHED,
    COL_RESENT,
    N_STAT_COLS,
    churn_should_stop,
    static_pass_is_dense,
    static_should_stop,
)
from repro.parallel.plan import ShardPlan, build_shard_plan
from repro.parallel.state import ArraySpec, SharedArena
from repro.parallel.worker import (
    BARRIER_TIMEOUT_S,
    RunConfig,
    ShardRunner,
    build_worker_state,
    gather_published,
    worker_main,
)

__all__ = ["ParallelPagerank", "ExchangeStats", "parallel_pagerank"]

_BACKENDS = ("auto", "in-process", "process")


@dataclass(frozen=True)
class ExchangeStats:
    """Cross-shard traffic of one parallel run, priced like Eq. 4's
    message accounting: one 24-byte delta per published rank crossing a
    shard boundary."""

    messages: int
    bytes_on_wire: int
    hops: int


class _AllPresent:
    """Availability model with every peer always live; routes
    fault-only runs through the per-edge churn path (picklable, no
    RNG, so every party trivially agrees)."""

    def __init__(self, num_peers: int) -> None:
        self._mask = np.ones(num_peers, dtype=bool)

    def sample(self, pass_index: int) -> np.ndarray:
        return self._mask


class _ParallelInstruments:
    """Registry handles for the parallel engine's emissions (no-ops
    under the default disabled registry; docs/OBSERVABILITY.md §12)."""

    __slots__ = (
        "passes", "exchange_messages", "exchange_bytes", "exchange_hops",
        "barrier_wait", "compute", "utilization", "imbalance", "workers",
    )

    def __init__(self, reg: MetricsRegistry) -> None:
        self.passes = reg.counter(
            "parallel.passes", unit="passes",
            description="sharded-engine passes executed",
        )
        self.exchange_messages = reg.counter(
            "parallel.exchange_messages", unit="messages",
            description="rank deltas exchanged across shard boundaries",
        )
        self.exchange_bytes = reg.counter(
            "parallel.exchange_bytes", unit="bytes",
            description="cross-shard exchange volume at 24 B per delta",
        )
        self.exchange_hops = reg.counter(
            "parallel.exchange_hops", unit="hops",
            description="delivery-policy-priced hops of the cross-shard exchange",
        )
        self.barrier_wait = reg.timer(
            "parallel.barrier_wait_seconds",
            description="parent wall-clock seconds blocked on pass barriers",
        )
        self.compute = reg.histogram(
            "parallel.compute_seconds", unit="seconds",
            description="summed per-shard compute seconds, one observation per pass",
        )
        self.utilization = reg.gauge(
            "parallel.worker_utilization", unit="ratio",
            description="shard compute seconds / (workers x run wall seconds)",
        )
        self.imbalance = reg.gauge(
            "parallel.shard_imbalance", unit="ratio",
            description="largest shard's documents / mean documents per shard",
        )
        self.workers = reg.gauge(
            "parallel.workers", unit="workers",
            description="worker processes of the latest run",
        )


class ParallelPagerank:
    """Sharded multi-process chaotic-iteration engine.

    Parameters mirror :class:`~repro.core.distributed.ChaoticPagerank`
    plus the execution geometry:

    workers:
        Worker OS processes (capped at the shard count — an idle
        worker would only add barrier latency).
    shards:
        Partition granularity; defaults to the (capped) worker count.
        Results are keyed on shards, never on workers.
    backend:
        ``"process"`` (real worker processes), ``"in-process"``
        (identical per-shard code on one thread), or ``"auto"``
        (process when ``workers > 1``).

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> engine = ParallelPagerank(cycle_graph(6), workers=2, epsilon=1e-6,
    ...                           backend="in-process")
    >>> report = engine.run()
    >>> bool(report.converged)
    True
    """

    def __init__(
        self,
        graph: LinkGraph,
        assignment: Optional[np.ndarray] = None,
        *,
        num_peers: Optional[int] = None,
        workers: int = 1,
        shards: Optional[int] = None,
        damping: float = DEFAULT_DAMPING,
        epsilon: float = 1e-3,
        init_rank: float = 1.0,
        backend: str = "auto",
    ) -> None:
        check_threshold("damping", damping)
        check_threshold("epsilon", epsilon)
        check_positive("init_rank", init_rank)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        self.graph = graph
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.init_rank = float(init_rank)
        self.backend = backend

        n = graph.num_nodes
        if assignment is None:
            assignment = np.arange(n, dtype=np.int64)
            inferred_peers = n
        else:
            assignment = np.asarray(assignment, dtype=np.int64)
            if assignment.shape != (n,):
                raise ValueError(
                    f"assignment must have shape ({n},), got {assignment.shape}"
                )
            if n and assignment.min() < 0:
                raise ValueError("peer ids must be non-negative")
            inferred_peers = int(assignment.max()) + 1 if n else 0
        self.assignment = assignment
        self.num_peers = int(num_peers) if num_peers is not None else inferred_peers
        if n and self.num_peers <= int(assignment.max()):
            raise ValueError(
                f"num_peers={self.num_peers} too small for assignment "
                f"max {int(assignment.max())}"
            )

        max_shards = max(self.num_peers, 1)
        if shards is None:
            shards = min(workers, max_shards)
        if not 1 <= shards <= max_shards:
            raise ValueError(
                f"shards must be in [1, num_peers={max_shards}], got {shards}"
            )
        self.shards = int(shards)
        self.workers = min(int(workers), self.shards)

        self._indptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(graph.indices, dtype=np.int64)
        self.plan: ShardPlan = build_shard_plan(
            self.assignment, max(self.num_peers, 1), self.shards
        )
        #: Cross-shard exchange of the most recent run.
        self.last_exchange: Optional[ExchangeStats] = None
        #: Compute-seconds / (workers x wall) of the most recent run.
        self.last_utilization: float = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_passes: int = 100_000,
        availability: Optional[AvailabilityModel] = None,
        initial_ranks: Optional[np.ndarray] = None,
        keep_history: bool = True,
        on_pass: Optional[PassObserver] = None,
        fault_spec: Optional[FaultSpec] = None,
        fault_seed: int = 0,
        max_dead_passes: int = 50,
        delivery_policy: Optional[DeliveryPolicy] = None,
    ) -> RunReport:
        """Iterate to the strong convergence criterion or the budget.

        Faults are specified as a picklable :class:`FaultSpec` plus a
        ``fault_seed`` (not a live :class:`~repro.faults.plan.FaultPlan`)
        because every shard derives its own seeded stream: one shard
        replays the serial plan's exact sequence, several shards split
        the seed via ``SeedSequence.spawn``.  ``delivery_policy``
        prices cross-shard exchange hops on the static path (direct
        delivery — one hop per delta — when ``None``).
        """
        if max_dead_passes < 1:
            raise ValueError(
                f"max_dead_passes must be >= 1, got {max_dead_passes}"
            )
        n = self.graph.num_nodes
        tracker = ConvergenceTracker(self.epsilon, keep_history=keep_history)
        if n == 0:
            self.last_exchange = ExchangeStats(0, 0, 0)
            return tracker.finish(np.zeros(0), True)

        mode = "churn" if (availability is not None or fault_spec is not None) else "static"
        if mode == "churn" and availability is None:
            availability = _AllPresent(self.num_peers)
        cfg = RunConfig(
            num_docs=n,
            num_peers=max(self.num_peers, 1),
            shards=self.shards,
            workers=self.workers,
            damping=self.damping,
            epsilon=self.epsilon,
            max_passes=max_passes,
            mode=mode,
            max_dead_passes=max_dead_passes,
            fault_spec=fault_spec,
            fault_seed=fault_seed,
            availability=availability,
        )
        rank0 = self._initial_rank_vector(initial_ranks)
        backend = self.backend
        if backend == "auto":
            backend = "process" if self.workers > 1 else "in-process"

        obs = _ParallelInstruments(get_registry())
        sizes = np.diff(self.plan.row_offsets).astype(np.float64)
        obs.imbalance.set(float(sizes.max() / sizes.mean()) if sizes.mean() else 1.0)
        obs.workers.set(self.workers if backend == "process" else 1)

        if backend == "in-process":
            return self._run_in_process(
                cfg, rank0, tracker, obs, on_pass, delivery_policy
            )
        return self._run_process(
            cfg, rank0, tracker, obs, on_pass, delivery_policy
        )

    # ------------------------------------------------------------------
    # Shared parent-side bookkeeping
    # ------------------------------------------------------------------
    def _initial_rank_vector(self, initial_ranks: Optional[np.ndarray]) -> np.ndarray:
        n = self.graph.num_nodes
        if initial_ranks is None:
            return np.full(n, self.init_rank, dtype=np.float64)
        initial_ranks = np.asarray(initial_ranks, dtype=np.float64)
        if initial_ranks.shape != (n,):
            raise ValueError(
                f"initial_ranks must have shape ({n},), got {initial_ranks.shape}"
            )
        if np.any(initial_ranks <= 0):
            raise ValueError("initial_ranks must be strictly positive")
        return initial_ranks.copy()

    def _shared_specs(self, cfg: RunConfig) -> List[ArraySpec]:
        n = cfg.num_docs
        return [
            ("indptr", "int64", (n + 1,)),
            ("indices", "int64", (self._indices.size,)),
            ("assignment", "int64", (n,)),
            ("last_sent", "float64", (n,)),
            ("rank", "float64", (n,)),
            ("active", "bool", (n,)),
            ("published", "int64", (n,)),
            ("stats", "float64", (cfg.shards, N_STAT_COLS)),
        ]

    def _fresh_views(self, cfg: RunConfig, rank0: np.ndarray) -> Dict[str, np.ndarray]:
        n = cfg.num_docs
        return {
            "indptr": self._indptr,
            "indices": self._indices,
            "assignment": self.assignment,
            "last_sent": rank0.copy(),
            "rank": rank0.copy(),
            "active": np.zeros(n, dtype=bool),
            "published": np.zeros(n, dtype=np.int64),
            "stats": np.zeros((cfg.shards, N_STAT_COLS), dtype=np.float64),
        }

    def _price_static_exchange(
        self,
        policy: Optional[DeliveryPolicy],
        views: Dict[str, np.ndarray],
        stats: np.ndarray,
    ) -> int:
        """Hops of this pass's cross-shard exchange: direct delivery
        (one hop per delta) unless a policy prices the routing."""
        cut = int(stats[:, COL_CUT].sum())
        if policy is None:
            return cut
        plan = self.plan
        hops = 0
        for s in range(plan.shards):
            count = int(stats[s, COL_PUBLISHED])
            if not count:
                continue
            offset = int(plan.row_offsets[s])
            pub = np.asarray(views["published"][offset: offset + count])
            tpos, lens = expand_rows(self._indptr, pub)
            targets = self._indices[tpos]
            cut_targets = targets[
                plan.doc_shard[targets] != np.repeat(plan.doc_shard[pub], lens)
            ]
            if cut_targets.size:
                sender = int(np.flatnonzero(plan.peer_shard == s)[0])
                hops += int(policy.delivery_hops_batch(sender, cut_targets))
        return hops

    def _record_static(
        self,
        tracker: ConvergenceTracker,
        obs: _ParallelInstruments,
        stats: np.ndarray,
        t: int,
    ) -> None:
        obs.passes.inc()
        obs.compute.observe(float(stats[:, COL_COMPUTE_S].sum()))
        tracker.record(
            PassStats(
                pass_index=t,
                max_rel_change=float(stats[:, COL_MAX_CHANGE].max()),
                active_documents=int(stats[:, COL_ACTIVE].sum()),
                messages=int(stats[:, COL_MESSAGES].sum()),
                deferred_messages=0,
                live_peers=self.num_peers,
                computed_documents=self.graph.num_nodes,
            )
        )

    def _record_churn(
        self,
        tracker: ConvergenceTracker,
        obs: _ParallelInstruments,
        stats: np.ndarray,
        t: int,
        live_peers: int,
    ) -> None:
        obs.passes.inc()
        obs.compute.observe(float(stats[:, COL_COMPUTE_S].sum()))
        tracker.record(
            PassStats(
                pass_index=t,
                max_rel_change=float(stats[:, COL_MAX_CHANGE].max()),
                active_documents=int(stats[:, COL_ACTIVE].sum()),
                messages=int(stats[:, COL_MESSAGES].sum()),
                deferred_messages=int(stats[:, COL_DEFERRED].sum()),
                live_peers=live_peers,
                computed_documents=int(stats[:, COL_COMPUTED].sum()),
            )
        )

    def _finish(
        self,
        tracker: ConvergenceTracker,
        rank: np.ndarray,
        converged: bool,
        obs: _ParallelInstruments,
        exchange_messages: int,
        exchange_hops: int,
        compute_total: float,
        wall: float,
    ) -> RunReport:
        exchange = ExchangeStats(
            messages=exchange_messages,
            bytes_on_wire=exchange_messages * MESSAGE_SIZE_BYTES,
            hops=exchange_hops,
        )
        self.last_exchange = exchange
        denom = self.workers * wall
        self.last_utilization = compute_total / denom if denom > 0 else 0.0
        obs.exchange_messages.inc(exchange.messages)
        obs.exchange_bytes.inc(exchange.bytes_on_wire)
        obs.exchange_hops.inc(exchange.hops)
        obs.utilization.set(self.last_utilization)
        return tracker.finish(rank.copy(), converged)

    @staticmethod
    def _validate_live(live: np.ndarray, num_peers: int) -> np.ndarray:
        live = np.asarray(live, dtype=bool)
        if live.shape != (num_peers,):
            raise ValueError(
                f"availability.sample must return shape ({num_peers},), "
                f"got {live.shape}"
            )
        return live

    @staticmethod
    def _starvation_error(dead_streak: int, t: int) -> RuntimeError:
        return RuntimeError(
            f"no live peers for {dead_streak} consecutive "
            f"passes (pass {t}); the availability model "
            "starves the computation — raise availability "
            "or max_dead_passes"
        )

    # ------------------------------------------------------------------
    # In-process backend: the same per-shard code on one thread
    # ------------------------------------------------------------------
    def _run_in_process(
        self,
        cfg: RunConfig,
        rank0: np.ndarray,
        tracker: ConvergenceTracker,
        obs: _ParallelInstruments,
        on_pass: Optional[PassObserver],
        policy: Optional[DeliveryPolicy],
    ) -> RunReport:
        if policy is not None:
            policy.reset()
        views = self._fresh_views(cfg, rank0)
        state = build_worker_state(cfg, views)
        runners = [ShardRunner(state, s) for s in range(cfg.shards)]
        stats = views["stats"]
        rank = views["rank"]
        converged = False
        ex_messages = 0
        ex_hops = 0
        compute_total = 0.0
        t_start = perf_counter()
        if cfg.mode == "static":
            prev_published = 0
            for t in range(cfg.max_passes):
                dense = static_pass_is_dense(t, prev_published, cfg.num_docs)
                published_global = (
                    None if dense
                    else gather_published(views, state.plan, stats)
                )
                for runner in runners:
                    runner.static_compute(t, dense, published_global)
                for runner in runners:
                    runner.static_publish()
                prev_published = int(stats[:, COL_PUBLISHED].sum())
                ex_messages += int(stats[:, COL_CUT].sum())
                ex_hops += self._price_static_exchange(policy, views, stats)
                compute_total += float(stats[:, COL_COMPUTE_S].sum())
                if on_pass is not None:
                    on_pass(t, rank)
                self._record_static(tracker, obs, stats, t)
                if static_should_stop(stats):
                    converged = True
                    break
        else:
            availability = cfg.availability
            assert availability is not None
            dead_streak = 0
            for t in range(cfg.max_passes):
                live = self._validate_live(
                    availability.sample(t), cfg.num_peers
                )
                if not live.any():
                    dead_streak += 1
                    for runner in runners:
                        runner.churn_dead_pass(t)
                    self._record_churn(tracker, obs, stats, t, 0)
                    if dead_streak >= cfg.max_dead_passes:
                        raise self._starvation_error(dead_streak, t)
                    continue
                dead_streak = 0
                for runner in runners:
                    runner.churn_compute(t, live)
                for runner in runners:
                    runner.churn_publish()
                for runner in runners:
                    runner.churn_deliver(t, live)
                ex_messages += int(stats[:, COL_CUT].sum())
                ex_hops += int(stats[:, COL_CUT].sum())
                compute_total += float(stats[:, COL_COMPUTE_S].sum())
                if on_pass is not None:
                    on_pass(t, rank)
                self._record_churn(
                    tracker, obs, stats, t, int(live.sum())
                )
                if churn_should_stop(stats):
                    converged = True
                    break
        wall = perf_counter() - t_start
        return self._finish(
            tracker, rank, converged, obs,
            ex_messages, ex_hops, compute_total, wall,
        )

    # ------------------------------------------------------------------
    # Process backend: worker OS processes over the shared arena
    # ------------------------------------------------------------------
    def _run_process(
        self,
        cfg: RunConfig,
        rank0: np.ndarray,
        tracker: ConvergenceTracker,
        obs: _ParallelInstruments,
        on_pass: Optional[PassObserver],
        policy: Optional[DeliveryPolicy],
    ) -> RunReport:
        if policy is not None:
            policy.reset()
        start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)
        arena = SharedArena.create(self._shared_specs(cfg))
        procs: List[mp.process.BaseProcess] = []
        barrier_a = ctx.Barrier(cfg.workers + 1)
        barrier_b = ctx.Barrier(cfg.workers + 1)
        errors = ctx.Queue()
        try:
            arena.view("indptr")[:] = self._indptr
            arena.view("indices")[:] = self._indices
            arena.view("assignment")[:] = self.assignment
            arena.view("last_sent")[:] = rank0
            arena.view("rank")[:] = rank0
            arena.view("active")[:] = False
            arena.view("published")[:] = 0
            arena.view("stats")[:] = 0.0
            views = arena.views()
            stats = views["stats"]
            rank = views["rank"]
            for w in range(cfg.workers):
                proc = ctx.Process(
                    target=worker_main,
                    args=(
                        w, cfg, arena.name, arena.layout,
                        barrier_a, barrier_b, errors,
                        start_method == "spawn",
                    ),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)

            converged = False
            ex_messages = 0
            ex_hops = 0
            compute_total = 0.0
            t_start = perf_counter()
            try:
                if cfg.mode == "static":
                    for t in range(cfg.max_passes):
                        with obs.barrier_wait:
                            barrier_a.wait(BARRIER_TIMEOUT_S)
                            barrier_b.wait(BARRIER_TIMEOUT_S)
                        ex_messages += int(stats[:, COL_CUT].sum())
                        ex_hops += self._price_static_exchange(
                            policy, views, stats
                        )
                        compute_total += float(stats[:, COL_COMPUTE_S].sum())
                        if on_pass is not None:
                            on_pass(t, rank)
                        self._record_static(tracker, obs, stats, t)
                        if static_should_stop(stats):
                            converged = True
                            break
                else:
                    # Parent holds its own identically seeded copy of
                    # the availability model: under fork the workers'
                    # copies snapshot the same pre-run RNG state, under
                    # spawn they are pickled from it.
                    availability = cfg.availability
                    assert availability is not None
                    dead_streak = 0
                    for t in range(cfg.max_passes):
                        live = self._validate_live(
                            availability.sample(t), cfg.num_peers
                        )
                        if not live.any():
                            dead_streak += 1
                            with obs.barrier_wait:
                                barrier_a.wait(BARRIER_TIMEOUT_S)
                                barrier_b.wait(BARRIER_TIMEOUT_S)
                                barrier_a.wait(BARRIER_TIMEOUT_S)
                            self._record_churn(tracker, obs, stats, t, 0)
                            if dead_streak >= cfg.max_dead_passes:
                                raise self._starvation_error(dead_streak, t)
                            continue
                        dead_streak = 0
                        with obs.barrier_wait:
                            barrier_a.wait(BARRIER_TIMEOUT_S)
                            barrier_b.wait(BARRIER_TIMEOUT_S)
                            barrier_a.wait(BARRIER_TIMEOUT_S)
                        ex_messages += int(stats[:, COL_CUT].sum())
                        ex_hops += int(stats[:, COL_CUT].sum())
                        compute_total += float(stats[:, COL_COMPUTE_S].sum())
                        if on_pass is not None:
                            on_pass(t, rank)
                        self._record_churn(
                            tracker, obs, stats, t, int(live.sum())
                        )
                        if churn_should_stop(stats):
                            converged = True
                            break
            except threading.BrokenBarrierError:
                raise self._collect_worker_error(errors)
            finally:
                # Unblock any worker still parked on a barrier (e.g.
                # when the parent errored between waits), then reap.
                barrier_a.abort()
                barrier_b.abort()
            wall = perf_counter() - t_start
            rank_final = np.array(rank, copy=True)
            return self._finish(
                tracker, rank_final, converged, obs,
                ex_messages, ex_hops, compute_total, wall,
            )
        finally:
            for proc in procs:
                proc.join(timeout=30.0)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5.0)
            arena.close()
            arena.unlink()

    @staticmethod
    def _collect_worker_error(errors) -> RuntimeError:
        tracebacks = []
        try:
            while True:
                worker_id, text = errors.get_nowait()
                tracebacks.append(f"[worker {worker_id}]\n{text}")
        except Exception:
            pass
        detail = "\n".join(tracebacks) if tracebacks else "(no traceback reported)"
        return RuntimeError(f"parallel worker failed:\n{detail}")


def parallel_pagerank(
    graph: LinkGraph,
    assignment: Optional[np.ndarray] = None,
    *,
    num_peers: Optional[int] = None,
    workers: int = 1,
    shards: Optional[int] = None,
    damping: float = DEFAULT_DAMPING,
    epsilon: float = 1e-3,
    max_passes: int = 100_000,
    availability: Optional[AvailabilityModel] = None,
    fault_spec: Optional[FaultSpec] = None,
    fault_seed: int = 0,
    backend: str = "auto",
) -> RunReport:
    """One-call convenience wrapper around :class:`ParallelPagerank`."""
    engine = ParallelPagerank(
        graph,
        assignment,
        num_peers=num_peers,
        workers=workers,
        shards=shards,
        damping=damping,
        epsilon=epsilon,
        backend=backend,
    )
    return engine.run(
        max_passes=max_passes,
        availability=availability,
        fault_spec=fault_spec,
        fault_seed=fault_seed,
    )
