"""Per-shard pass execution shared by both parallel backends.

A :class:`ShardRunner` owns one shard's slice of the chaotic iteration
(§2.3): the sub-CSR view over the shard's documents, the per-edge
§3.1 store-and-resend state of the in-edges it is the receiver for,
and the seeded per-shard fault stream.  Every pass splits into two
phases separated by a barrier:

* **compute** — read the globally shared inputs (last-sent values on
  the static path; the shard-private delivered-value edge state on the
  churn path), recompute the shard's rows, and stage the results;
* **publish/deliver** — write the staged results into the shard's own
  disjoint regions of the shared arrays (static), or fold the other
  shards' freshly published values into the private edge state
  (churn), then write the shard's statistics row.

All cross-shard writes are to disjoint index ranges and all
cross-shard reads happen on the far side of a barrier from the writes
they observe, so the execution is race-free and — because each row's
in-edges are walked in the same ascending-source order as the serial
kernels and summed by the same sequential ``bincount`` — every value
is bit-identical to the serial engine's (docs/PERFORMANCE.md "Sharded
execution model").  The ``in-process`` backend drives these runners on
one thread; the ``process`` backend runs :func:`worker_main` in worker
OS processes over a :class:`repro.parallel.state.SharedArena`.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distributed import AvailabilityModel
from repro.core.kernels import (
    CSRWorkspace,
    ShardCSRView,
    expand_rows,
    relative_change,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.graphs.linkgraph import LinkGraph
from repro.parallel.control import (
    COL_ACTIVE,
    COL_COMPUTE_S,
    COL_COMPUTED,
    COL_CUT,
    COL_DEFERRED,
    COL_DIRTY,
    COL_DROPPED,
    COL_MAX_CHANGE,
    COL_MESSAGES,
    COL_PENDING,
    COL_PUBLISHED,
    COL_RESENT,
    N_STAT_COLS,
    churn_should_stop,
    static_pass_is_dense,
    static_should_stop,
)
from repro.parallel.plan import ShardPlan, build_shard_plan
from repro.parallel.state import PlacedSpec, SharedArena

__all__ = [
    "RunConfig",
    "WorkerState",
    "ShardRunner",
    "build_worker_state",
    "gather_published",
    "worker_main",
]

#: Parent/worker barrier rendezvous budget before declaring a hang.
BARRIER_TIMEOUT_S = 300.0


@dataclass(frozen=True)
class RunConfig:
    """Everything a worker process needs besides the shared arrays.

    Picklable by construction (spawn-safe): the availability model is
    an identically seeded *copy* in every party, so each draws the very
    same mask sequence without any coordination.
    """

    num_docs: int
    num_peers: int
    shards: int
    workers: int
    damping: float
    epsilon: float
    max_passes: int
    mode: str  # "static" | "churn"
    max_dead_passes: int = 50
    fault_spec: Optional[FaultSpec] = None
    fault_seed: int = 0
    availability: Optional[AvailabilityModel] = None


def _shard_fault_plans(cfg: RunConfig) -> List[Optional[FaultPlan]]:
    """Seeded per-shard fault streams.

    One shard keeps the raw seed so a ``shards=1`` run replays the
    serial engine's exact draw sequence; more shards split the stream
    via ``SeedSequence.spawn`` — deterministic per ``(seed, shards)``
    and independent of worker count.
    """
    if cfg.fault_spec is None:
        return [None] * cfg.shards
    if cfg.shards == 1:
        return [FaultPlan(cfg.fault_spec, seed=cfg.fault_seed)]
    children = np.random.SeedSequence(cfg.fault_seed).spawn(cfg.shards)
    return [
        FaultPlan(cfg.fault_spec, seed=children[s]) for s in range(cfg.shards)
    ]


@dataclass
class WorkerState:
    """Immutable-per-run context every shard runner of one party shares."""

    cfg: RunConfig
    plan: ShardPlan
    views: Dict[str, np.ndarray]
    workspace: CSRWorkspace
    indptr: np.ndarray
    indices: np.ndarray
    assignment: np.ndarray
    remote_outdeg: np.ndarray
    cut_outdeg: np.ndarray
    frontier_buf: np.ndarray
    fault_plans: List[Optional[FaultPlan]]


def build_worker_state(
    cfg: RunConfig, views: Dict[str, np.ndarray]
) -> WorkerState:
    """Derive the per-party context from the shared arrays.

    Every party runs this independently over the same bytes, so the
    derived structures (reverse CSR, shard plan, cross-peer and
    cross-shard out-degrees) are identical everywhere.
    """
    indptr = views["indptr"]
    indices = views["indices"]
    assignment = views["assignment"]
    graph = LinkGraph(indptr, indices, validate=False)
    ws = CSRWorkspace.from_graph(graph)
    plan = build_shard_plan(assignment, cfg.num_peers, cfg.shards)
    n = cfg.num_docs
    cross = assignment[ws.src] != assignment[ws.dst]
    remote_outdeg = np.bincount(ws.src[cross], minlength=n).astype(np.int64)
    cut = plan.doc_shard[ws.src] != plan.doc_shard[ws.dst]
    cut_outdeg = np.bincount(ws.src[cut], minlength=n).astype(np.int64)
    return WorkerState(
        cfg=cfg,
        plan=plan,
        views=views,
        workspace=ws,
        indptr=indptr,
        indices=indices,
        assignment=assignment,
        remote_outdeg=remote_outdeg,
        cut_outdeg=cut_outdeg,
        frontier_buf=np.empty(n, dtype=bool),
        fault_plans=_shard_fault_plans(cfg),
    )


def gather_published(
    views: Dict[str, np.ndarray], plan: ShardPlan, stats: np.ndarray
) -> np.ndarray:
    """Concatenate every shard's published-ids region (previous pass).

    Order across shards is irrelevant: the ids only ever feed a size
    check and a boolean frontier mask, both order-free.
    """
    published = views["published"]
    offsets = plan.row_offsets
    parts = [
        published[offsets[s]: offsets[s] + int(stats[s, COL_PUBLISHED])]
        for s in range(plan.shards)
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


class ShardRunner:
    """One shard's compute/publish state machine (see module docstring)."""

    def __init__(self, state: WorkerState, shard: int) -> None:
        cfg = state.cfg
        self.state = state
        self.shard = shard
        self.damping = cfg.damping
        self.epsilon = cfg.epsilon
        self.fault_plan = state.fault_plans[shard]
        plan = state.plan
        self.rows: np.ndarray = plan.rows[shard]
        self.offset = int(plan.row_offsets[shard])
        self.view = ShardCSRView.from_workspace(state.workspace, self.rows)
        self.row_peer = state.assignment[self.rows]
        k = self.rows.size
        self._vals_buf = np.empty(k, dtype=np.float64)
        self._err_buf = np.empty(k, dtype=np.float64)
        self.compute_seconds = 0.0
        # Staged compute-phase results (written in the publish phase).
        self._stage_rows: np.ndarray = self.rows
        self._stage_vals: np.ndarray = self._vals_buf
        self._stage_act: np.ndarray = np.empty(0, dtype=bool)
        self._stage_max_change = 0.0
        if cfg.mode == "churn":
            self._init_churn_state()

    # ------------------------------------------------------------------
    # Static path (no churn, no faults)
    # ------------------------------------------------------------------
    def static_compute(
        self, t: int, dense: bool, published_global: Optional[np.ndarray]
    ) -> None:
        """Recompute this shard's (frontier) rows from the shared
        last-sent values; stage results for :meth:`static_publish`."""
        t0 = perf_counter()
        st = self.state
        last_sent = st.views["last_sent"]
        rank = st.views["rank"]
        if dense:
            rows_g = self.rows
            vals = self.view.pull(last_sent, self.damping, out=self._vals_buf)
        else:
            assert published_global is not None
            # Global frontier: out-targets of every shard's publishers;
            # this shard recomputes the intersection with its own rows.
            frontier = st.frontier_buf
            frontier[:] = False
            tpos, _ = expand_rows(st.indptr, published_global)
            if tpos.size:
                frontier[st.indices[tpos]] = True
            local = np.flatnonzero(frontier[self.rows])
            rows_g = self.rows[local]
            row_edges = self.view.row_edges(local)
            # Same density heuristic as the serial engine, applied at
            # shard scope — either branch computes identical bits, so
            # the choice never shows in any result.
            if 5 * row_edges >= 2 * self.view.num_edges:
                all_vals = self.view.pull(
                    last_sent, self.damping, out=self._vals_buf
                )
                vals = all_vals[local]
            else:
                vals = self.view.pull_rows(last_sent, self.damping, local)
        old = rank[rows_g]
        err = relative_change(old, vals)
        act = err > self.epsilon
        self._stage_rows = rows_g
        self._stage_vals = vals
        self._stage_act = act
        self._stage_max_change = float(err.max()) if err.size else 0.0
        self.compute_seconds = perf_counter() - t0

    def static_publish(self) -> None:
        """Write staged values into this shard's disjoint regions of
        the shared arrays, plus the statistics row."""
        t0 = perf_counter()
        st = self.state
        rows_g = self._stage_rows
        vals = self._stage_vals
        act = self._stage_act
        published = rows_g[act]
        if published.size:
            st.views["last_sent"][published] = vals[act]
        if rows_g.size:
            st.views["rank"][rows_g] = vals
        region = st.views["published"]
        region[self.offset: self.offset + published.size] = published
        row = st.views["stats"][self.shard]
        row[:] = 0.0
        row[COL_ACTIVE] = published.size
        row[COL_MESSAGES] = int(st.remote_outdeg[published].sum())
        row[COL_MAX_CHANGE] = self._stage_max_change
        row[COL_COMPUTED] = rows_g.size
        row[COL_PUBLISHED] = published.size
        row[COL_CUT] = int(st.cut_outdeg[published].sum())
        row[COL_COMPUTE_S] = self.compute_seconds + (perf_counter() - t0)

    # ------------------------------------------------------------------
    # Churn path (availability and/or injected loss, §3.1)
    # ------------------------------------------------------------------
    def _init_churn_state(self) -> None:
        st = self.state
        ws = st.workspace
        sel = np.flatnonzero(st.plan.doc_shard[ws.dst] == self.shard)
        # Forward-order edge subset received by this shard: within any
        # one target row the edges keep their global ascending-source
        # order, which is what makes the per-row bincount bit-identical
        # to the serial engine's whole-graph pull_edges.
        self.esrc = ws.src[sel]
        self.eweight = ws.edge_weight[sel].copy()
        self.elocal_dst = np.searchsorted(self.rows, ws.dst[sel])
        self.esrc_peer = st.assignment[self.esrc]
        self.ecross = self.esrc_peer != self.row_peer[self.elocal_dst]
        self.ecut = st.plan.doc_shard[self.esrc] != self.shard
        rank = st.views["rank"]
        self.delivered = rank[self.esrc].copy()
        self.pending = np.zeros(sel.size, dtype=bool)
        self.pending_val = np.zeros(sel.size, dtype=np.float64)
        self.dirty = np.zeros(self.rows.size, dtype=bool)
        self._contrib = np.empty(sel.size, dtype=np.float64)
        self._n_resent = 0
        self._n_dropped = 0
        self._n_active = 0
        self._n_computed = 0

    def churn_compute(self, t: int, live_peer: np.ndarray) -> None:
        """Resend + recompute phase, all private state: fold §3.1
        stored updates whose endpoints returned and pull this shard's
        rows from the per-edge delivered values.  Writes nothing shared
        — the parent may still be reading the previous pass's results —
        results are staged for :meth:`churn_publish`."""
        t0 = perf_counter()
        st = self.state
        rank = st.views["rank"]
        live_rows = live_peer[self.row_peer]
        src_live = live_peer[self.esrc_peer]
        dst_live = live_rows[self.elocal_dst]

        # 1) Store-and-resend over the same lossy links (serial order:
        #    resend draws come before this pass's send draws).
        resend = self.pending & src_live & dst_live
        self._n_dropped = 0
        if self.fault_plan is not None and resend.any():
            cand = np.flatnonzero(resend)
            kept = self.fault_plan.edge_delivery_mask(t, cand.size)
            if not kept.all():
                resend[cand[~kept]] = False
                self._n_dropped += int((~kept).sum())
        self._n_resent = int(resend.sum())
        if self._n_resent:
            self.delivered[resend] = self.pending_val[resend]
            self.pending[resend] = False
            self.dirty[self.elocal_dst[resend]] = True

        # 2) Live rows recompute from their delivered in-edge values.
        k = self.rows.size
        np.multiply(self.delivered, self.eweight, out=self._contrib)
        acc = np.bincount(
            self.elocal_dst, weights=self._contrib, minlength=k
        )
        new = np.multiply(acc, self.damping, out=self._vals_buf)
        new += 1.0 - self.damping
        old = rank[self.rows]
        np.copyto(new, old, where=~live_rows)
        err = relative_change(old, new, out=self._err_buf)
        err[~live_rows] = 0.0
        self.dirty[live_rows] = False
        act = live_rows & (err > self.epsilon)

        self._stage_vals = new
        self._stage_act = act
        self._stage_max_change = float(err.max()) if k else 0.0
        self._n_active = int(act.sum())
        self._n_computed = int(live_rows.sum())
        self._dst_live = dst_live
        self.compute_seconds = perf_counter() - t0

    def churn_publish(self) -> None:
        """Write the staged ranks and activity flags for this shard's
        own rows (disjoint regions); every shard reads the full arrays
        only in the delivery phase, on the far side of the barrier."""
        t0 = perf_counter()
        st = self.state
        if self.rows.size:
            st.views["rank"][self.rows] = self._stage_vals
            st.views["active"][self.rows] = self._stage_act
        self.compute_seconds += perf_counter() - t0

    def churn_deliver(self, t: int, live_peer: np.ndarray) -> None:
        """Delivery phase: read every shard's freshly published ranks
        and activity, update the private per-edge state (deliver /
        defer / lose-and-park), and write the statistics row."""
        t0 = perf_counter()
        st = self.state
        rank = st.views["rank"]
        active_sh = st.views["active"]
        send_edge = active_sh[self.esrc]
        dst_live = self._dst_live
        deliver = send_edge & dst_live
        defer = send_edge & ~dst_live

        if self.fault_plan is not None:
            lossy = np.flatnonzero(deliver & self.ecross)
            if lossy.size:
                kept = self.fault_plan.edge_delivery_mask(t, lossy.size)
                if not kept.all():
                    lost = lossy[~kept]
                    deliver[lost] = False
                    self.pending_val[lost] = rank[self.esrc[lost]]
                    self.pending[lost] = True
                    self._n_dropped += lost.size
            self.pending[deliver] = False

        if deliver.any():
            self.delivered[deliver] = rank[self.esrc[deliver]]
            self.dirty[self.elocal_dst[deliver]] = True
        if defer.any():
            self.pending_val[defer] = rank[self.esrc[defer]]
            self.pending[defer] = True

        messages = int((deliver & self.ecross).sum()) + self._n_resent
        row = st.views["stats"][self.shard]
        row[:] = 0.0
        row[COL_ACTIVE] = self._n_active
        row[COL_MESSAGES] = messages
        row[COL_MAX_CHANGE] = self._stage_max_change
        row[COL_COMPUTED] = self._n_computed
        row[COL_DEFERRED] = int(defer.sum())
        row[COL_RESENT] = self._n_resent
        row[COL_DROPPED] = self._n_dropped
        row[COL_PENDING] = 1.0 if self.pending.any() else 0.0
        row[COL_DIRTY] = 1.0 if self.dirty.any() else 0.0
        row[COL_CUT] = int((deliver & self.ecut).sum())
        row[COL_COMPUTE_S] = self.compute_seconds + (perf_counter() - t0)

    def churn_dead_pass(self, t: int) -> None:
        """All peers down: nothing recomputes; report the parked-update
        backlog so the pass record matches the serial engine's."""
        row = self.state.views["stats"][self.shard]
        row[:] = 0.0
        row[COL_DEFERRED] = int(self.pending.sum())
        row[COL_PENDING] = 1.0 if self.pending.any() else 0.0
        row[COL_DIRTY] = 1.0 if self.dirty.any() else 0.0


# ----------------------------------------------------------------------
# Worker process body (the "process" backend)
# ----------------------------------------------------------------------
def _loop_static(
    runners: Sequence[ShardRunner],
    state: WorkerState,
    barrier_a,
    barrier_b,
) -> None:
    cfg = state.cfg
    stats = state.views["stats"]
    n = cfg.num_docs
    prev_published = 0
    for t in range(cfg.max_passes):
        dense = static_pass_is_dense(t, prev_published, n)
        published_global = (
            None if dense else gather_published(state.views, state.plan, stats)
        )
        for runner in runners:
            runner.static_compute(t, dense, published_global)
        barrier_a.wait(BARRIER_TIMEOUT_S)
        for runner in runners:
            runner.static_publish()
        barrier_b.wait(BARRIER_TIMEOUT_S)
        prev_published = int(stats[:, COL_PUBLISHED].sum())
        if static_should_stop(stats):
            break


def _loop_churn(
    runners: Sequence[ShardRunner],
    state: WorkerState,
    barrier_a,
    barrier_b,
) -> None:
    cfg = state.cfg
    stats = state.views["stats"]
    availability = cfg.availability
    assert availability is not None
    # Three rendezvous per churn pass (A, B, A again — barriers reset
    # once every party passes, so reuse is safe as long as every party
    # performs the identical wait sequence):
    #   private compute -> A -> publish own rank/active -> B ->
    #   deliver + stats -> A -> (parent records; stop decision)
    # The extra rendezvous keeps the parent's read window (between the
    # last wait and the next pass's first wait) free of shared writes.
    dead_streak = 0
    for t in range(cfg.max_passes):
        live_peer = np.asarray(availability.sample(t), dtype=bool)
        if not live_peer.any():
            dead_streak += 1
            barrier_a.wait(BARRIER_TIMEOUT_S)
            barrier_b.wait(BARRIER_TIMEOUT_S)
            for runner in runners:
                runner.churn_dead_pass(t)
            barrier_a.wait(BARRIER_TIMEOUT_S)
            if dead_streak >= cfg.max_dead_passes:
                # Every party detects the same starvation at the same
                # pass; the parent raises, workers just stand down.
                break
            continue
        dead_streak = 0
        for runner in runners:
            runner.churn_compute(t, live_peer)
        barrier_a.wait(BARRIER_TIMEOUT_S)
        for runner in runners:
            runner.churn_publish()
        barrier_b.wait(BARRIER_TIMEOUT_S)
        for runner in runners:
            runner.churn_deliver(t, live_peer)
        barrier_a.wait(BARRIER_TIMEOUT_S)
        if churn_should_stop(stats):
            break


def worker_main(
    worker_id: int,
    cfg: RunConfig,
    shm_name: str,
    layout: List[PlacedSpec],
    barrier_a,
    barrier_b,
    errors,
    untrack_shm: bool = False,
) -> None:
    """Worker process entry point (top-level so ``spawn`` can pickle it).

    Attaches the shared arena by name, rebuilds the identical derived
    context every party holds, and runs the pass loop for this worker's
    round-robin shard set.  Any failure is reported through ``errors``
    and both barriers are aborted so no party deadlocks.
    """
    import threading

    arena = SharedArena.attach(shm_name, layout, untrack=untrack_shm)
    try:
        state = build_worker_state(cfg, arena.views())
        runners = [
            ShardRunner(state, s)
            for s in state.plan.shards_of_worker(worker_id, cfg.workers)
        ]
        if cfg.mode == "static":
            _loop_static(runners, state, barrier_a, barrier_b)
        else:
            _loop_churn(runners, state, barrier_a, barrier_b)
    except threading.BrokenBarrierError:  # pragma: no cover - peer failed
        pass
    except Exception:  # pragma: no cover - exercised via machinery tests
        errors.put((worker_id, traceback.format_exc()))
        barrier_a.abort()
        barrier_b.abort()
    finally:
        arena.close()
