"""Replicated control decisions of the sharded engine's pass protocol.

Every party of a parallel run — the parent and each worker process —
takes the per-pass mode and stop decisions *independently* from the
same inputs: the per-shard statistics matrix all shards publish before
the pass barrier (§2.3 step 3's "has my neighbourhood quiesced?"
check, taken here at shard granularity).  Because the functions are
pure and the inputs are identical bytes, every party always agrees —
no control messages, no coordinator, no race.  The column constants
index the shared ``stats`` matrix (one row per shard, float64; counts
are exact up to 2^53).  See docs/PERFORMANCE.md "Sharded execution
model" for the protocol walk-through.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "COL_ACTIVE",
    "COL_MESSAGES",
    "COL_MAX_CHANGE",
    "COL_COMPUTED",
    "COL_PUBLISHED",
    "COL_DEFERRED",
    "COL_RESENT",
    "COL_DROPPED",
    "COL_PENDING",
    "COL_DIRTY",
    "COL_CUT",
    "COL_COMPUTE_S",
    "N_STAT_COLS",
    "static_pass_is_dense",
    "static_should_stop",
    "churn_should_stop",
]

COL_ACTIVE = 0      #: documents above epsilon this pass
COL_MESSAGES = 1    #: cross-peer update messages (Table 3 accounting)
COL_MAX_CHANGE = 2  #: max per-document relative change in the shard
COL_COMPUTED = 3    #: documents recomputed (live documents, churn path)
COL_PUBLISHED = 4   #: entries the shard wrote to its published region
COL_DEFERRED = 5    #: updates stored for absent receivers (§3.1)
COL_RESENT = 6      #: store-and-resend deliveries completed
COL_DROPPED = 7     #: deliveries lost to injected faults
COL_PENDING = 8     #: 1.0 if any edge still holds a parked update
COL_DIRTY = 9       #: 1.0 if any document has an unfolded delivery
COL_CUT = 10        #: published-row out-edges crossing a shard boundary
COL_COMPUTE_S = 11  #: shard compute seconds this pass (metrics only)
N_STAT_COLS = 12


def static_pass_is_dense(
    pass_index: int, prev_published_total: int, num_docs: int
) -> bool:
    """Whether pass ``pass_index`` recomputes every document.

    The same gate the serial engine applies: the first pass is always
    dense, and later passes fall back to dense while the previous
    pass's publisher set would make the selective frontier cover most
    of the graph.  Identical inputs at every party → identical choice.
    """
    return pass_index == 0 or 4 * prev_published_total > num_docs


def static_should_stop(stats: np.ndarray) -> bool:
    """Strong convergence on the static path: no document anywhere
    crossed epsilon this pass."""
    return int(stats[:, COL_ACTIVE].sum()) == 0


def churn_should_stop(stats: np.ndarray) -> bool:
    """Strong convergence on the churn path: nothing active, nothing
    parked for an absent peer, nothing delivered-but-not-recomputed."""
    return (
        int(stats[:, COL_ACTIVE].sum()) == 0
        and int(stats[:, COL_PENDING].sum()) == 0
        and int(stats[:, COL_DIRTY].sum()) == 0
    )
