"""Multi-process sharded execution of the chaotic iteration.

The package runs the paper's per-peer concurrency (§2.3) on real OS
processes: peers are partitioned into shards, the link graph's CSR and
the live rank state live in one :mod:`multiprocessing.shared_memory`
arena every worker maps zero-copy, and passes proceed in barrier-
separated compute/publish phases whose cross-shard exchange is priced
like the paper's 24-byte update messages (§4.6.1).  The engine is
deterministic by construction: results depend on the shard count,
never the worker count, and a one-shard run is bit-identical to the
serial :class:`~repro.core.distributed.ChaoticPagerank` — see
docs/PERFORMANCE.md "Sharded execution model".
"""

from repro.parallel.engine import (
    ExchangeStats,
    ParallelPagerank,
    parallel_pagerank,
)
from repro.parallel.plan import ShardPlan, build_shard_plan
from repro.parallel.state import SharedArena, plan_layout

__all__ = [
    "ParallelPagerank",
    "parallel_pagerank",
    "ExchangeStats",
    "ShardPlan",
    "build_shard_plan",
    "SharedArena",
    "plan_layout",
]
