"""Deterministic peer-to-shard partitioning for the parallel engine.

The sharded engine (§2.3 run on real OS processes, docs/PERFORMANCE.md
"Sharded execution model") splits the peer population into ``shards``
contiguous blocks and derives the document partition through the
placement assignment, so every document of one peer lands in one shard
— exactly the paper's unit of concurrency.  The partition is a pure
function of ``(num_peers, shards)``: no RNG, no hashing, no dependence
on worker count — which is what lets a run's results be reproduced
bit-for-bit at any worker count (shards, not workers, are the unit the
deterministic per-shard RNG streams key on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ShardPlan", "build_shard_plan"]


@dataclass(frozen=True)
class ShardPlan:
    """The immutable partition a parallel run executes under.

    Attributes
    ----------
    num_docs:
        Documents in the graph.
    num_peers:
        Peer population.
    shards:
        Number of shards (``1 <= shards <= num_peers``).
    peer_shard:
        Shard of every peer (length ``num_peers``); contiguous blocks
        ``peer_shard[p] = p * shards // num_peers``.
    doc_shard:
        Shard of every document — ``peer_shard[assignment]``.
    rows:
        Per-shard sorted document ids (ascending; disjoint; their union
        covers every document).
    row_offsets:
        Exclusive prefix sums of per-shard row counts (length
        ``shards + 1``) — the per-shard regions of the shared
        published-ids array.
    """

    num_docs: int
    num_peers: int
    shards: int
    peer_shard: np.ndarray
    doc_shard: np.ndarray
    rows: Tuple[np.ndarray, ...]
    row_offsets: np.ndarray

    def shards_of_worker(self, worker: int, workers: int) -> Tuple[int, ...]:
        """Shards executed by ``worker`` (round-robin, ascending), so a
        fixed shard count gives identical results at any worker count."""
        return tuple(range(worker, self.shards, workers))


def build_shard_plan(
    assignment: np.ndarray, num_peers: int, shards: int
) -> ShardPlan:
    """Partition peers into ``shards`` contiguous blocks and project the
    partition onto documents through ``assignment``.

    Deterministic and RNG-free; every party of a parallel run (parent
    and workers) rebuilds the identical plan from the same inputs.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if num_peers < 1:
        raise ValueError(f"num_peers must be >= 1, got {num_peers}")
    if not 1 <= shards <= num_peers:
        raise ValueError(
            f"shards must be in [1, num_peers={num_peers}], got {shards}"
        )
    peer_shard = (np.arange(num_peers, dtype=np.int64) * shards) // num_peers
    doc_shard = peer_shard[assignment]
    rows = tuple(
        np.flatnonzero(doc_shard == s).astype(np.int64)
        for s in range(shards)
    )
    row_offsets = np.zeros(shards + 1, dtype=np.int64)
    np.cumsum([r.size for r in rows], out=row_offsets[1:])
    return ShardPlan(
        num_docs=int(assignment.size),
        num_peers=int(num_peers),
        shards=int(shards),
        peer_shard=peer_shard,
        doc_shard=doc_shard,
        rows=rows,
        row_offsets=row_offsets,
    )
