"""Simulation engines and cost models (paper §4.2, §4.6).

* :class:`~repro.simulation.engine.P2PPagerankSimulation` — the
  protocol-level pass simulator on explicit peer state machines;
* :class:`~repro.simulation.events.AsyncEventSimulation` — the
  discrete-event, true-chaotic-iteration simulator (the §6 future-work
  deployment model);
* :mod:`~repro.simulation.timing` — Eq. 4 execution-time estimation
  and the §4.6.2 Internet-scale extrapolation.
"""

from repro.simulation.engine import P2PPagerankSimulation, TrafficSummary
from repro.simulation.events import (
    AsyncEventSimulation,
    AsyncReport,
    ExponentialLatency,
    FixedLatency,
    OnOffSchedule,
    UniformLatency,
)
from repro.simulation.timing import (
    RATE_32KBPS,
    RATE_200KBPS,
    RATE_T3,
    TransferModel,
    internet_scale_estimate,
    pass_time_parallel,
    total_time_serialized,
)

__all__ = [
    "P2PPagerankSimulation",
    "TrafficSummary",
    "AsyncEventSimulation",
    "AsyncReport",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "OnOffSchedule",
    "TransferModel",
    "RATE_32KBPS",
    "RATE_200KBPS",
    "RATE_T3",
    "total_time_serialized",
    "pass_time_parallel",
    "internet_scale_estimate",
]
