"""Protocol-level pass simulator on the real P2P substrate.

Where :class:`repro.core.distributed.ChaoticPagerank` is the vectorized
array engine, :class:`P2PPagerankSimulation` runs the *actual
protocol*: :class:`~repro.p2p.peer.Peer` state machines exchanging
:class:`~repro.p2p.messages.PagerankUpdate` objects in per-destination
batches, with §3.1 store-and-resend for absent peers and an optional
§3.2 delivery policy pricing DHT routing hops.

It is deliberately per-message Python — the readable reference the
integration suite cross-validates against the fast engine (identical
ranks, identical message counts, identical pass counts), exercised at
test scale.  Use the vectorized engine for anything large.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro._util import check_positive, check_threshold
from repro.core.convergence import ConvergenceTracker, PassStats, RunReport
from repro.core.distributed import AvailabilityModel
from repro.core.kernels import expand_rows
from repro.core.pagerank import DEFAULT_DAMPING
from repro.faults.plan import FaultPlan
from repro.faults.transport import (
    ReliabilityConfig,
    ReliableTransport,
    StagnationDetector,
)
from repro.graphs.linkgraph import LinkGraph
from repro.obs import get_registry, get_trace_sink
from repro.p2p.messages import MESSAGE_SIZE_BYTES, MessageBatch
from repro.p2p.network import P2PNetwork
from repro.p2p.peer import Peer
from repro.p2p.routing import DeliveryPolicy

__all__ = ["P2PPagerankSimulation", "TrafficSummary"]


@dataclass
class TrafficSummary:
    """Aggregate traffic accounting of one protocol-level run.

    Attributes
    ----------
    update_messages:
        Pagerank update messages delivered (cross-peer only).
    resent_messages:
        Of those, deliveries that had been stored for absent peers.
    network_batches:
        (sender, receiver) batch transfers — the unit the §4.6.1
        transfer model serialises.
    routing_hops:
        Total hops charged by the delivery policy (0 with the default
        oracle policy; > messages in Freenet/routed mode).
    bytes_transferred:
        ``update_messages × 24`` under the paper's message sizing.
    migrations:
        Documents moved by §3.1 re-homing (0 unless ``rehoming_after``
        is enabled).
    """

    update_messages: int = 0
    resent_messages: int = 0
    network_batches: int = 0
    routing_hops: int = 0
    bytes_transferred: int = 0
    migrations: int = 0


class _SimInstruments:
    """Registry handles for the protocol simulator's per-pass emissions
    (shared no-op singletons under the default disabled registry).
    Names are documented in docs/OBSERVABILITY.md."""

    __slots__ = (
        "passes",
        "delivered",
        "resent",
        "batches",
        "bytes",
        "hops",
        "migrations",
        "store_depth",
        "residual",
        "live_peers",
        "dead_passes",
        "pass_timer",
    )

    def __init__(self, reg) -> None:
        self.passes = reg.counter(
            "sim.passes", unit="passes",
            description="protocol-simulator passes executed",
        )
        self.delivered = reg.counter(
            "sim.messages_delivered", unit="messages",
            description="cross-peer update messages delivered (Table 3)",
        )
        self.resent = reg.counter(
            "sim.messages_resent", unit="messages",
            description="deliveries that had been stored for absent peers",
        )
        self.batches = reg.counter(
            "sim.network_batches", unit="batches",
            description="(sender, receiver) batch transfers (section 4.6.1 unit)",
        )
        self.bytes = reg.counter(
            "sim.bytes_transferred", unit="bytes",
            description="wire bytes under the paper's 24-byte message model",
        )
        self.hops = reg.counter(
            "sim.routing_hops", unit="hops",
            description="hops charged by the delivery policy (section 3.2)",
        )
        self.migrations = reg.counter(
            "sim.migrations", unit="documents",
            description="documents moved by section 3.1 re-homing",
        )
        self.store_depth = reg.histogram(
            "sim.store_depth", unit="messages",
            description="stored (undeliverable) updates outstanding per pass",
        )
        self.residual = reg.gauge(
            "sim.residual", unit="rel. change",
            description="max per-document relative change of the latest pass",
        )
        self.live_peers = reg.gauge(
            "sim.live_peers", unit="peers",
            description="peers present during the latest pass",
        )
        self.dead_passes = reg.counter(
            "sim.dead_passes", unit="passes",
            description="passes skipped because zero peers were live",
        )
        self.pass_timer = reg.timer(
            "sim.pass_seconds",
            description="wall-clock seconds per protocol-simulator pass",
        )


class P2PPagerankSimulation:
    """Distributed pagerank over explicit peer state machines.

    Parameters
    ----------
    graph:
        The document link graph.
    network:
        A :class:`~repro.p2p.network.P2PNetwork` with a placement
        attached (who stores which document).
    damping, epsilon, init_rank:
        Algorithm parameters, as in the vectorized engine.
    delivery_policy:
        Optional :class:`~repro.p2p.routing.DeliveryPolicy` pricing
        the hops of each delivered update (defaults to none — hop
        accounting off; message counts are policy-independent).
    rehoming_after:
        Optional §3.1 liveness fix: when a peer has been absent for
        this many *consecutive* passes, the DHT re-homes its documents
        (state and all) to each document's first live successor, and
        they migrate back when the peer returns.  Without it, two peers
        that are never simultaneously present can deadlock the
        store-and-resend protocol (see docs/PROTOCOL.md §6).  Requires
        the network's Chord ring.
    faults:
        Optional seeded :class:`~repro.faults.plan.FaultPlan`.  When
        given, every batch transfer goes through the reliable-delivery
        transport (acks, timeout + exponential-backoff retries,
        duplicate suppression — docs/PROTOCOL.md §13) and the plan
        injects drops, duplicates, delays, crashes and partitions.
        ``None`` (default) keeps the pre-fault lossless code path
        byte-for-byte.
    reliability:
        Ack/retry/backoff parameters for the reliable transport;
        defaults to :class:`~repro.faults.transport.ReliabilityConfig`
        when ``faults`` is given.  Only meaningful with ``faults``.
    stagnation_window:
        Consecutive quiescent-but-undeliverable passes after which a
        faulted run aborts with a :class:`~repro.faults.transport.
        FaultDiagnostics` report instead of spinning to the pass cap.
    """

    def __init__(
        self,
        graph: LinkGraph,
        network: P2PNetwork,
        *,
        damping: float = DEFAULT_DAMPING,
        epsilon: float = 1e-3,
        init_rank: float = 1.0,
        delivery_policy: Optional[DeliveryPolicy] = None,
        rehoming_after: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        stagnation_window: int = 25,
    ) -> None:
        check_threshold("damping", damping)
        check_threshold("epsilon", epsilon)
        check_positive("init_rank", init_rank)
        if network.placement is None:
            raise ValueError("network must have a document placement attached")
        if network.placement.num_docs != graph.num_nodes:
            raise ValueError(
                f"placement covers {network.placement.num_docs} documents, "
                f"graph has {graph.num_nodes}"
            )
        self.graph = graph
        self.network = network
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.init_rank = float(init_rank)
        self.delivery_policy = delivery_policy
        if rehoming_after is not None:
            if rehoming_after < 1:
                raise ValueError(
                    f"rehoming_after must be >= 1, got {rehoming_after}"
                )
            if network.ring is None:
                raise ValueError("rehoming requires the network's Chord ring")
        self.rehoming_after = rehoming_after
        if reliability is not None and faults is None:
            raise ValueError("reliability config requires a fault plan")
        if faults is not None and rehoming_after is not None:
            raise ValueError(
                "fault injection and re-homing are mutually exclusive "
                "(the reliable transport subsumes store-and-resend)"
            )
        if stagnation_window < 1:
            raise ValueError(
                f"stagnation_window must be >= 1, got {stagnation_window}"
            )
        self.faults = faults
        self.reliability = (
            reliability
            if reliability is not None
            else (ReliabilityConfig() if faults is not None else None)
        )
        self.stagnation_window = int(stagnation_window)
        #: The reliable transport of the latest faulted run (exposes
        #: :class:`~repro.faults.transport.FaultStats`); ``None`` until
        #: a faulted ``run()`` starts.
        self.transport: Optional[ReliableTransport] = None
        self.traffic = TrafficSummary()

        docs_by_peer = network.placement.docs_by_peer()
        self.peers: List[Peer] = [
            Peer(pid, docs_by_peer[pid], graph, init_rank=init_rank)
            for pid in range(network.num_peers)
        ]
        # Ownership is mutable under re-homing; keep our own copy plus
        # the original "home" placement documents return to.
        self._peer_of = network.placement.assignment.copy()
        self._home_peer = network.placement.assignment.copy()
        self._absence = np.zeros(network.num_peers, dtype=np.int64)
        # Documents that received an update not yet folded into a
        # recompute (absent owners); blocks premature convergence.
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        max_passes: int = 10_000,
        availability: Optional[AvailabilityModel] = None,
        keep_history: bool = True,
        max_dead_passes: int = 50,
    ) -> RunReport:
        """Run passes until the strong convergence criterion.

        Semantics mirror the vectorized engine exactly: (1) stored
        updates whose sender and receiver are both present are
        delivered, (2) every present peer recomputes all its documents
        from previously received values, (3) freshly staged updates are
        delivered to present receivers and stored for absent ones.

        With a fault plan attached, steps (1) and (3) instead go
        through the reliable transport: (1) becomes delayed-copy
        delivery plus ack-timeout retransmission, (3) submits each
        batch as a new flight, and a run that goes quiescent while
        undeliverable updates remain aborts with a
        :class:`~repro.faults.transport.FaultDiagnostics` report on the
        returned :class:`~repro.core.convergence.RunReport`.

        A pass whose availability sample has *zero* live peers is
        skipped (counted, never evaluated for convergence);
        ``max_dead_passes`` consecutive dead passes raise a
        ``RuntimeError`` rather than silently stalling to the cap.
        """
        if max_passes < 1:
            raise ValueError(f"max_passes must be >= 1, got {max_passes}")
        if max_dead_passes < 1:
            raise ValueError(
                f"max_dead_passes must be >= 1, got {max_dead_passes}"
            )
        tracker = ConvergenceTracker(self.epsilon, keep_history=keep_history)
        num_peers = self.network.num_peers

        reg = get_registry()
        sink = get_trace_sink()
        obs = _SimInstruments(reg)
        faulted = self.faults is not None
        transport: Optional[ReliableTransport] = None
        detector: Optional[StagnationDetector] = None
        crash_down = None
        if faulted:
            transport = ReliableTransport(
                self.faults, self.reliability, self._fault_deliver, registry=reg
            )
            self.transport = transport
            detector = StagnationDetector(self.stagnation_window)
            crash_down = np.zeros(num_peers, dtype=np.int64)
            needs_republish: Set[int] = set()
        converged = False
        diagnostics = None
        dead_streak = 0
        with sink.span(
            "sim.run", documents=self.graph.num_nodes, peers=num_peers,
            epsilon=self.epsilon,
        ):
            for t in range(max_passes):
                if availability is None:
                    live = np.ones(num_peers, dtype=bool)
                else:
                    live = np.asarray(availability.sample(t), dtype=bool)
                    if live.shape != (num_peers,):
                        raise ValueError(
                            f"availability.sample must return shape ({num_peers},)"
                        )
                if faulted:
                    # Crash-with-state-loss: wipe volatile queues and the
                    # retransmit buffer; the peer reboots after a spell.
                    for p in self.faults.crashes_at(t):
                        lost = self.peers[p].crash_volatile()
                        lost += transport.wipe_sender(p)
                        transport.note_crash(p, lost)
                        crash_down[p] = self.faults.down_passes_for(t, p)
                        needs_republish.add(p)
                    if crash_down.any():
                        live = live & (crash_down <= 0)
                        np.subtract(
                            crash_down, 1, out=crash_down, where=crash_down > 0
                        )
                    # Crash recovery: a rebooted peer cannot know which
                    # of its sends died with it, so it re-announces its
                    # persisted published values (equal-version replays
                    # are idempotent at receivers).
                    for p in sorted(needs_republish):
                        if crash_down[p] == 0 and live[p]:
                            staged = self.peers[p].reboot_republish(self._peer_of)
                            transport.note_reboot_republish(staged)
                            needs_republish.discard(p)

                if not live.any():
                    # All peers down: nothing can compute or exchange —
                    # skip the pass rather than evaluating (and trivially
                    # satisfying) the convergence criterion.
                    dead_streak += 1
                    deferred_now = (
                        transport.unacked_updates
                        if faulted
                        else sum(p.deferred_count for p in self.peers)
                    )
                    obs.passes.inc()
                    obs.dead_passes.inc()
                    obs.live_peers.set(0)
                    tracker.record(
                        PassStats(
                            pass_index=t,
                            max_rel_change=0.0,
                            active_documents=0,
                            messages=0,
                            deferred_messages=deferred_now,
                            live_peers=0,
                            computed_documents=0,
                        )
                    )
                    if dead_streak >= max_dead_passes:
                        raise RuntimeError(
                            f"no live peers for {dead_streak} consecutive "
                            f"passes (pass {t}); the availability model "
                            "starves the computation — raise availability or "
                            "max_dead_passes"
                        )
                    continue
                dead_streak = 0

                batches_before = self.traffic.network_batches
                hops_before = self.traffic.routing_hops
                migrations_before = self.traffic.migrations

                with obs.pass_timer:
                    # (0) §3.1 re-homing of long-absent peers' documents
                    if self.rehoming_after is not None:
                        self._absence[live] = 0
                        self._absence[~live] += 1
                        self._rehome(live)

                    # (1) store-and-resend deliveries (reliable transport:
                    #     due delayed copies + ack-timeout retransmits)
                    if faulted:
                        transport.begin_pass(t)
                        transport.tick(t, live)
                        resent = transport.pass_resent
                    else:
                        resent = self._deliver_deferred(live)

                    # (2) concurrent recompute on live peers
                    active = 0
                    max_change = 0.0
                    computed = 0
                    published_docs = []
                    for peer in self.peers:
                        if not live[peer.peer_id]:
                            continue
                        outcome = peer.compute_pass(
                            self.damping, self.epsilon, self._peer_of
                        )
                        active += outcome.active_documents
                        computed += len(peer.documents)
                        if outcome.max_rel_change > max_change:
                            max_change = outcome.max_rel_change
                        self._dirty.difference_update(peer._local)
                        published_docs.extend(outcome.published_docs)
                    # Published values are instantly visible to co-located
                    # consumers, who now owe a recompute (the vectorized engine
                    # marks these via its per-edge dirty pass); remote targets
                    # are marked at delivery below.  One segment expansion per
                    # pass over all publishers replaces the per-edge loop.
                    if published_docs:
                        pubs = np.asarray(published_docs, dtype=np.int64)
                        pos, lens = expand_rows(self.graph.indptr, pubs)
                        targets = self.graph.indices[pos]
                        owners = np.repeat(self._peer_of[pubs], lens)
                        colocated = targets[self._peer_of[targets] == owners]
                        self._dirty.update(int(t) for t in colocated)

                    # (3) drain outboxes: deliver or defer (reliable
                    #     transport: submit each batch as a new flight)
                    if faulted:
                        for peer in self.peers:
                            if not live[peer.peer_id]:
                                continue
                            for batch in peer.outbox.batches():
                                transport.send(t, batch, live)
                        messages = transport.pass_delivered
                        resent = transport.pass_resent
                    else:
                        delivered = self._deliver_outboxes(live)
                        messages = delivered + resent

                self.traffic.update_messages += messages
                self.traffic.resent_messages += resent
                self.traffic.bytes_transferred = (
                    self.traffic.update_messages * MESSAGE_SIZE_BYTES
                )
                deferred_now = (
                    transport.unacked_updates
                    if faulted
                    else sum(p.deferred_count for p in self.peers)
                )
                n_live = int(live.sum())

                obs.passes.inc()
                obs.delivered.inc(messages)
                obs.resent.inc(resent)
                obs.bytes.inc(messages * MESSAGE_SIZE_BYTES)
                obs.batches.inc(self.traffic.network_batches - batches_before)
                obs.hops.inc(self.traffic.routing_hops - hops_before)
                obs.migrations.inc(self.traffic.migrations - migrations_before)
                obs.store_depth.observe(deferred_now)
                obs.residual.set(max_change)
                obs.live_peers.set(n_live)
                if sink.enabled:
                    sink.event(
                        "sim.pass", pass_index=t, residual=max_change,
                        active_documents=active, messages=messages,
                        resent=resent, deferred=deferred_now, live_peers=n_live,
                    )

                tracker.record(
                    PassStats(
                        pass_index=t,
                        max_rel_change=max_change,
                        active_documents=active,
                        messages=messages,
                        deferred_messages=deferred_now,
                        live_peers=n_live,
                        computed_documents=computed,
                    )
                )
                if faulted:
                    # Abandoned (budget-exhausted) updates will never
                    # arrive: strong convergence must not be certified
                    # over them, and a quiescent system that still owes
                    # undeliverable updates is stagnant, not converging.
                    quiescent = active == 0 and not self._dirty
                    if (
                        quiescent
                        and transport.undeliverable_updates == 0
                        and deferred_now == 0
                    ):
                        converged = True
                        break
                    if detector.observe(
                        quiescent=quiescent,
                        undelivered=transport.undeliverable_updates,
                        delivered_this_pass=messages,
                        attempts_this_pass=transport.pass_attempts,
                    ):
                        transport.note_stagnation_abort()
                        diagnostics = transport.diagnose(t, detector.streak)
                        break
                elif active == 0 and deferred_now == 0 and not self._dirty:
                    converged = True
                    break
        return tracker.finish(self.ranks(), converged, diagnostics)

    # ------------------------------------------------------------------
    def _fault_deliver(self, batch: MessageBatch) -> int:
        """Reliable-transport delivery callback: hand a batch to its
        receiver, mirroring the lossless path's bookkeeping (dirty
        marking, hop charges, batch count).  Returns how many updates
        mutated receiver state (duplicates are suppressed by the
        per-source version dedup)."""
        applied = self.peers[batch.receiver_peer].receive_batch(batch.updates)
        self._mark_dirty(batch.updates)
        self._charge_hops(batch.sender_peer, batch.updates)
        self.traffic.network_batches += 1
        return applied

    # ------------------------------------------------------------------
    def ranks(self) -> np.ndarray:
        """Current rank of every document, gathered from the peers."""
        out = np.empty(self.graph.num_nodes, dtype=np.float64)
        for peer in self.peers:
            for doc, value in peer.rank.items():
                out[doc] = value
        return out

    # ------------------------------------------------------------------
    def _deliver_deferred(self, live: np.ndarray) -> int:
        """Step 1: present senders flush stored updates to present
        receivers.  Returns the number of updates delivered.

        Under re-homing a stored update's target document may have
        moved, so each update is re-resolved to the document's *current*
        owner before delivery.
        """
        delivered = 0
        for peer in self.peers:
            if not live[peer.peer_id] or not peer.deferred:
                continue
            if self.rehoming_after is None:
                dests = [d for d in peer.deferred if live[d]]
                for dest in dests:
                    updates = peer.take_deferred(dest)
                    self.peers[dest].receive_batch(updates)
                    self._mark_dirty(updates)
                    self._charge_hops(peer.peer_id, updates)
                    delivered += len(updates)
                    self.traffic.network_batches += 1
                continue
            # Re-homing: re-resolve every stored update's owner.
            all_updates = []
            for dest in list(peer.deferred):
                all_updates.extend(peer.take_deferred(dest))
            by_owner: Dict[int, list] = {}
            for u in all_updates:
                by_owner.setdefault(int(self._peer_of[u.target_doc]), []).append(u)
            for owner, updates in by_owner.items():
                if live[owner]:
                    self.peers[owner].receive_batch(updates)
                    self._mark_dirty(updates)
                    self._charge_hops(peer.peer_id, updates)
                    delivered += len(updates)
                    self.traffic.network_batches += 1
                else:
                    peer.defer(owner, updates)
        return delivered

    def _deliver_outboxes(self, live: np.ndarray) -> int:
        """Step 3: route freshly staged batches.  Returns updates
        delivered (stored ones are counted when finally delivered)."""
        delivered = 0
        for peer in self.peers:
            if not live[peer.peer_id]:
                # An absent peer cannot have computed this pass, but it
                # may hold a stale outbox in pathological uses; leave it.
                continue
            for batch in peer.outbox.batches():
                if live[batch.receiver_peer]:
                    self.peers[batch.receiver_peer].receive_batch(batch.updates)
                    self._mark_dirty(batch.updates)
                    self._charge_hops(peer.peer_id, batch.updates)
                    delivered += len(batch)
                    self.traffic.network_batches += 1
                else:
                    peer.defer(batch.receiver_peer, batch.updates)
        return delivered

    def _rehome(self, live: np.ndarray) -> None:
        """Move documents off long-absent peers and back home on return."""
        from repro.p2p.guid import document_guid

        ring = self.network.ring
        dead = set(int(p) for p in np.flatnonzero(~live))
        threshold = self.rehoming_after

        # Evacuate: peers absent for too long surrender everything —
        # document state plus the in-link knowledge it was computed
        # from (exported before surrendering, since sources may be
        # co-migrating local documents).
        for peer in self.peers:
            pid = peer.peer_id
            if self._absence[pid] < threshold or peer.documents.size == 0:
                continue
            docs = [int(d) for d in peer.documents]
            knowledge = peer.export_inlink_knowledge(docs)
            state = peer.surrender_documents(docs)
            by_doc = {u.target_doc: [] for u in knowledge}
            for u in knowledge:
                by_doc[u.target_doc].append(u)
            for doc in docs:
                new_owner = ring.owner_excluding(document_guid(doc), dead)
                self.peers[new_owner].adopt_documents({doc: state[doc]})
                self.peers[new_owner].receive_batch(by_doc.get(doc, []))
                self._peer_of[doc] = new_owner
                self._dirty.add(doc)  # new owner owes a recompute
                self.traffic.migrations += 1

        # Return home: a reappeared peer re-acquires its documents.
        for pid in np.flatnonzero(live):
            pid = int(pid)
            if self._absence[pid] != 0:
                continue
            strayed = np.flatnonzero(
                (self._home_peer == pid) & (self._peer_of != pid)
            )
            for doc in strayed:
                doc = int(doc)
                holder = self.peers[int(self._peer_of[doc])]
                knowledge = holder.export_inlink_knowledge([doc])
                state = holder.surrender_documents([doc])
                self.peers[pid].adopt_documents(state)
                self.peers[pid].receive_batch(knowledge)
                self._peer_of[doc] = pid
                self._dirty.add(doc)
                self.traffic.migrations += 1

    def _mark_dirty(self, updates) -> None:
        self._dirty.update(u.target_doc for u in updates)

    def _charge_hops(self, sender_peer: int, updates) -> None:
        if self.delivery_policy is None:
            return
        self.traffic.routing_hops += self.delivery_policy.delivery_hops_batch(
            sender_peer, [u.target_doc for u in updates]
        )
