"""Execution-time estimation (paper §4.6, Eq. 4).

The paper estimates wall-clock convergence time from message counts
under a deliberately conservative transfer model:

* every update message costs ``MESSAGE_SIZE_BYTES`` (24 B: 128-bit
  GUID + 64-bit value);
* each peer *serialises* its sends — one network call per destination
  peer per pass — at transfer rate ``B`` bytes/s;
* per-pass compute cost ``C_p`` is a constant (estimated at about a
  minute for the 5,000,000-node graph on circa-2003 hardware).

Eq. 4:  ``T_pass(i) = C_i + Σ_j L_ij · M / B``.

Table 3's reported hours match the *fully serialised* reading — total
messages × message size ÷ transfer rate — which is the upper bound
where no two transfers overlap anywhere in the network.  We provide
that (:func:`total_time_serialized`, used to regenerate the table) and
the peer-parallel per-pass reading (:func:`pass_time_parallel`, the
literal Eq. 4 with the max over peers), plus the §4.6.2 Internet-scale
extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_positive
from repro.obs import get_registry
from repro.p2p.messages import MESSAGE_SIZE_BYTES

__all__ = [
    "TransferModel",
    "RATE_32KBPS",
    "RATE_200KBPS",
    "RATE_T3",
    "total_time_serialized",
    "pass_time_parallel",
    "internet_scale_estimate",
]

#: The paper's conservative P2P transfer rate (32 Kbytes/s).
RATE_32KBPS = 32 * 1024
#: The paper's aggressive P2P transfer rate (200 Kbytes/s).
RATE_200KBPS = 200 * 1024
#: T3 line rate used for the web-server scenario (§4.6.2), ~5.6 MB/s.
RATE_T3 = int(5.6 * 1024 * 1024)


@dataclass(frozen=True)
class TransferModel:
    """Network/compute cost parameters of the §4.6.1 model.

    Attributes
    ----------
    rate_bytes_per_s:
        Average peer transfer rate ``B``.
    message_size_bytes:
        Wire size ``M`` per update (paper: 24).
    compute_time_per_pass:
        Constant per-pass computation cost ``C_p`` in seconds (paper
        estimate: ≤ 60 s for the 5,000k graph; 0 reproduces Table 3,
        which is communication-dominated).
    """

    rate_bytes_per_s: float
    message_size_bytes: int = MESSAGE_SIZE_BYTES
    compute_time_per_pass: float = 0.0

    def __post_init__(self) -> None:
        check_positive("rate_bytes_per_s", self.rate_bytes_per_s)
        check_positive("message_size_bytes", self.message_size_bytes)
        check_positive("compute_time_per_pass", self.compute_time_per_pass, strict=False)


def total_time_serialized(
    total_messages: int,
    model: TransferModel,
    *,
    passes: int = 0,
) -> float:
    """Convergence time, fully serialised transfers (Table 3's metric).

    ``total_messages × M / B + passes × C_p`` seconds.  ``passes`` only
    matters when the model carries a nonzero compute cost.
    """
    if total_messages < 0:
        raise ValueError(f"total_messages must be >= 0, got {total_messages}")
    if passes < 0:
        raise ValueError(f"passes must be >= 0, got {passes}")
    comm = total_messages * model.message_size_bytes / model.rate_bytes_per_s
    seconds = comm + passes * model.compute_time_per_pass
    get_registry().gauge(
        "sim.modeled_transfer_seconds", unit="seconds",
        description="latest Eq. 4 serialised-transfer estimate (Table 3)",
    ).set(seconds)
    return seconds


def pass_time_parallel(link_messages: np.ndarray, model: TransferModel) -> float:
    """Literal Eq. 4 for one pass with peers transferring in parallel.

    Parameters
    ----------
    link_messages:
        Either a ``(P, P)`` matrix whose ``[i, j]`` entry is the number
        of update messages peer ``i`` sends peer ``j`` this pass (e.g.
        :meth:`repro.p2p.network.P2PNetwork.peer_link_matrix` for a
        worst-case all-active pass), or an already-reduced length-``P``
        vector of per-peer send counts (the sharded simulator's
        per-peer accounting).  A scipy sparse matrix is also accepted,
        duck-typed — scipy itself is not required.

    Returns
    -------
    float
        ``max_i ( C_i + Σ_j L_ij · M / B )``: each peer serialises its
        own sends, peers overlap, the slowest peer bounds the pass.
    """
    if hasattr(link_messages, "toarray"):
        per_peer = np.asarray(link_messages.sum(axis=1)).ravel()
    else:
        arr = np.asarray(link_messages)
        per_peer = arr if arr.ndim == 1 else arr.sum(axis=1)
    slowest = float(per_peer.max()) if per_peer.size else 0.0
    seconds = (
        model.compute_time_per_pass
        + slowest * model.message_size_bytes / model.rate_bytes_per_s
    )
    get_registry().gauge(
        "sim.modeled_pass_seconds", unit="seconds",
        description="latest Eq. 4 peer-parallel per-pass estimate",
    ).set(seconds)
    return seconds


def internet_scale_estimate(
    messages_per_document: float,
    *,
    num_documents: float = 3e9,
    model: TransferModel | None = None,
) -> float:
    """§4.6.2's web-server extrapolation, in days.

    Scales a measured per-document message count (Table 3's
    size-independent metric) to an Internet-sized corpus served by web
    servers on T3-class links.

    Parameters
    ----------
    messages_per_document:
        Average update messages per document at the chosen ε (measure
        it with the vectorized engine on a synthetic graph — the paper
        found it nearly independent of graph size).
    num_documents:
        Corpus size; the paper uses 3 billion.
    model:
        Transfer model; defaults to a T3 line with no compute cost.

    Returns
    -------
    float
        Estimated days to convergence.
    """
    check_positive("messages_per_document", messages_per_document)
    check_positive("num_documents", num_documents)
    m = model or TransferModel(rate_bytes_per_s=RATE_T3)
    seconds = total_time_serialized(int(messages_per_document * num_documents), m)
    return seconds / 86_400.0
