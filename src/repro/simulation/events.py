"""Discrete-event asynchronous pagerank simulation.

The paper's evaluation (§4.2) deliberately idealises the network:
messages are instantaneous and all peers step in lock-step passes.
Its future work (§6) is a *real* asynchronous deployment, where
messages arrive whenever the network delivers them and each peer
recomputes per received message — the literal reading of Figure 1's
``while pagerank update message received`` loop, i.e. a true chaotic
iteration in the Chazan–Miranker sense.

:class:`AsyncEventSimulation` implements that with a discrete-event
queue: every update message is an event with a sampled latency;
processing it folds the value in and triggers a recompute of the
addressed document, which may publish and emit follow-on messages.
Intra-peer propagation is modelled as zero-cost recompute triggers.
The simulation terminates when the event queue drains — the
distributed computation's natural quiescence.

Batching — a reproduction finding
---------------------------------
Run *literally* (one recompute + potential send per received message,
``batch_window=0``), the protocol's message count explodes as ε
shrinks: every arrival that moves a rank by just over ε triggers a
full fan-out, so traffic scales like 1/ε rather than the log(1/ε) the
paper's per-pass batched simulation measures (Table 3).  This is
precisely why the paper's §4.2 methodology batches updates into
passes, and why its §4.6.1 transfer model assumes per-destination
batching.  The ``batch_window`` parameter restores that behaviour
asynchronously: arrivals are folded in immediately, but a document's
recompute is coalesced — at most one pending recompute per document,
executed ``batch_window`` after the first triggering arrival.  The
default window (0.5 time units, half the default mean latency) makes
asynchronous traffic comparable to the pass engine's; set it to 0 for
the paper-literal per-message mode (use generous ε or event budgets
there).  The ``benchmarks/test_ablation_async.py`` harness quantifies
the gap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

import numpy as np

from repro._util import as_generator, check_positive, check_threshold
from repro._util.rng import SeedLike
from repro.core.pagerank import DEFAULT_DAMPING
from repro.graphs.linkgraph import LinkGraph
from repro.p2p.messages import PagerankUpdate
from repro.p2p.network import P2PNetwork
from repro.p2p.peer import Peer

__all__ = [
    "AsyncReport",
    "AsyncEventSimulation",
    "UniformLatency",
    "ExponentialLatency",
    "FixedLatency",
    "OnOffSchedule",
]

LatencyModel = Callable[[np.random.Generator, int, int], float]

_DELIVER = 0
_RECOMPUTE = 1


class FixedLatency:
    """Constant network latency between any pair of peers."""

    def __init__(self, latency: float) -> None:
        check_positive("latency", latency, strict=False)
        self.latency = float(latency)

    def __call__(self, rng: np.random.Generator, src_peer: int, dst_peer: int) -> float:
        return self.latency


class UniformLatency:
    """Latency uniform in ``[low, high]`` — the simplest jitter model."""

    def __init__(self, low: float, high: float) -> None:
        check_positive("low", low, strict=False)
        if high < low:
            raise ValueError(f"high must be >= low, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, rng: np.random.Generator, src_peer: int, dst_peer: int) -> float:
        return float(rng.uniform(self.low, self.high))


class ExponentialLatency:
    """Heavy-ish tailed latency with the given mean (memoryless model,
    a common stand-in for wide-area P2P delivery times)."""

    def __init__(self, mean: float) -> None:
        check_positive("mean", mean)
        self.mean = float(mean)

    def __call__(self, rng: np.random.Generator, src_peer: int, dst_peer: int) -> float:
        return float(rng.exponential(self.mean))


class OnOffSchedule:
    """Continuous-time peer availability: alternating up/down spells.

    The pass engines model churn per pass (§3.1/§4.3); the event
    simulator needs availability over continuous time.  Each peer
    alternates exponentially-distributed up and down spells; a message
    arriving during a down spell is held and delivered when the peer
    returns (the §3.1 store-and-resend behaviour, expressed as delayed
    delivery).

    Parameters
    ----------
    num_peers:
        Peer population.
    mean_up, mean_down:
        Mean spell lengths (stationary availability is
        ``mean_up / (mean_up + mean_down)``).
    horizon:
        Schedules are materialised up to this virtual time; peers are
        considered permanently up afterwards (runs should quiesce well
        before it).
    seed:
        Deterministic seed.
    """

    def __init__(
        self,
        num_peers: int,
        *,
        mean_up: float = 20.0,
        mean_down: float = 5.0,
        horizon: float = 10_000.0,
        seed: SeedLike = None,
    ) -> None:
        if num_peers < 1:
            raise ValueError(f"num_peers must be >= 1, got {num_peers}")
        check_positive("mean_up", mean_up)
        check_positive("mean_down", mean_down)
        check_positive("horizon", horizon)
        rng = as_generator(seed)
        self.num_peers = num_peers
        self.mean_up = float(mean_up)
        self.mean_down = float(mean_down)
        self.horizon = float(horizon)
        #: per peer: sorted list of (down_start, down_end) intervals
        self._downtimes: List[List[tuple]] = []
        for _ in range(num_peers):
            t = float(rng.exponential(mean_up))  # first down spell start
            spans = []
            while t < horizon:
                d = float(rng.exponential(mean_down))
                spans.append((t, t + d))
                t += d + float(rng.exponential(mean_up))
            self._downtimes.append(spans)

    @property
    def stationary_availability(self) -> float:
        return self.mean_up / (self.mean_up + self.mean_down)

    def is_up(self, peer: int, t: float) -> bool:
        """Whether ``peer`` is present at virtual time ``t``."""
        return self.next_up(peer, t) == t

    def next_up(self, peer: int, t: float) -> float:
        """Earliest time >= ``t`` at which ``peer`` is present."""
        if not 0 <= peer < self.num_peers:
            raise IndexError(f"peer {peer} out of range")
        for start, end in self._downtimes[peer]:
            if t < start:
                return t
            if t < end:
                return end
        return t


@dataclass(frozen=True)
class AsyncReport:
    """Outcome of an event-driven run.

    Attributes
    ----------
    ranks:
        Final per-document ranks.
    events_processed:
        Delivery + recompute events handled.
    messages:
        Cross-peer update messages sent (intra-peer triggers excluded,
        matching the pass engines' accounting).
    recomputes:
        Document recomputations performed.
    deferred_deliveries:
        Deliveries that found the receiver absent and were held until
        its return (0 without an availability schedule).
    sim_time:
        Virtual time at which the queue drained.
    quiesced:
        True if the event queue emptied within the event budget.
    """

    ranks: np.ndarray
    events_processed: int
    messages: int
    recomputes: int
    sim_time: float
    quiesced: bool
    deferred_deliveries: int = 0


class AsyncEventSimulation:
    """True chaotic iteration driven by a latency-ordered event queue.

    Parameters
    ----------
    graph:
        Document link graph.
    network:
        P2P network with a placement attached.
    damping, epsilon, init_rank:
        Algorithm parameters.
    latency:
        Cross-peer latency model (callable ``(rng, src, dst) -> s``);
        defaults to ``UniformLatency(0.5, 1.5)``.
    batch_window:
        Receiver-side coalescing window (see module docstring).  With
        a positive window, at most one recompute per document is
        pending at any time, executed ``batch_window`` after the first
        triggering arrival; 0 reproduces the paper-literal
        one-recompute-per-message behaviour.
    publish_gate:
        ``"published"`` (default) gates sends on deviation from the
        last *announced* value, bounding consumer staleness by ε;
        ``"rank"`` is the Figure-1-literal gate on the last computed
        rank, which admits unbounded sub-ε drift under asynchronous
        interleaving (see :meth:`repro.p2p.peer.Peer.recompute_document`).
    seed:
        Seed for latency sampling.
    """

    def __init__(
        self,
        graph: LinkGraph,
        network: P2PNetwork,
        *,
        damping: float = DEFAULT_DAMPING,
        epsilon: float = 1e-3,
        init_rank: float = 1.0,
        latency: Optional[LatencyModel] = None,
        batch_window: float = 0.5,
        publish_gate: str = "published",
        versioned_updates: bool = True,
        availability: Optional["OnOffSchedule"] = None,
        seed: SeedLike = None,
    ) -> None:
        check_threshold("damping", damping)
        check_threshold("epsilon", epsilon)
        check_positive("init_rank", init_rank)
        check_positive("batch_window", batch_window, strict=False)
        if network.placement is None:
            raise ValueError("network must have a document placement attached")
        if network.placement.num_docs != graph.num_nodes:
            raise ValueError("placement and graph disagree on document count")
        self.graph = graph
        self.network = network
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.init_rank = float(init_rank)
        self.latency: LatencyModel = latency if latency is not None else UniformLatency(0.5, 1.5)
        self.batch_window = float(batch_window)
        if publish_gate not in ("published", "rank"):
            raise ValueError(
                f"publish_gate must be 'published' or 'rank', got {publish_gate!r}"
            )
        self.publish_gate = publish_gate
        if availability is not None and availability.num_peers != network.num_peers:
            raise ValueError("availability schedule peer count mismatch")
        self.availability = availability
        self._rng = as_generator(seed)
        self.versioned_updates = bool(versioned_updates)
        docs_by_peer = network.placement.docs_by_peer()
        self.peers: List[Peer] = [
            Peer(
                pid,
                docs_by_peer[pid],
                graph,
                init_rank=init_rank,
                honor_versions=self.versioned_updates,
            )
            for pid in range(network.num_peers)
        ]
        self._peer_of = network.placement.assignment
        self._counter = itertools.count()  # tie-breaker for the heap

    # ------------------------------------------------------------------
    def run(self, *, max_events: int = 5_000_000) -> AsyncReport:
        """Drive the system from the initial concurrent pass to
        quiescence (or the event budget)."""
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        # heap entries: (time, seq, kind, peer, payload)
        #   kind=_DELIVER   -> payload is a PagerankUpdate
        #   kind=_RECOMPUTE -> payload is a document id
        heap: list = []
        pending: Set[int] = set()  # docs with a scheduled recompute
        messages = 0
        recomputes = 0
        deferred = 0
        now = 0.0

        # Initial pass (Fig. 1 "At time = 0"): every document computes
        # once, concurrently, and sends its first updates.
        for peer in self.peers:
            for doc in peer.documents:
                doc = int(doc)
                recomputes += 1
                _, published = peer.recompute_document(
                    doc, self.damping, self.epsilon, self._peer_of,
                    gate=self.publish_gate,
                )
                if published:
                    messages += self._emit(heap, pending, now, peer, doc)

        events = 0
        while heap and events < max_events:
            now, _, kind, peer_id, payload = heapq.heappop(heap)
            events += 1
            # Absent receiver: hold the event until the peer returns
            # (continuous-time store-and-resend, §3.1).
            if self.availability is not None:
                up_at = self.availability.next_up(peer_id, now)
                if up_at > now:
                    deferred += 1
                    heapq.heappush(
                        heap, (up_at, next(self._counter), kind, peer_id, payload)
                    )
                    continue
            peer = self.peers[peer_id]
            if kind == _DELIVER:
                peer.receive(payload)
                self._schedule_recompute(heap, pending, now, peer_id, payload.target_doc)
                continue
            doc = payload
            pending.discard(doc)
            recomputes += 1
            _, published = peer.recompute_document(
                doc, self.damping, self.epsilon, self._peer_of,
                gate=self.publish_gate,
            )
            if published:
                messages += self._emit(heap, pending, now, peer, doc)

        return AsyncReport(
            ranks=self._gather_ranks(),
            events_processed=events,
            messages=messages,
            recomputes=recomputes,
            sim_time=now,
            quiesced=not heap,
            deferred_deliveries=deferred,
        )

    # ------------------------------------------------------------------
    def _schedule_recompute(
        self, heap: list, pending: Set[int], now: float, peer_id: int, doc: int
    ) -> None:
        """Queue a recompute trigger, coalescing when batching is on."""
        if self.batch_window > 0.0:
            if doc in pending:
                return
            pending.add(doc)
        heapq.heappush(
            heap,
            (now + self.batch_window, next(self._counter), _RECOMPUTE, peer_id, doc),
        )

    def _emit(
        self, heap: list, pending: Set[int], now: float, peer: Peer, doc: int
    ) -> int:
        """Convert the peer's staged updates and the doc's local links
        into future events.  Returns cross-peer messages emitted."""
        sent = 0
        # Remote: drain the peer's outbox (only `doc`'s updates are in
        # it because the async engine drains after every recompute).
        for batch in peer.outbox.batches():
            for update in batch:
                delay = self.latency(self._rng, peer.peer_id, batch.receiver_peer)
                heapq.heappush(
                    heap,
                    (
                        now + delay,
                        next(self._counter),
                        _DELIVER,
                        batch.receiver_peer,
                        update,
                    ),
                )
                sent += 1
        # Local: co-located out-link targets owe a recompute (published
        # values are immediately visible within the peer).
        for target in self.graph.out_links(doc):
            target = int(target)
            if int(self._peer_of[target]) == peer.peer_id:
                self._schedule_recompute(heap, pending, now, peer.peer_id, target)
        return sent

    def _gather_ranks(self) -> np.ndarray:
        out = np.empty(self.graph.num_nodes, dtype=np.float64)
        for peer in self.peers:
            for doc, value in peer.rank.items():
                out[doc] = value
        return out
