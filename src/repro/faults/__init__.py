"""Deterministic fault injection and reliable delivery.

The paper argues the chaotic pagerank protocol tolerates the messy
realities of a P2P deployment (§3.1 store-and-resend, the §4.3
availability sweeps); this package makes that claim testable.
A seeded :class:`FaultPlan` is the single oracle for everything that can
go wrong on the wire — message drops, duplication, delay/reordering,
peer crashes with volatile-state loss, and transient link partitions —
while :class:`ReliableTransport` layers per-batch acknowledgements,
timeout/backoff retransmission, and a retry budget on top of the
protocol's update messages so the computation converges anyway.

Determinism is the design center: a plan draws every coin from one
seeded generator in engine call order, so the same seed replays the
same run, failure and all.  When delivery is genuinely impossible
(black-holed peers or links), :class:`StagnationDetector` aborts the
run with a :class:`FaultDiagnostics` report instead of burning the pass
budget in silence.

Entry points:

* :class:`FaultSpec` / :class:`Partition` — declarative fault mix.
* :class:`FaultPlan` — the seeded oracle engines consult.
* :class:`ReliabilityConfig` / :class:`ReliableTransport` — ack/retry
  delivery used by :class:`repro.simulation.engine.P2PPagerankSimulation`.
* :func:`run_fault_experiment` — the `repro faults` Table-1-style
  convergence-under-loss sweep.
"""

from repro.faults.experiment import (
    FaultExperimentConfig,
    FaultExperimentResult,
    FaultTrial,
    run_fault_experiment,
)
from repro.faults.plan import FaultPlan, FaultSpec, Partition, SendFate
from repro.faults.transport import (
    FaultDiagnostics,
    FaultStats,
    ReliabilityConfig,
    ReliableTransport,
    StagnationDetector,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "Partition",
    "SendFate",
    "ReliabilityConfig",
    "ReliableTransport",
    "FaultStats",
    "StagnationDetector",
    "FaultDiagnostics",
    "FaultExperimentConfig",
    "FaultExperimentResult",
    "FaultTrial",
    "run_fault_experiment",
]
