"""Reliable batch delivery over a faulty transport (acks + backoff).

The protocol's wire format (docs/PROTOCOL.md §2) has no reliability:
a :class:`~repro.p2p.messages.MessageBatch` that the network drops is
simply gone, and the §3.1 store-and-resend rule only covers receivers
known to be *absent* — not messages lost in flight.  This module adds
the missing layer, the classic positive-ack protocol:

* every batch transfer is a **flight** with a transport-level id;
* a delivered batch is acknowledged by the receiver
  (:class:`~repro.p2p.messages.BatchAck`); the ack travels the same
  lossy links and can itself be dropped;
* an unacknowledged flight is retransmitted after a timeout, with the
  timeout doubling per attempt (exponential backoff) up to a retry
  budget; exhausting the budget *abandons* the flight and records the
  (sender, receiver) link as black-holed;
* retransmits necessarily produce duplicate deliveries; the receiver's
  per-source version dedup (`Peer.receive`, which rejects equal-or-
  older versions) makes them no-ops, and the transport counts how many
  updates that suppression absorbed.

Fault decisions (drop/duplicate/delay/partition) come from the seeded
:class:`~repro.faults.plan.FaultPlan`; the transport itself is
deterministic given the plan and the engine's call order.

Degradation is graceful, not silent: :class:`StagnationDetector`
watches for passes in which the computation is quiescent yet
undeliverable updates remain, and :class:`FaultDiagnostics` is the
abort report — which links are black-holed and how much update mass
never arrived — returned on :class:`~repro.core.convergence.RunReport`
instead of spinning to the pass cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.p2p.messages import MessageBatch
from repro.faults.plan import FaultPlan

__all__ = [
    "ReliabilityConfig",
    "FaultStats",
    "ReliableTransport",
    "StagnationDetector",
    "FaultDiagnostics",
]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Ack/retry/backoff parameters of the reliable-delivery layer.

    Attributes
    ----------
    ack_timeout_passes:
        Passes to wait for an ack before the first retransmit.
    backoff_factor:
        Timeout multiplier per failed attempt (attempt ``k`` waits
        ``ack_timeout_passes * backoff_factor**(k-1)`` passes).
    max_retries:
        Retransmissions allowed per flight.  A flight still unacked
        after the budget is *abandoned* — recorded as black-holed, its
        updates counted as undelivered mass for the diagnostics report.
    max_retry_delay_passes:
        Backoff ceiling.  Uncapped exponential backoff would park a
        flight for hundreds of passes — longer than the stagnation
        window — and starve an otherwise-recoverable run; capping it
        also bounds the worst-case pass count before a doomed flight
        exhausts its budget and is abandoned.
    """

    ack_timeout_passes: int = 2
    backoff_factor: float = 2.0
    max_retries: int = 10
    max_retry_delay_passes: int = 8

    def __post_init__(self) -> None:
        if self.ack_timeout_passes < 1:
            raise ValueError(
                f"ack_timeout_passes must be >= 1, got {self.ack_timeout_passes}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_retry_delay_passes < 1:
            raise ValueError(
                "max_retry_delay_passes must be >= 1, "
                f"got {self.max_retry_delay_passes}"
            )

    def retry_delay(self, attempt: int) -> int:
        """Whole passes to wait after failed attempt number ``attempt``."""
        delay = int(self.ack_timeout_passes * self.backoff_factor ** (attempt - 1))
        return max(1, min(delay, self.max_retry_delay_passes))


@dataclass
class FaultStats:
    """Plain-integer fault accounting, readable without the obs layer.

    All message quantities are update counts (the catalogue's
    *messages* unit); ``retries`` and ``partition_blocked_sends`` count
    batch transfers, ``acks``/``ack_drops`` count acknowledgements.
    """

    dropped_updates: int = 0
    duplicated_updates: int = 0
    delayed_updates: int = 0
    acks_sent: int = 0
    acks_dropped: int = 0
    retries: int = 0
    redeliveries_suppressed: int = 0
    partition_blocked_sends: int = 0
    abandoned_updates: int = 0
    parked_updates: int = 0
    parked_resent: int = 0
    crashes: int = 0
    crash_state_loss: int = 0
    reboot_republished: int = 0
    stagnation_aborts: int = 0


class _FaultInstruments:
    """Registry handles for the fault layer's emissions (shared no-op
    singletons under the default disabled registry).  Catalogued in
    docs/OBSERVABILITY.md §4."""

    __slots__ = (
        "dropped", "duplicated", "delayed", "acks", "ack_drops", "retries",
        "suppressed", "blocked", "abandoned", "parked", "parked_resent",
        "crashes", "state_loss", "republished", "aborts",
    )

    def __init__(self, reg) -> None:
        self.dropped = reg.counter(
            "faults.messages_dropped", unit="messages",
            description="updates lost to injected message drops",
        )
        self.duplicated = reg.counter(
            "faults.messages_duplicated", unit="messages",
            description="updates delivered twice by injected duplication",
        )
        self.delayed = reg.counter(
            "faults.messages_delayed", unit="messages",
            description="updates whose delivery was postponed (reordering)",
        )
        self.acks = reg.counter(
            "faults.ack_messages", unit="acks",
            description="batch acknowledgements sent by receivers",
        )
        self.ack_drops = reg.counter(
            "faults.acks_dropped", unit="acks",
            description="acknowledgements lost in transit (forces retransmit)",
        )
        self.retries = reg.counter(
            "faults.retries", unit="batches",
            description="batch retransmissions after ack timeout",
        )
        self.suppressed = reg.counter(
            "faults.redeliveries_suppressed", unit="messages",
            description="duplicate updates absorbed by receiver version dedup",
        )
        self.blocked = reg.counter(
            "faults.partition_blocked_sends", unit="batches",
            description="send attempts blocked by an active link partition",
        )
        self.abandoned = reg.counter(
            "faults.abandoned_updates", unit="messages",
            description="updates whose flight exhausted the retry budget",
        )
        self.parked = reg.counter(
            "faults.parked_updates", unit="messages",
            description="budget-exhausted updates parked into store-and-resend",
        )
        self.parked_resent = reg.counter(
            "faults.parked_resent", unit="messages",
            description="parked updates relaunched after their blockage cleared",
        )
        self.crashes = reg.counter(
            "faults.crashes", unit="peers",
            description="injected peer crashes (volatile state wiped)",
        )
        self.state_loss = reg.counter(
            "faults.crash_state_loss", unit="messages",
            description="in-flight updates wiped by peer crashes",
        )
        self.republished = reg.counter(
            "faults.reboot_republished", unit="messages",
            description="updates re-announced by rebooted peers (crash recovery)",
        )
        self.aborts = reg.counter(
            "faults.stagnation_aborts", unit="runs",
            description="runs aborted by the residual-stagnation detector",
        )


@dataclass
class _Flight:
    """One batch transfer awaiting acknowledgement."""

    fid: int
    batch: MessageBatch
    first_sent_pass: int
    attempts: int = 1
    next_retry_pass: int = 0
    delivered_once: bool = False


@dataclass
class _Parked:
    """One budget-exhausted batch held in store-and-resend (§3.1).

    ``undeliverable`` records whether the batch has been blocked by a
    partition or a down receiver since parking; relaunch is
    *transition-gated* — only a batch that was blocked and whose
    blockage has since cleared goes back on the wire.  A batch that
    exhausted its budget on an open, up link lost to pure chance stays
    parked (retrying it forever would just mask a hopeless loss rate).
    """

    batch: MessageBatch
    parked_at_pass: int
    undeliverable: bool = False


@dataclass(frozen=True)
class FaultDiagnostics:
    """Why a faulted run was aborted (the graceful-degradation report).

    Attributes
    ----------
    fired_at_pass:
        Pass index at which the stagnation detector fired.
    stagnant_passes:
        Consecutive quiescent-but-undeliverable passes observed.
    black_holed_links:
        ``((sender, receiver), undelivered_updates)`` per link whose
        flights exhausted the retry budget.
    black_holed_peers:
        Likely-culprit peers: those incident to at least half of the
        black-holed links (a fully partitioned peer touches all of its
        links; innocent bystanders touch only the ones to it).
    abandoned_updates:
        Updates whose flight was abandoned (retry budget exhausted).
    unacked_updates:
        Updates still sitting in unacknowledged flights at abort time.
    undelivered_mass:
        Total ``|value|`` mass of abandoned plus unacked updates — how
        much rank contribution never reached its consumers.
    """

    fired_at_pass: int
    stagnant_passes: int
    black_holed_links: Tuple[Tuple[Tuple[int, int], int], ...]
    black_holed_peers: Tuple[int, ...]
    abandoned_updates: int
    unacked_updates: int
    undelivered_mass: float

    def describe(self) -> str:
        """Human-readable abort report."""
        lines = [
            f"residual stagnation after {self.stagnant_passes} quiescent "
            f"passes (aborted at pass {self.fired_at_pass}):",
            f"  undelivered updates: {self.abandoned_updates} abandoned, "
            f"{self.unacked_updates} still unacked "
            f"(|value| mass {self.undelivered_mass:.6g})",
        ]
        if self.black_holed_links:
            lines.append("  black-holed links (sender->receiver: updates):")
            for (s, r), n in self.black_holed_links:
                lines.append(f"    {s} -> {r}: {n}")
        if self.black_holed_peers:
            lines.append(
                "  unreachable peers: "
                + ", ".join(str(p) for p in self.black_holed_peers)
            )
        return "\n".join(lines)


class StagnationDetector:
    """Detects quiescent-but-undeliverable runs (graceful abort).

    A faulted run can reach a state where no document is active, yet
    undelivered updates remain that can never arrive (permanent
    partition, retry budget exhausted).  Without detection the engine
    would spin to ``max_passes`` doing nothing.  The detector counts
    consecutive passes that are *quiescent* (nothing published, no
    recompute owed) while undeliverable-or-stuck updates exist and no
    delivery succeeded; after ``window`` such passes it fires.
    """

    def __init__(self, window: int = 25) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.streak = 0

    def observe(
        self,
        *,
        quiescent: bool,
        undelivered: int,
        delivered_this_pass: int,
        attempts_this_pass: int = 0,
    ) -> bool:
        """Record one pass; True when stagnation is established.

        A pass in which the transport still *attempted* a transmission
        is not stagnant — the retry machinery is working and will
        either get through or exhaust its budget (bounded by the
        backoff cap); only once nothing is even being tried does the
        clock run.
        """
        if (
            quiescent
            and undelivered > 0
            and delivered_this_pass == 0
            and attempts_this_pass == 0
        ):
            self.streak += 1
        else:
            self.streak = 0
        return self.streak >= self.window


class ReliableTransport:
    """Ack/retry/backoff delivery of message batches under a fault plan.

    Parameters
    ----------
    plan:
        The seeded fault oracle.
    config:
        Ack/retry/backoff parameters.
    deliver:
        Engine callback ``deliver(batch) -> applied`` that hands a
        delivered batch to the receiving peer and returns how many of
        its updates actually mutated state (the rest were suppressed
        by version dedup).  The callback must also do the engine's own
        bookkeeping (dirty marking, routing-hop charges).
    registry:
        Metrics registry (defaults to the process registry's no-ops).

    Per-pass delivery counts are exposed as ``pass_delivered`` /
    ``pass_resent`` / ``pass_batches`` — reset by :meth:`begin_pass` —
    so the engine can fold them into its traffic summary and
    :class:`~repro.core.convergence.PassStats`.
    """

    def __init__(
        self,
        plan: FaultPlan,
        config: ReliabilityConfig,
        deliver: Callable[[MessageBatch], int],
        *,
        registry=None,
    ) -> None:
        if registry is None:
            from repro.obs import get_registry

            registry = get_registry()
        self.plan = plan
        self.config = config
        self._deliver = deliver
        self.stats = FaultStats()
        self._obs = _FaultInstruments(registry)
        self._flights: Dict[int, _Flight] = {}
        self._next_fid = 0
        # (due_pass, seq, flight, attempt_no) — copies travelling the
        # network, delivered in deterministic (due, seq) order.
        self._delayed: List[Tuple[int, int, _Flight, int]] = []
        self._delay_seq = 0
        self._black_holed: Dict[Tuple[int, int], int] = {}
        self._abandoned_mass = 0.0
        # Store-and-resend holding area for budget-exhausted batches,
        # keyed by a monotonically increasing park id (FIFO relaunch).
        self._parked: Dict[int, _Parked] = {}
        self._next_park = 0
        self._healed_updates = 0
        self._healed_mass = 0.0
        self.pass_delivered = 0
        self.pass_resent = 0
        self.pass_batches = 0
        self.pass_attempts = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def unacked_updates(self) -> int:
        """Updates in flights still awaiting acknowledgement."""
        return sum(len(f.batch) for f in self._flights.values())

    @property
    def unacked_flights(self) -> int:
        return len(self._flights)

    @property
    def abandoned_updates(self) -> int:
        return self.stats.abandoned_updates

    @property
    def undeliverable_updates(self) -> int:
        """Abandoned-minus-healed plus still-unacked updates
        (convergence blockers).  A parked batch counts until its
        blockage clears and it relaunches."""
        return (
            self.stats.abandoned_updates
            - self._healed_updates
            + self.unacked_updates
        )

    @property
    def parked_batches(self) -> int:
        """Budget-exhausted batches held in store-and-resend."""
        return len(self._parked)

    def black_holed_links(self) -> Dict[Tuple[int, int], int]:
        """Links whose flights exhausted the retry budget, with the
        number of updates abandoned on each."""
        return dict(self._black_holed)

    # ------------------------------------------------------------------
    # Pass lifecycle
    # ------------------------------------------------------------------
    def begin_pass(self, pass_index: int) -> None:
        """Reset the per-pass delivery counters."""
        self.pass_delivered = 0
        self.pass_resent = 0
        self.pass_batches = 0
        self.pass_attempts = 0

    def tick(self, pass_index: int, live) -> None:
        """Deliver due delayed copies, then retransmit timed-out flights.

        Call once per pass, after ``begin_pass`` and before the compute
        step (the transport's analogue of §3.1's resend-first rule).
        """
        if self._delayed:
            due = [e for e in self._delayed if e[0] <= pass_index]
            if due:
                self._delayed = [e for e in self._delayed if e[0] > pass_index]
                for _, _, flight, attempt in sorted(due, key=lambda e: (e[0], e[1])):
                    self._deliver_copy(pass_index, flight, attempt, live)

        for fid in list(self._flights):
            flight = self._flights.get(fid)
            if flight is None or flight.next_retry_pass > pass_index:
                continue
            if flight.attempts > self.config.max_retries:
                self._abandon(flight, pass_index, live)
                continue
            flight.attempts += 1
            self.stats.retries += 1
            self._obs.retries.inc()
            self._attempt(pass_index, flight, live)

        self._service_parked(pass_index, live)

    def _service_parked(self, pass_index: int, live) -> None:
        """Store-and-resend for budget-exhausted batches: track each
        parked batch's blockage, relaunch the ones whose blockage has
        cleared (transition-gated — see :class:`_Parked`)."""
        if not self._parked:
            return
        for park_id in sorted(self._parked):
            entry = self._parked[park_id]
            batch = entry.batch
            blocked = self.plan.link_blocked(
                pass_index, batch.sender_peer, batch.receiver_peer
            ) or not live[batch.receiver_peer]
            if blocked:
                entry.undeliverable = True
                continue
            if not entry.undeliverable:
                continue
            # Was blocked, now clear: back onto the wire as a fresh
            # flight with a fresh retry budget.
            del self._parked[park_id]
            healed = len(batch)
            mass = sum(abs(u.value) for u in batch)
            self._healed_updates += healed
            self._healed_mass += mass
            self.stats.parked_resent += healed
            self._obs.parked_resent.inc(healed)
            key = (batch.sender_peer, batch.receiver_peer)
            remaining = self._black_holed.get(key, 0) - healed
            if remaining > 0:
                self._black_holed[key] = remaining
            else:
                self._black_holed.pop(key, None)
            self.send(pass_index, batch, live)

    def send(self, pass_index: int, batch: MessageBatch, live) -> None:
        """Submit a freshly staged batch for reliable delivery."""
        if not len(batch):
            return
        flight = _Flight(
            fid=self._next_fid, batch=batch, first_sent_pass=pass_index
        )
        self._next_fid += 1
        self._flights[flight.fid] = flight
        self._attempt(pass_index, flight, live)

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def wipe_sender(self, peer: int) -> int:
        """Crash semantics: drop every unacked flight originating at
        ``peer`` (its retransmit buffer died with it).  Copies already
        travelling the network are left alone — they physically left
        the host.  Returns the number of updates wiped."""
        lost = 0
        for fid in list(self._flights):
            flight = self._flights[fid]
            if flight.batch.sender_peer == peer:
                lost += len(flight.batch)
                del self._flights[fid]
        # The store-and-resend holding area is volatile too.
        for park_id in list(self._parked):
            if self._parked[park_id].batch.sender_peer == peer:
                lost += len(self._parked[park_id].batch)
                del self._parked[park_id]
        return lost

    def note_crash(self, peer: int, state_loss: int) -> None:
        """Record a peer crash and its total volatile-state loss."""
        self.stats.crashes += 1
        self.stats.crash_state_loss += state_loss
        self._obs.crashes.inc()
        self._obs.state_loss.inc(state_loss)

    def note_reboot_republish(self, staged: int) -> None:
        """Record a rebooted peer's conservative re-announcements."""
        self.stats.reboot_republished += staged
        self._obs.republished.inc(staged)

    def note_stagnation_abort(self) -> None:
        self.stats.stagnation_aborts += 1
        self._obs.aborts.inc()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def diagnose(self, pass_index: int, stagnant_passes: int) -> FaultDiagnostics:
        """Build the graceful-degradation abort report."""
        links = dict(self._black_holed)
        unacked_mass = 0.0
        for flight in self._flights.values():
            key = (flight.batch.sender_peer, flight.batch.receiver_peer)
            links[key] = links.get(key, 0) + len(flight.batch)
            unacked_mass += sum(abs(u.value) for u in flight.batch)
        incidence: Dict[int, int] = {}
        for s, r in links:
            incidence[s] = incidence.get(s, 0) + 1
            incidence[r] = incidence.get(r, 0) + 1
        threshold = max(1, (len(links) + 1) // 2)
        peers = tuple(sorted(p for p, n in incidence.items() if n >= threshold))
        return FaultDiagnostics(
            fired_at_pass=pass_index,
            stagnant_passes=stagnant_passes,
            black_holed_links=tuple(sorted(links.items())),
            black_holed_peers=peers,
            abandoned_updates=self.stats.abandoned_updates - self._healed_updates,
            unacked_updates=self.unacked_updates,
            undelivered_mass=(
                self._abandoned_mass - self._healed_mass + unacked_mass
            ),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _attempt(self, pass_index: int, flight: _Flight, live) -> None:
        """One transmission attempt: consult the plan, deliver or lose."""
        batch = flight.batch
        self.pass_attempts += 1
        flight.next_retry_pass = pass_index + self.config.retry_delay(flight.attempts)
        if self.plan.link_blocked(pass_index, batch.sender_peer, batch.receiver_peer):
            self.stats.partition_blocked_sends += 1
            self._obs.blocked.inc()
            return
        fate = self.plan.roll_send(pass_index, batch.sender_peer, batch.receiver_peer)
        if fate.dropped:
            self.stats.dropped_updates += len(batch)
            self._obs.dropped.inc(len(batch))
            return
        if fate.duplicated:
            self.stats.duplicated_updates += len(batch)
            self._obs.duplicated.inc(len(batch))
        copies = [fate.delay] + ([fate.duplicate_delay] if fate.duplicated else [])
        for delay in copies:
            if delay > 0:
                self.stats.delayed_updates += len(batch)
                self._obs.delayed.inc(len(batch))
                self._delayed.append(
                    (pass_index + delay, self._delay_seq, flight, flight.attempts)
                )
                self._delay_seq += 1
            else:
                self._deliver_copy(pass_index, flight, flight.attempts, live)

    def _deliver_copy(self, pass_index: int, flight: _Flight, attempt: int, live) -> None:
        """One copy of a batch arrives at the receiver's doorstep."""
        batch = flight.batch
        if not live[batch.receiver_peer]:
            # Receiver down (churn or crash): the copy is lost on the
            # floor; the retry machinery will try again later.
            return
        applied = self._deliver(batch)
        self.pass_delivered += len(batch)
        self.pass_batches += 1
        if attempt > 1:
            self.pass_resent += len(batch)
        if flight.delivered_once:
            self.stats.redeliveries_suppressed += len(batch) - applied
            self._obs.suppressed.inc(len(batch) - applied)
        flight.delivered_once = True
        # The receiver acknowledges; the ack can be lost too.
        still_tracked = flight.fid in self._flights
        if still_tracked:
            self.stats.acks_sent += 1
            self._obs.acks.inc()
            if self.plan.roll_ack_drop(pass_index):
                self.stats.acks_dropped += 1
                self._obs.ack_drops.inc()
            else:
                del self._flights[flight.fid]

    def _abandon(self, flight: _Flight, pass_index: int, live) -> None:
        """Retry budget exhausted: record the black hole and park the
        batch into store-and-resend instead of dropping it (§3.1) —
        if its link heals or its receiver returns, it relaunches."""
        batch = flight.batch
        key = (batch.sender_peer, batch.receiver_peer)
        self._black_holed[key] = self._black_holed.get(key, 0) + len(batch)
        self.stats.abandoned_updates += len(batch)
        self._obs.abandoned.inc(len(batch))
        self._abandoned_mass += sum(abs(u.value) for u in batch)
        del self._flights[flight.fid]
        undeliverable = self.plan.link_blocked(
            pass_index, batch.sender_peer, batch.receiver_peer
        ) or not live[batch.receiver_peer]
        self._parked[self._next_park] = _Parked(
            batch=batch,
            parked_at_pass=pass_index,
            undeliverable=undeliverable,
        )
        self._next_park += 1
        self.stats.parked_updates += len(batch)
        self._obs.parked.inc(len(batch))
