"""`repro faults`: convergence-under-faults sweep (Table-1 style).

The paper's Table 1 reports passes-to-convergence as peer availability
degrades; this experiment asks the analogous robustness question for
the *wire*: how much does convergence cost as message loss climbs,
with duplication, delivery delay and two mid-run peer crashes thrown
in?  Each row runs the protocol-level simulator over the same seeded
graph and placement with a fresh :class:`~repro.faults.plan.FaultPlan`
at one loss rate, and scores the result against the centralized
reference solution by relative L1 error.

Everything is seeded: the same ``seed`` regenerates the same table,
byte for byte — the property the regression tests pin down.

Heavy engine imports happen inside :func:`run_fault_experiment` so this
module can be imported from :mod:`repro.faults` without dragging the
whole engine stack (and a circular import) behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "FaultExperimentConfig",
    "FaultTrial",
    "FaultExperimentResult",
    "run_fault_experiment",
]


@dataclass(frozen=True)
class FaultExperimentConfig:
    """Parameters of the `repro faults` sweep.

    Attributes
    ----------
    num_documents, num_peers:
        Scale of the seeded Broder-style graph and its random placement.
    epsilon, damping:
        Algorithm parameters (paper defaults).
    loss_rates:
        One table row per rate (ISSUE default: 0 / 1 / 5 / 20 %).
    duplicate_rate, delay_rate, max_delay_passes:
        Held constant across rows so loss is the only moving part.
    crash_passes:
        Two mid-run crash times; the crashed peers are spread across
        the population deterministically.
    crash_down_passes:
        Reboot delay after each crash.
    max_passes:
        Per-row pass budget.
    seed:
        Master seed: graph, placement, and every row's fault plan
        derive from it, so the whole table replays exactly.
    """

    num_documents: int = 200
    num_peers: int = 16
    epsilon: float = 1e-3
    damping: float = 0.85
    loss_rates: Tuple[float, ...] = (0.0, 0.01, 0.05, 0.20)
    duplicate_rate: float = 0.02
    delay_rate: float = 0.05
    max_delay_passes: int = 2
    crash_passes: Tuple[int, ...] = (3, 7)
    crash_down_passes: int = 2
    max_passes: int = 2_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise ValueError("num_documents must be >= 1")
        if self.num_peers < 1:
            raise ValueError("num_peers must be >= 1")
        if not self.loss_rates:
            raise ValueError("loss_rates must not be empty")
        if self.max_passes < 1:
            raise ValueError("max_passes must be >= 1")

    def spec_for(self, loss_rate: float) -> FaultSpec:
        """The fault mix of one table row: the given loss rate plus the
        config's constant duplication/delay/crash schedule."""
        crashes = tuple(
            (int(t), (1 + 3 * i) % self.num_peers)
            for i, t in enumerate(self.crash_passes)
        )
        return FaultSpec(
            drop_rate=float(loss_rate),
            duplicate_rate=self.duplicate_rate,
            delay_rate=self.delay_rate,
            max_delay_passes=self.max_delay_passes,
            crashes=crashes,
            crash_down_passes=self.crash_down_passes,
        )


@dataclass(frozen=True)
class FaultTrial:
    """One row of the table: the run outcome at one loss rate."""

    loss_rate: float
    converged: bool
    passes: int
    messages: int
    retries: int
    dropped: int
    duplicated: int
    crashes: int
    l1_error: float


@dataclass(frozen=True)
class FaultExperimentResult:
    """All rows plus enough context to render and regression-test."""

    config: FaultExperimentConfig
    trials: Tuple[FaultTrial, ...]

    def render(self) -> str:
        """The plain-text table the `repro faults` CLI prints."""
        # Lazy: repro.analysis's package init pulls in the engines.
        from repro.analysis.tables import format_table

        rows = [
            (
                f"{t.loss_rate:.0%}",
                t.converged,
                t.passes,
                t.messages,
                t.retries,
                t.dropped,
                t.duplicated,
                t.crashes,
                t.l1_error,
            )
            for t in self.trials
        ]
        return format_table(
            [
                "loss", "converged", "passes", "messages", "retries",
                "dropped", "duplicated", "crashes", "L1 vs reference",
            ],
            rows,
            title=(
                "Convergence under injected faults "
                f"({self.config.num_documents} docs, "
                f"{self.config.num_peers} peers, "
                f"eps={self.config.epsilon:g}, "
                f"seed={self.config.seed})"
            ),
        )


def run_fault_experiment(
    config: FaultExperimentConfig = FaultExperimentConfig(),
) -> FaultExperimentResult:
    """Run the sweep: one protocol-simulator run per loss rate.

    Every row shares the graph, placement, duplication/delay rates and
    crash schedule; only the loss rate (and the row's derived plan
    seed) changes.  The relative L1 error is
    ``|R_d - R_c|_1 / |R_c|_1`` against the centralized reference.
    """
    # Imported here, not at module top: repro.faults re-exports this
    # function, and the engines import repro.faults.plan.
    from repro.core.pagerank import pagerank_reference
    from repro.graphs import broder_graph
    from repro.p2p.network import DocumentPlacement, P2PNetwork
    from repro.simulation.engine import P2PPagerankSimulation

    graph = broder_graph(config.num_documents, seed=config.seed)
    reference = pagerank_reference(graph).ranks
    ref_mass = float(np.abs(reference).sum())

    trials = []
    for i, rate in enumerate(config.loss_rates):
        placement = DocumentPlacement.random(
            config.num_documents, config.num_peers, seed=config.seed
        )
        network = P2PNetwork(config.num_peers, placement, build_ring=False)
        plan = FaultPlan(config.spec_for(rate), seed=config.seed + 1 + i)
        sim = P2PPagerankSimulation(
            graph,
            network,
            damping=config.damping,
            epsilon=config.epsilon,
            faults=plan,
        )
        report = sim.run(max_passes=config.max_passes)
        stats = sim.transport.stats
        l1 = float(np.abs(report.ranks - reference).sum()) / ref_mass
        trials.append(
            FaultTrial(
                loss_rate=float(rate),
                converged=report.converged,
                passes=report.passes,
                messages=report.total_messages,
                retries=stats.retries,
                dropped=stats.dropped_updates,
                duplicated=stats.duplicated_updates,
                crashes=stats.crashes,
                l1_error=l1,
            )
        )
    return FaultExperimentResult(config=config, trials=tuple(trials))
