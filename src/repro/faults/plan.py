"""Deterministic fault injection plans (the chaos side of §2.3, §4.3).

The paper's central robustness claim is that chaotic pagerank iteration
tolerates the messiness of a real P2P network, yet the transport both
engines assumed before this module was perfectly lossless and ordered:
churn only masked *availability*, and §3.1 store-and-resend never
actually lost a message.  A :class:`FaultPlan` closes that gap — it is
a seeded oracle the transport layer consults for every send attempt,
injecting:

* **message drops** — the batch vanishes; no ack ever arrives;
* **duplication** — the batch is delivered twice (the receiver's
  version dedup must make the second copy a no-op);
* **delay / reorder** — delivery is postponed a bounded number of
  passes, so later sends can overtake earlier ones;
* **peer crashes with state loss** — distinct from a graceful §3.1
  departure: the crashed peer's in-flight outbox, deferred queues and
  retransmit buffers are wiped, not preserved;
* **transient link partitions** — a (peer, peer) pair, or one peer
  against everyone (a *black hole*), exchanges nothing for a spell.

Every decision is drawn from one seeded generator in deterministic
call order, so a run under a given plan — and the Table-1-style
convergence tables built from it (``repro faults``) — reproduces
exactly.  A plan is therefore *stateful*: construct a fresh one (same
seed) per run, never share one instance across runs.

Asynchronous-iteration theory (Kollias et al.; Zhao et al., PAPERS.md)
says convergence survives bounded staleness and randomized unreliable
schedules; the tests under ``tests/faults/`` demonstrate it
experimentally against this plan plus the reliable-delivery layer in
:mod:`repro.faults.transport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._util import as_generator, check_probability
from repro._util.rng import SeedLike

__all__ = ["Partition", "FaultSpec", "SendFate", "FaultPlan"]


@dataclass(frozen=True)
class Partition:
    """A link (or black-hole) partition spell.

    Blocks every send between ``peer_a`` and ``peer_b`` — in both
    directions — while ``start_pass <= t < end_pass``.  ``peer_b=None``
    black-holes ``peer_a`` against *every* counterpart (the scenario
    the residual-stagnation detector exists for).  ``end_pass=None``
    means the partition never heals.
    """

    peer_a: int
    peer_b: Optional[int] = None
    start_pass: int = 0
    end_pass: Optional[int] = None

    def __post_init__(self) -> None:
        if self.peer_a < 0:
            raise ValueError(f"peer_a must be >= 0, got {self.peer_a}")
        if self.peer_b is not None and self.peer_b == self.peer_a:
            raise ValueError("peer_b must differ from peer_a")
        if self.start_pass < 0:
            raise ValueError(f"start_pass must be >= 0, got {self.start_pass}")
        if self.end_pass is not None and self.end_pass <= self.start_pass:
            raise ValueError("end_pass must be > start_pass")

    def active(self, pass_index: int) -> bool:
        """True while the spell covers ``pass_index``."""
        if pass_index < self.start_pass:
            return False
        return self.end_pass is None or pass_index < self.end_pass

    def blocks(self, pass_index: int, sender: int, receiver: int) -> bool:
        """True if this spell blocks a ``sender -> receiver`` transfer."""
        if not self.active(pass_index):
            return False
        if self.peer_b is None:
            return self.peer_a in (sender, receiver)
        return {sender, receiver} == {self.peer_a, self.peer_b}


@dataclass(frozen=True)
class FaultSpec:
    """What to inject and how hard (all rates are per send attempt).

    Attributes
    ----------
    drop_rate:
        Probability a sent batch silently vanishes.
    duplicate_rate:
        Probability a delivered batch arrives twice.
    delay_rate:
        Probability a delivered batch is postponed; the delay is
        uniform on ``1 .. max_delay_passes``, which reorders it behind
        everything sent meanwhile.
    max_delay_passes:
        Upper bound on injected delivery delay.
    ack_drop_rate:
        Probability the *acknowledgement* of a delivered batch is lost
        (forcing a redundant retransmit the receiver must suppress).
        ``None`` (default) mirrors ``drop_rate`` — data and ack travel
        the same lossy links.
    crashes:
        ``(pass_index, peer_id)`` pairs or ``(pass_index, peer_id,
        down_passes)`` triples: at the start of that pass the peer
        crashes, losing volatile state (outbox, deferred queue,
        retransmit buffer).  A pair stays down for the spec-wide
        ``crash_down_passes``; a triple carries its own down spell
        (restart-after semantics, docs/PROTOCOL.md §15.4).  Entries
        normalise to triples, so ``spec.crashes`` always yields
        ``(pass, peer, down)``.
    crash_down_passes:
        Default passes a crashed peer stays unavailable before
        rebooting (used by 2-tuple ``crashes`` entries).
    partitions:
        :class:`Partition` spells, checked on every send attempt.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_passes: int = 3
    ack_drop_rate: Optional[float] = None
    crashes: Tuple[Tuple[int, ...], ...] = ()
    crash_down_passes: int = 2
    partitions: Tuple[Partition, ...] = ()

    def __post_init__(self) -> None:
        check_probability("drop_rate", self.drop_rate)
        check_probability("duplicate_rate", self.duplicate_rate)
        check_probability("delay_rate", self.delay_rate)
        if self.ack_drop_rate is not None:
            check_probability("ack_drop_rate", self.ack_drop_rate)
        if self.max_delay_passes < 1:
            raise ValueError(
                f"max_delay_passes must be >= 1, got {self.max_delay_passes}"
            )
        if self.crash_down_passes < 1:
            raise ValueError(
                f"crash_down_passes must be >= 1, got {self.crash_down_passes}"
            )
        normalised = []
        for entry in self.crashes:
            if len(entry) == 2:
                t, p = entry
                down = self.crash_down_passes
            elif len(entry) == 3:
                t, p, down = entry
            else:
                raise ValueError(
                    f"crash entries must be (pass, peer[, down]), got {entry!r}"
                )
            if t < 0 or p < 0:
                raise ValueError(f"crash entries must be non-negative, got ({t}, {p})")
            if down < 1:
                raise ValueError(
                    f"crash down_passes must be >= 1, got {down} for peer {p}"
                )
            normalised.append((int(t), int(p), int(down)))
        # Normalise to tuples so specs hash/compare and cannot be
        # mutated after plans were built from them.
        object.__setattr__(self, "crashes", tuple(normalised))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def effective_ack_drop_rate(self) -> float:
        return self.drop_rate if self.ack_drop_rate is None else self.ack_drop_rate

    @property
    def injects_anything(self) -> bool:
        """False for the all-zero spec (useful for no-op assertions)."""
        return bool(
            self.drop_rate
            or self.duplicate_rate
            or self.delay_rate
            or self.crashes
            or self.partitions
        )


@dataclass(frozen=True)
class SendFate:
    """One send attempt's injected outcome.

    ``dropped`` wins over everything; otherwise the batch arrives after
    ``delay`` passes (0 = this pass) and, if ``duplicated``, a second
    copy arrives after ``duplicate_delay`` passes.
    """

    dropped: bool = False
    duplicated: bool = False
    delay: int = 0
    duplicate_delay: int = 0


_CLEAN = SendFate()


class FaultPlan:
    """Seeded fault oracle: the transport asks, the plan answers.

    Parameters
    ----------
    spec:
        The :class:`FaultSpec` describing what to inject.
    seed:
        Deterministic seed; identical (spec, seed) pairs answer every
        query stream identically.
    """

    def __init__(self, spec: Optional[FaultSpec] = None, *, seed: SeedLike = None) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        self._rng = as_generator(seed)
        self._crashes_by_pass: Dict[int, List[Tuple[int, int]]] = {}
        for t, p, down in self.spec.crashes:
            self._crashes_by_pass.setdefault(t, []).append((p, down))

    # ------------------------------------------------------------------
    # Scheduled faults
    # ------------------------------------------------------------------
    def crashes_at(self, pass_index: int) -> Tuple[int, ...]:
        """Peers that crash at the start of ``pass_index``."""
        return tuple(p for p, _ in self._crashes_by_pass.get(pass_index, ()))

    def down_passes_for(self, pass_index: int, peer: int) -> int:
        """The down spell of a crash scheduled at ``(pass_index, peer)``
        (falls back to the spec-wide default for unknown queries)."""
        for p, down in self._crashes_by_pass.get(pass_index, ()):
            if p == peer:
                return down
        return self.spec.crash_down_passes

    def crash_events(self) -> Tuple[Tuple[int, int, int], ...]:
        """The full crash schedule as sorted ``(pass, peer, down)``
        triples — the supervisor's restart-after timeline
        (docs/PROTOCOL.md §15.4)."""
        return tuple(sorted(self.spec.crashes))

    def link_blocked(self, pass_index: int, sender: int, receiver: int) -> bool:
        """True if a partition spell blocks this transfer right now."""
        return any(
            p.blocks(pass_index, sender, receiver) for p in self.spec.partitions
        )

    def partitions_active(self, pass_index: int) -> Tuple[Partition, ...]:
        """The partition spells covering ``pass_index``."""
        return tuple(p for p in self.spec.partitions if p.active(pass_index))

    # ------------------------------------------------------------------
    # Randomised faults
    # ------------------------------------------------------------------
    def roll_send(self, pass_index: int, sender: int, receiver: int) -> SendFate:
        """Draw the fate of one batch send attempt.

        Partition checks are the caller's job (:meth:`link_blocked`);
        this draws only the randomised drop/duplicate/delay outcome.
        """
        s = self.spec
        if not (s.drop_rate or s.duplicate_rate or s.delay_rate):
            return _CLEAN
        if s.drop_rate and self._rng.random() < s.drop_rate:
            return SendFate(dropped=True)
        duplicated = bool(s.duplicate_rate) and self._rng.random() < s.duplicate_rate
        delay = 0
        dup_delay = 0
        if s.delay_rate:
            if self._rng.random() < s.delay_rate:
                delay = 1 + int(self._rng.integers(s.max_delay_passes))
            if duplicated and self._rng.random() < s.delay_rate:
                dup_delay = 1 + int(self._rng.integers(s.max_delay_passes))
        return SendFate(
            dropped=False,
            duplicated=duplicated,
            delay=delay,
            duplicate_delay=dup_delay,
        )

    def roll_ack_drop(self, pass_index: int) -> bool:
        """Draw whether a delivered batch's acknowledgement is lost."""
        rate = self.spec.effective_ack_drop_rate
        return bool(rate) and self._rng.random() < rate

    def edge_delivery_mask(self, pass_index: int, n_candidates: int) -> np.ndarray:
        """Vectorized-engine hook: which of ``n_candidates`` edge
        deliveries survive this pass (True = delivered).

        The vectorized engine models the reliable layer's *outcome*
        rather than its mechanism: a dropped edge delivery is parked in
        the store-and-resend state and retried next pass — exactly the
        eventual-delivery guarantee the protocol simulator implements
        with acks and backoff.  Crash and partition injection stay
        simulator-only (they are per-peer state machines, not per-edge
        masks).
        """
        if n_candidates == 0 or not self.spec.drop_rate:
            return np.ones(n_candidates, dtype=bool)
        return self._rng.random(n_candidates) >= self.spec.drop_rate
