"""repro — Distributed PageRank for P2P Systems (HPDC 2003), reproduced.

A from-scratch implementation of the paper's full system:

* **Core algorithm** (:mod:`repro.core`): chaotic (asynchronous)
  iterative distributed pagerank with the stop-sending-below-ε rule,
  the synchronous reference solver, and incremental document
  insert/delete propagation.
* **Substrates** (:mod:`repro.graphs`, :mod:`repro.p2p`): power-law
  document link graphs (Broder model), a Chord-like DHT with GUIDs and
  finger routing, peer state machines, churn models with
  store-and-resend, and location caching.
* **Simulation** (:mod:`repro.simulation`): the §4.2 pass-based
  simulator on explicit peers, a discrete-event truly-asynchronous
  simulator, and the Eq. 4 execution-time model.
* **Search** (:mod:`repro.search`): the synthetic corpus, distributed
  inverted index with pagerank column, incremental top-x% search,
  Bloom-assisted intersection, and the FASD scoring variant.
* **Evaluation** (:mod:`repro.analysis`, :mod:`repro.crawler`): drivers
  regenerating every table of the paper and the §5 crawler comparison.

Quickstart
----------
>>> from repro.graphs import broder_graph
>>> from repro.core import ChaoticPagerank, pagerank_reference
>>> from repro.p2p import DocumentPlacement
>>> g = broder_graph(10_000, seed=0)
>>> placement = DocumentPlacement.random(g.num_nodes, 500, seed=1)
>>> report = ChaoticPagerank(g, placement.assignment, epsilon=1e-3).run()
>>> report.converged
True
"""

from repro.core import (
    ChaoticPagerank,
    PagerankResult,
    RunReport,
    distributed_pagerank,
    pagerank_reference,
    simulate_delete,
    simulate_insert,
)
from repro.graphs import LinkGraph, broder_graph
from repro.p2p import ChordRing, DocumentPlacement, FixedFractionChurn, P2PNetwork
from repro.search import (
    DistributedIndex,
    baseline_search,
    generate_queries,
    incremental_search,
    synthesize_corpus,
)
from repro.simulation import AsyncEventSimulation, P2PPagerankSimulation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LinkGraph",
    "broder_graph",
    "pagerank_reference",
    "PagerankResult",
    "ChaoticPagerank",
    "distributed_pagerank",
    "RunReport",
    "simulate_insert",
    "simulate_delete",
    "DocumentPlacement",
    "P2PNetwork",
    "ChordRing",
    "FixedFractionChurn",
    "P2PPagerankSimulation",
    "AsyncEventSimulation",
    "synthesize_corpus",
    "DistributedIndex",
    "generate_queries",
    "baseline_search",
    "incremental_search",
]
