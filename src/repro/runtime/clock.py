"""Clocks for the concurrent peer runtime (virtual vs wall time).

The paper's protocol is asynchronous: peers act whenever messages
arrive, not on a shared pass counter.  To make such a system
*reproducible* — the bar every other layer of this repo meets — the
runtime abstracts time behind a clock with two implementations:

* :class:`VirtualClock` — a manually advanced logical clock.  The
  deterministic scheduler (:class:`repro.runtime.AsyncPeerRuntime`)
  owns it and advances it to the next scheduled event, so a seeded run
  is a pure function of its inputs: same seed, same event order, same
  ranks.  This is the asynchronous analogue of the pass engines' pass
  index (docs/PROTOCOL.md §14).
* :class:`RealClock` — the asyncio event-loop clock, for free-running
  mode (the local TCP transport), where delivery timing comes from the
  actual network stack and runs are *not* reproducible byte-for-byte.

``repro.runtime`` is deliberately outside the DET002 deterministic
layers (docs/STATIC_ANALYSIS.md): the real-clock mode must read wall
time.  Determinism is instead guaranteed per-mode — the virtual-clock
path never consults anything but this object.
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = ["VirtualClock", "RealClock"]


class VirtualClock:
    """Manually advanced logical time (deterministic scheduler mode).

    Only the runtime's coordinator advances it; everything else just
    reads :meth:`now`.  Time is a float in abstract *time units*; the
    in-memory transport's latency model and the reliability layer's
    retry timers are expressed in the same units.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Jump forward to ``when`` (never backward)."""
        if when < self._now:
            raise ValueError(
                f"virtual time cannot go backward: {when} < {self._now}"
            )
        self._now = float(when)


class RealClock:
    """Event-loop wall clock (free-running / TCP mode).

    Reads ``asyncio``'s monotonic loop time, normalised so ``now()``
    starts near 0 at construction — comparable to a virtual-clock run's
    timeline, but *not* reproducible across runs.
    """

    def __init__(self) -> None:
        self._origin: Optional[float] = None

    def _loop_time(self) -> float:
        return asyncio.get_event_loop().time()

    def now(self) -> float:
        """Seconds since this clock was first read."""
        if self._origin is None:
            self._origin = self._loop_time()
        return self._loop_time() - self._origin
