"""Local TCP transport: the runtime's envelopes over real sockets.

:class:`TcpTransport` runs the concurrent runtime's message exchange
over loopback TCP, proving the wire protocol round-trips outside
process memory.  Topology is a central *switch*: one asyncio server on
localhost, one client connection per peer.  A peer introduces itself
with a single ``hello`` line carrying its id; after that every line is
one :class:`~repro.runtime.transport.Envelope` encoded as JSON
(:func:`~repro.runtime.transport.encode_envelope`), routed by the
switch to the receiver's connection and pumped into the receiver's
mailbox (docs/PROTOCOL.md §14).

Scope: free-running mode only (real clock, OS-scheduled delivery
order, no fault injection) — deterministic differential runs use
:class:`~repro.runtime.transport.InMemoryTransport`.  Reliability is
unchanged: flights, acks and retries live above the transport in
:class:`~repro.runtime.reliability.FlightTracker`.

Connection loss is a surfaced *event*, not an exception: a peer whose
client connection drops mid-run gets one reconnect-once grace redial;
a second loss (or a failed redial) lands in :attr:`TcpTransport.drop_events`
and fires the :meth:`TcpTransport.set_on_peer_drop` callback so the
caller can decide to restart or excommunicate the peer
(docs/PROTOCOL.md §15.3).  Switch-side disconnects are absorbed the
same way — the forwarding loop never propagates a
``ConnectionResetError`` out of the server task.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional

from repro.p2p.messages import BatchAck, MessageBatch
from repro.runtime.transport import (
    KIND_ACK,
    KIND_BATCH,
    Envelope,
    Transport,
    decode_envelope,
    encode_envelope,
)

__all__ = ["TcpTransport"]


class TcpTransport(Transport):
    """Central-switch loopback TCP transport (free-running mode only).

    Parameters
    ----------
    host:
        Interface to bind; loopback by default.
    port:
        Listening port; 0 picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._mailboxes: Dict[int, object] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        # Switch-side writer per peer id, registered at hello.
        self._switch_writers: Dict[int, asyncio.StreamWriter] = {}
        # Client-side connection per peer id.
        self._client_writers: Dict[int, asyncio.StreamWriter] = {}
        self._pumps: List[asyncio.Task] = []
        self._switch_tasks: List[asyncio.Task] = []
        # Lines accepted by the switch but not yet landed in a mailbox;
        # part of the runtime's idle check.
        self._in_flight = 0
        self._started = False
        self._stopping = False
        #: ``(peer_id, reason)`` connection drops that survived the
        #: reconnect-once grace path (a transport event, not a crash).
        self.drop_events: List[tuple] = []
        self._on_peer_drop = None
        #: Successful grace-path redials.
        self.reconnects = 0
        #: Switch-side connection losses absorbed by the router.
        self.switch_disconnects = 0
        #: Sends refused because the sender's connection was closing.
        self.sends_refused = 0

    def set_on_peer_drop(self, callback) -> None:
        """Install a ``callback(peer_id, reason)`` fired when a peer's
        connection is lost beyond the reconnect-once grace path."""
        self._on_peer_drop = callback

    def _record_drop(self, peer_id: int, reason: str) -> None:
        self.drop_events.append((int(peer_id), reason))
        if self._on_peer_drop is not None:
            self._on_peer_drop(int(peer_id), reason)

    # ------------------------------------------------------------------
    def connect(self, peer_id: int, mailbox) -> None:
        if self._started:
            raise RuntimeError("connect all peers before start()")
        self._mailboxes[int(peer_id)] = mailbox

    @property
    def pending(self) -> int:
        """Envelopes accepted by the switch but not yet in a mailbox."""
        return self._in_flight

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the switch, then dial one connection per peer."""
        if self._started:
            raise RuntimeError("transport already started")
        self._server = await asyncio.start_server(
            self._handle_switch_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for peer_id in sorted(self._mailboxes):
            reader, writer = await asyncio.open_connection(self.host, self.port)
            writer.write(
                (json.dumps({"hello": peer_id}, separators=(",", ":")) + "\n").encode()
            )
            await writer.drain()
            self._client_writers[peer_id] = writer
            self._pumps.append(
                asyncio.create_task(self._client_pump(peer_id, reader))
            )
        # The switch learns each peer's writer from its hello line;
        # wait until every registration has landed before sending.
        while len(self._switch_writers) < len(self._mailboxes):
            await asyncio.sleep(0)
        self._started = True

    async def stop(self) -> None:
        """Close every connection and the switch server."""
        if self._server is None:
            return
        self._stopping = True
        for writer in self._client_writers.values():
            writer.close()
        self._server.close()
        await self._server.wait_closed()
        for task in self._pumps + self._switch_tasks:
            task.cancel()
        await asyncio.gather(
            *self._pumps, *self._switch_tasks, return_exceptions=True
        )
        self._server = None
        self._started = False

    # ------------------------------------------------------------------
    # Switch side
    # ------------------------------------------------------------------
    async def _handle_switch_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._switch_tasks.append(task)
        hello = await reader.readline()
        if not hello:
            return
        peer_id = int(json.loads(hello)["hello"])
        self._switch_writers[peer_id] = writer
        try:
            while True:
                line = await reader.readline()
                if not line:
                    # Clean EOF: the peer hung up (or is redialling);
                    # absorbed as a switch event, never an exception.
                    self._note_switch_loss(peer_id, writer)
                    return
                receiver = int(json.loads(line)["receiver"])
                out = self._switch_writers.get(receiver)
                if out is None or out.is_closing():
                    self._in_flight -= 1
                    continue
                try:
                    out.write(line)
                    await out.drain()
                except ConnectionError:
                    # The *receiver's* connection died mid-forward:
                    # drop the line, deregister the dead writer, and
                    # keep routing for everyone else.
                    self._in_flight -= 1
                    self._note_switch_loss(receiver, out)
        except asyncio.CancelledError:
            return
        except ConnectionError:
            self._note_switch_loss(peer_id, writer)
            return

    def _note_switch_loss(self, peer_id: int, writer: asyncio.StreamWriter) -> None:
        """Deregister a dead switch-side connection (idempotent)."""
        if self._switch_writers.get(peer_id) is writer:
            del self._switch_writers[peer_id]
            if not self._stopping:
                self.switch_disconnects += 1

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    async def _client_pump(self, peer_id: int, reader: asyncio.StreamReader) -> None:
        """Read routed lines into this peer's mailbox.

        Connection loss gets one grace redial (reconnect-once); a
        second loss — or a failed redial — surfaces as a drop event.
        """
        mailbox = self._mailboxes[peer_id]
        redialled = False
        while True:
            try:
                line = await reader.readline()
            except asyncio.CancelledError:
                return
            except ConnectionError:
                line = b""
            if line:
                mailbox.put(decode_envelope(line))
                self._in_flight -= 1
                continue
            if self._stopping:
                return
            if redialled:
                self._record_drop(peer_id, "connection lost after reconnect")
                return
            redialled = True
            new_reader = await self._redial(peer_id)
            if new_reader is None:
                self._record_drop(peer_id, "reconnect failed")
                return
            self.reconnects += 1
            reader = new_reader

    async def _redial(self, peer_id: int) -> Optional[asyncio.StreamReader]:
        """Reconnect-once grace path: dial the switch again, re-hello,
        and swap in the fresh connection.  Returns the new reader, or
        None when the redial itself fails."""
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
            writer.write(
                (json.dumps({"hello": peer_id}, separators=(",", ":")) + "\n").encode()
            )
            await writer.drain()
        except (ConnectionError, OSError):
            return None
        old = self._client_writers.get(peer_id)
        if old is not None and not old.is_closing():
            old.close()
        self._client_writers[peer_id] = writer
        return reader

    def _submit(self, envelope: Envelope) -> None:
        if not self._started:
            raise RuntimeError("transport not started; call start() first")
        writer = self._client_writers[envelope.sender]
        if writer.is_closing():
            # Connection mid-redial (or gone): refuse the send; the
            # flight tracker's retransmit recovers it end-to-end.
            self.sends_refused += 1
            return
        self._in_flight += 1
        writer.write(encode_envelope(envelope))

    def send_batch(
        self, batch: MessageBatch, *, flight_id: int, attempt: int, now: float
    ) -> None:
        self._submit(
            Envelope(
                kind=KIND_BATCH,
                sender=batch.sender_peer,
                receiver=batch.receiver_peer,
                payload=batch,
                flight_id=flight_id,
                attempt=attempt,
                send_time=now,
            )
        )

    def send_ack(self, ack: BatchAck, *, now: float) -> None:
        self._submit(
            Envelope(
                kind=KIND_ACK,
                sender=ack.sender_peer,
                receiver=ack.receiver_peer,
                payload=ack,
                flight_id=ack.flight_id,
                send_time=now,
            )
        )
