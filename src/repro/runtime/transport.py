"""Pluggable message transports for the concurrent peer runtime.

The runtime's peers exchange exactly the wire messages the rest of the
repo prices — :class:`~repro.p2p.messages.MessageBatch` payloads of
24-byte :class:`~repro.p2p.messages.PagerankUpdate`\\ s plus
:class:`~repro.p2p.messages.BatchAck` acknowledgements (paper §4.6.1;
docs/PROTOCOL.md §2, §13) — wrapped in an :class:`Envelope` carrying
transport metadata (flight id, attempt number, timestamps).

Two transports ship:

* :class:`InMemoryTransport` — a seeded, latency-modelled delivery
  queue ordered by ``(deliver_time, sequence)``.  Deterministic given
  its seed and the runtime's call order; this is what the differential
  tests and the benchmark harness drive.  Message loss, duplication,
  delay and partitions come from the same seeded
  :class:`~repro.faults.plan.FaultPlan` oracle the pass-based engines
  use, and absent receivers (churn) hold deliveries until the peer
  returns — the §3.1 store-and-resend rule in continuous time.
* :class:`~repro.runtime.tcp.TcpTransport` — the same envelopes as
  JSON lines over localhost TCP sockets (:func:`encode_envelope` /
  :func:`decode_envelope`), for free-running real-clock mode.

Both implement the small :class:`Transport` interface so the runtime
and its tests treat them interchangeably.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro._util import as_generator
from repro._util.rng import SeedLike
from repro.faults.plan import FaultPlan
from repro.p2p.messages import BatchAck, MessageBatch, PagerankUpdate
from repro.simulation.events import FixedLatency, OnOffSchedule

__all__ = [
    "Envelope",
    "Transport",
    "InMemoryTransport",
    "encode_envelope",
    "decode_envelope",
]

#: Latency model signature shared with the discrete-event simulator.
LatencyModel = Callable[[np.random.Generator, int, int], float]

KIND_BATCH = "batch"
KIND_ACK = "ack"


@dataclass(frozen=True)
class Envelope:
    """One transport-level transfer: a batch flight copy or an ack.

    Attributes
    ----------
    kind:
        ``"batch"`` or ``"ack"``.
    sender, receiver:
        Peer endpoints (for an ack, ``sender`` is the acknowledging
        receiver of the original batch).
    payload:
        The wire message — :class:`~repro.p2p.messages.MessageBatch`
        or :class:`~repro.p2p.messages.BatchAck`.
    flight_id:
        The reliability layer's transfer id (docs/PROTOCOL.md §13).
    attempt:
        1-based transmission attempt of the flight this copy belongs
        to (> 1 means it is a retransmit).
    send_time:
        Clock reading at submission.
    """

    kind: str
    sender: int
    receiver: int
    payload: Union[MessageBatch, BatchAck]
    flight_id: int
    attempt: int = 1
    send_time: float = 0.0

    @property
    def size_bytes(self) -> int:
        """Priced wire size of the payload (paper's 24-byte accounting)."""
        return self.payload.size_bytes


class Transport:
    """Interface every runtime transport implements.

    ``connect`` registers a peer's mailbox; ``send_batch`` /
    ``send_ack`` submit wire messages.  Lifecycle hooks are async
    no-ops by default (the TCP transport overrides them to run its
    socket machinery).
    """

    def connect(self, peer_id: int, mailbox) -> None:
        raise NotImplementedError

    def send_batch(
        self, batch: MessageBatch, *, flight_id: int, attempt: int, now: float
    ) -> None:
        raise NotImplementedError

    def send_ack(self, ack: BatchAck, *, now: float) -> None:
        raise NotImplementedError

    async def start(self) -> None:
        """Bring up transport machinery (sockets, pumps)."""

    async def stop(self) -> None:
        """Tear down transport machinery."""


class InMemoryTransport(Transport):
    """Seeded in-process delivery queue (deterministic scheduler mode).

    Every submitted envelope is scheduled at ``now + latency`` and
    delivered in ``(deliver_time, sequence)`` order when the runtime
    calls :meth:`deliver_due` — the total order that makes a
    virtual-clock run reproducible.

    Parameters
    ----------
    latency:
        Cross-peer latency model ``(rng, src, dst) -> time units``;
        must be strictly positive (zero latency would let a round feed
        itself).  Defaults to ``FixedLatency(1.0)``.
    faults:
        Optional seeded :class:`~repro.faults.plan.FaultPlan`.  Drop,
        duplication, delay and partition decisions are honoured
        exactly as in the pass-based reliable transport; injected
        crash schedules are pass-engine-only and ignored here.
    availability:
        Optional :class:`~repro.simulation.events.OnOffSchedule`.  A
        delivery addressed to a peer in a down spell is held and
        re-scheduled for the peer's return (§3.1 store-and-resend).
    pass_time:
        Time units corresponding to one pass of the pass-based
        engines; scales the plan's pass-denominated delays and
        partition spells onto the runtime's clock.
    seed:
        Seed for latency sampling.
    tiebreak:
        Optional bijective key over the submission sequence number,
        controlling the delivery order of envelopes due at the *same*
        virtual time (the interleaving explorer's perturbation hook —
        see :func:`repro.sanitize.explorer.perturbation`).  ``None``
        keeps plain submission order.
    """

    def __init__(
        self,
        *,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        availability: Optional[OnOffSchedule] = None,
        pass_time: float = 1.0,
        seed: SeedLike = None,
        tiebreak: Optional[Callable[[int], int]] = None,
    ) -> None:
        if pass_time <= 0:
            raise ValueError(f"pass_time must be > 0, got {pass_time}")
        self.latency: LatencyModel = latency if latency is not None else FixedLatency(1.0)
        self.faults = faults
        self.availability = availability
        self.pass_time = float(pass_time)
        self._rng = as_generator(seed)
        self._tiebreak = tiebreak
        #: Optional :class:`repro.sanitize.hb.RuntimeSanitizer` — when
        #: set, every scheduled envelope is stamped with the sender's
        #: vector clock (happens-before message edges).
        self.sanitizer = None
        self._mailboxes: Dict[int, object] = {}
        # (deliver_time, tiebreak key, sequence, envelope) — the total
        # delivery order.  The key equals the sequence unless a
        # perturbation is installed; both are unique, so envelopes are
        # never compared.
        self._heap: List[Tuple[float, int, int, Envelope]] = []
        self._seq = 0
        # Crashed peers (supervisor-managed): deliveries to them are
        # parked here until the peer restarts (docs/PROTOCOL.md §15.4).
        self._down: set = set()
        self._parked_down: Dict[int, List[Envelope]] = {}
        # Plain counters the runtime folds into its report/metrics.
        self.dropped_updates = 0
        self.duplicated_updates = 0
        self.delayed_updates = 0
        self.partition_blocked_sends = 0
        self.acks_dropped = 0
        self.deferred_deliveries = 0
        self.delivered_messages = 0
        self.parked_deliveries = 0

    # ------------------------------------------------------------------
    def connect(self, peer_id: int, mailbox) -> None:
        self._mailboxes[int(peer_id)] = mailbox

    @property
    def pending(self) -> int:
        """Envelopes scheduled or parked but not yet delivered."""
        return len(self._heap) + sum(
            len(v) for v in self._parked_down.values()
        )

    # ------------------------------------------------------------------
    # Crash-recovery hooks (docs/PROTOCOL.md §15.4)
    # ------------------------------------------------------------------
    def set_down(self, peer_id: int) -> None:
        """Mark a peer crashed: due deliveries to it are parked, not
        fed to its (dead) mailbox."""
        self._down.add(int(peer_id))

    def clear_down(self, peer_id: int, now: float) -> int:
        """Mark a peer restarted and reschedule its parked envelopes
        for immediate delivery (at ``now``, preserving park order).
        Returns the number of envelopes released."""
        peer_id = int(peer_id)
        self._down.discard(peer_id)
        parked = self._parked_down.pop(peer_id, [])
        for envelope in parked:
            self._schedule(now, envelope)
        return len(parked)

    def next_due(self) -> Optional[float]:
        """Deliver time of the earliest scheduled envelope."""
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    def _pass_index(self, now: float) -> int:
        return int(now / self.pass_time)

    def _schedule(self, when: float, envelope: Envelope) -> None:
        key = self._seq if self._tiebreak is None else self._tiebreak(self._seq)
        if self.sanitizer is not None:
            self.sanitizer.stamp(envelope)
        heapq.heappush(self._heap, (when, key, self._seq, envelope))
        self._seq += 1

    def _draw_latency(self, sender: int, receiver: int) -> float:
        lat = float(self.latency(self._rng, sender, receiver))
        if lat <= 0:
            raise ValueError("transport latency must be strictly positive")
        return lat

    def send_batch(
        self, batch: MessageBatch, *, flight_id: int, attempt: int, now: float
    ) -> None:
        """Submit one batch flight copy, consulting the fault plan."""
        pass_index = self._pass_index(now)
        if self.faults is not None:
            if self.faults.link_blocked(
                pass_index, batch.sender_peer, batch.receiver_peer
            ):
                self.partition_blocked_sends += 1
                return
            fate = self.faults.roll_send(
                pass_index, batch.sender_peer, batch.receiver_peer
            )
            if fate.dropped:
                self.dropped_updates += len(batch)
                return
            if fate.duplicated:
                self.duplicated_updates += len(batch)
            delays = [fate.delay] + ([fate.duplicate_delay] if fate.duplicated else [])
        else:
            delays = [0]
        for extra in delays:
            when = now + self._draw_latency(batch.sender_peer, batch.receiver_peer)
            if extra > 0:
                self.delayed_updates += len(batch)
                when += extra * self.pass_time
            self._schedule(
                when,
                Envelope(
                    kind=KIND_BATCH,
                    sender=batch.sender_peer,
                    receiver=batch.receiver_peer,
                    payload=batch,
                    flight_id=flight_id,
                    attempt=attempt,
                    send_time=now,
                ),
            )

    def send_ack(self, ack: BatchAck, *, now: float) -> None:
        """Submit one acknowledgement (acks travel the same lossy links)."""
        if self.faults is not None and self.faults.roll_ack_drop(
            self._pass_index(now)
        ):
            self.acks_dropped += 1
            return
        when = now + self._draw_latency(ack.sender_peer, ack.receiver_peer)
        self._schedule(
            when,
            Envelope(
                kind=KIND_ACK,
                sender=ack.sender_peer,
                receiver=ack.receiver_peer,
                payload=ack,
                flight_id=ack.flight_id,
                send_time=now,
            ),
        )

    def deliver_due(self, now: float) -> int:
        """Move every envelope due at or before ``now`` into its
        receiver's mailbox, in ``(deliver_time, sequence)`` order.

        Returns the number of envelopes delivered.  A receiver in a
        down spell holds the delivery until its return instead
        (continuous-time §3.1 store-and-resend, as in the
        discrete-event simulator).
        """
        delivered = 0
        while self._heap and self._heap[0][0] <= now:
            when, _, _, envelope = heapq.heappop(self._heap)
            if envelope.receiver in self._down:
                self.parked_deliveries += 1
                self._parked_down.setdefault(envelope.receiver, []).append(
                    envelope
                )
                continue
            if self.availability is not None:
                up_at = self.availability.next_up(envelope.receiver, when)
                if up_at > now:
                    self.deferred_deliveries += 1
                    self._schedule(up_at, envelope)
                    continue
            mailbox = self._mailboxes.get(envelope.receiver)
            if mailbox is None:
                raise KeyError(f"no mailbox connected for peer {envelope.receiver}")
            if envelope.kind == KIND_BATCH:
                self.delivered_messages += len(envelope.payload)
            mailbox.put(envelope)
            delivered += 1
        return delivered


# ----------------------------------------------------------------------
# Wire codec (JSON lines) — used by the local TCP transport.
# ----------------------------------------------------------------------
def encode_envelope(envelope: Envelope) -> bytes:
    """Serialise an envelope as one JSON line (newline-terminated)."""
    if envelope.kind == KIND_BATCH:
        body = {
            "kind": KIND_BATCH,
            "sender": envelope.sender,
            "receiver": envelope.receiver,
            "fid": envelope.flight_id,
            "attempt": envelope.attempt,
            "t": envelope.send_time,
            "updates": [
                [u.target_doc, u.source_doc, u.value, u.version]
                for u in envelope.payload.updates
            ],
        }
    else:
        body = {
            "kind": KIND_ACK,
            "sender": envelope.sender,
            "receiver": envelope.receiver,
            "fid": envelope.flight_id,
            "t": envelope.send_time,
        }
    return (json.dumps(body, separators=(",", ":")) + "\n").encode("utf-8")


def decode_envelope(line: bytes) -> Envelope:
    """Parse one JSON line back into an :class:`Envelope`."""
    body = json.loads(line)
    kind = body["kind"]
    if kind == KIND_BATCH:
        batch = MessageBatch(
            sender_peer=int(body["sender"]),
            receiver_peer=int(body["receiver"]),
            updates=[
                PagerankUpdate(
                    target_doc=int(t), source_doc=int(s), value=float(v),
                    version=int(ver),
                )
                for t, s, v, ver in body["updates"]
            ],
        )
        return Envelope(
            kind=KIND_BATCH,
            sender=int(body["sender"]),
            receiver=int(body["receiver"]),
            payload=batch,
            flight_id=int(body["fid"]),
            attempt=int(body.get("attempt", 1)),
            send_time=float(body.get("t", 0.0)),
        )
    if kind == KIND_ACK:
        ack = BatchAck(
            flight_id=int(body["fid"]),
            sender_peer=int(body["sender"]),
            receiver_peer=int(body["receiver"]),
        )
        return Envelope(
            kind=KIND_ACK,
            sender=int(body["sender"]),
            receiver=int(body["receiver"]),
            payload=ack,
            flight_id=int(body["fid"]),
            send_time=float(body.get("t", 0.0)),
        )
    raise ValueError(f"unknown envelope kind {kind!r}")
