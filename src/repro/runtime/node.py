"""One peer as an asyncio task behind a mailbox (Fig. 1, executed).

A :class:`PeerNode` wraps the protocol-level
:class:`~repro.p2p.peer.Peer` state machine in the paper's literal
execution model: an event loop that waits for pagerank update
messages, folds them in, recomputes the addressed documents, and —
when a rank moves by more than ε — publishes and sends fresh updates
(paper §2.3; the ``while pagerank update message received`` loop of
Figure 1).

The node owns its :class:`~repro.runtime.mailbox.Mailbox` and its
sender-side :class:`~repro.runtime.reliability.FlightTracker`; the
transport and the clock are shared runtime plumbing.  Draining is
*batched per wake-up*: all queued envelopes are applied first, then
the dirty documents recompute (coalesced, each at most once per local
cascade step), then all staged updates flush as one batch per
destination — the §4.6.1 batching convention, applied per drain
instead of per pass.  Intra-peer link updates cascade immediately
through a local worklist (chaotic relaxation at zero network cost),
exactly as in the discrete-event simulator
(:mod:`repro.simulation.events`).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Iterable, Optional, Set

import numpy as np

from repro.faults.transport import ReliabilityConfig
from repro.p2p.messages import BatchAck
from repro.p2p.peer import Peer
from repro.runtime.mailbox import Mailbox
from repro.runtime.reliability import FlightTracker
from repro.runtime.transport import KIND_ACK, KIND_BATCH, Transport

__all__ = ["PeerNode"]


class PeerNode:
    """One peer's task: mailbox in, recomputes, reliable batches out.

    Parameters
    ----------
    peer:
        The wrapped protocol state machine.
    mailbox:
        The node's envelope queue (already connected to the transport).
    transport:
        Shared transport for outgoing batches and acks.
    clock:
        Shared clock (virtual in deterministic mode, real otherwise).
    damping, epsilon:
        Algorithm parameters.
    peer_of:
        Document → peer assignment array.
    gate:
        Publish gate forwarded to
        :meth:`repro.p2p.peer.Peer.recompute_document` (``"published"``
        bounds consumer staleness by ε; ``"rank"`` is the Figure-1
        literal).
    reliability:
        Ack/retry/backoff parameters (shared semantics with
        :class:`repro.faults.ReliableTransport`).
    pass_time:
        Clock units per pass-equivalent (scales reliability timeouts).
    instruments:
        Optional runtime metrics handle (``_RuntimeInstruments``).
    journal:
        Optional :class:`~repro.recovery.journal.PeerJournal`.  When
        set, every durable mutation (received batch, event-driven
        recompute) goes through the journal's log-then-apply wrappers
        so a supervised restart can replay the peer bitwise
        (docs/PROTOCOL.md §15).
    sanitizer:
        Optional :class:`~repro.sanitize.hb.RuntimeSanitizer`.  When
        set, the node announces each wake-up (a vector-clock tick) and
        merges the sender's stamp off every envelope it applies —
        the happens-before edges the race detector builds on.
    """

    def __init__(
        self,
        peer: Peer,
        mailbox: Mailbox,
        transport: Transport,
        clock,
        *,
        damping: float,
        epsilon: float,
        peer_of: np.ndarray,
        gate: str = "published",
        reliability: Optional[ReliabilityConfig] = None,
        pass_time: float = 1.0,
        instruments=None,
        journal=None,
        sanitizer=None,
    ) -> None:
        self.peer = peer
        self.mailbox = mailbox
        self.transport = transport
        self.clock = clock
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.peer_of = peer_of
        self.gate = gate
        self.tracker = FlightTracker(
            reliability if reliability is not None else ReliabilityConfig(),
            pass_time=pass_time,
        )
        self._instruments = instruments
        self._journal = journal
        self._san = sanitizer
        self._task_name = f"peer{peer.peer_id}"
        self._signal = asyncio.Event()
        self._drained = asyncio.Event()
        self._stop = False
        self._started = False
        self.task: Optional[asyncio.Task] = None
        # Plain counters, aggregated by the runtime into report/metrics.
        self.messages_sent = 0
        self.batches_sent = 0
        self.messages_received = 0
        self.acks_sent = 0
        self.recomputes = 0
        self.redeliveries_suppressed = 0

    # ------------------------------------------------------------------
    # Wake/step protocol
    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Signal the task to drain (free-running mode's ``on_put``)."""
        self._signal.set()

    async def step(self) -> None:
        """Deterministic-scheduler handshake: wake the task and wait
        until it has fully drained its mailbox and serviced timers."""
        self._drained.clear()
        self._signal.set()
        await self._drained.wait()

    def request_stop(self) -> None:
        """Ask the task to exit after one final apply-only drain."""
        self._stop = True
        self._signal.set()

    def timer_due(self, now: float) -> bool:
        """True when an unacked flight's retry deadline has expired."""
        due = self.tracker.next_due()
        return due is not None and due <= now

    @property
    def started(self) -> bool:
        return self._started

    def mark_resumed(self) -> None:
        """Skip the Fig. 1 initial pass: this node resumes a replayed
        peer whose state already reflects past computation (§15.4)."""
        self._started = True

    def flush_outbox(self, now: float) -> None:
        """Launch whatever is staged in the peer's outbox (used by the
        supervisor for recovery re-publishes, outside a drain)."""
        self._flush(now)

    # ------------------------------------------------------------------
    # Task body
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """The peer's event loop (one asyncio task per peer)."""
        while True:
            await self._signal.wait()
            self._signal.clear()
            if self._san is not None:
                self._san.begin_step(self._task_name)
            if self._stop:
                self._final_drain()
                self._drained.set()
                return
            now = float(self.clock.now())
            if not self._started:
                self._started = True
                self._initial_pass(now)
            self._drain(now)
            self._service_timers(now)
            self._drained.set()

    # ------------------------------------------------------------------
    # Protocol steps (synchronous within one wake-up)
    # ------------------------------------------------------------------
    def _initial_pass(self, now: float) -> None:
        """Fig. 1 "At time = 0": every local document computes once and
        announces itself; the local cascade runs to its fixpoint."""
        self._run_worklist(int(d) for d in self.peer.documents)
        self._flush(now)

    def _drain(self, now: float) -> None:
        """Apply every queued envelope, recompute, flush staged sends."""
        envelopes = self.mailbox.drain()
        if not envelopes:
            return
        if self._instruments is not None:
            self._instruments.backlog.observe(len(envelopes))
        dirty: Set[int] = set()
        for envelope in envelopes:
            if self._san is not None:
                self._san.recv(envelope)
            if envelope.kind == KIND_BATCH:
                batch = envelope.payload
                if self._journal is not None:
                    applied = self._journal.apply_batch(batch.updates)
                else:
                    applied = self.peer.receive_batch(batch.updates)
                self.messages_received += len(batch)
                self.redeliveries_suppressed += len(batch) - applied
                for update in batch.updates:
                    dirty.add(int(update.target_doc))
                self.acks_sent += 1
                self.transport.send_ack(
                    BatchAck(
                        flight_id=envelope.flight_id,
                        sender_peer=self.peer.peer_id,
                        receiver_peer=envelope.sender,
                    ),
                    now=now,
                )
            elif envelope.kind == KIND_ACK:
                self.tracker.on_ack(envelope.payload)
            else:  # pragma: no cover - transport constructs the kinds
                raise ValueError(f"unknown envelope kind {envelope.kind!r}")
        if dirty:
            self._run_worklist(sorted(dirty))
            self._flush(now)
        self.mailbox.done(len(envelopes))

    def _run_worklist(self, docs: Iterable[int]) -> None:
        """Coalesced event-driven recompute with local cascade.

        Each document recomputes at most once per worklist membership;
        a publish re-enqueues co-located out-link targets (intra-peer
        propagation is free, §2.3).  Termination follows from the ε
        gate: every re-enqueue is caused by a > ε publish, and the
        damped iteration's changes shrink geometrically.
        """
        work: Deque[int] = deque(int(d) for d in docs)
        queued: Set[int] = set(work)
        peer = self.peer
        peer_id = peer.peer_id
        while work:
            doc = work.popleft()
            queued.discard(doc)
            if self._journal is not None:
                _, published = self._journal.apply_recompute(doc)
            else:
                _, published = peer.recompute_document(
                    doc, self.damping, self.epsilon, self.peer_of, gate=self.gate
                )
            self.recomputes += 1
            if not published:
                continue
            for target in peer.graph.out_links(doc):
                target = int(target)
                if int(self.peer_of[target]) == peer_id and target not in queued:
                    work.append(target)
                    queued.add(target)

    def _flush(self, now: float) -> None:
        """Launch every staged batch as a tracked flight."""
        for batch in self.peer.outbox.batches():
            flight = self.tracker.launch(batch, now)
            self.messages_sent += len(batch)
            self.batches_sent += 1
            self.transport.send_batch(
                batch, flight_id=flight.flight_id, attempt=1, now=now
            )

    def _service_timers(self, now: float) -> None:
        """Retransmit timed-out flights (abandonment happens inside
        the tracker once the retry budget is exhausted)."""
        for flight in self.tracker.due(now):
            self.transport.send_batch(
                flight.batch,
                flight_id=flight.flight_id,
                attempt=flight.attempts,
                now=now,
            )

    def _final_drain(self) -> None:
        """Graceful shutdown: apply queued knowledge, send nothing.

        Received batches still fold into local state (no update is
        silently discarded) and pending acks clear flights, but no
        acknowledgement, recompute, or send is generated — the node is
        leaving, not computing.
        """
        envelopes = self.mailbox.drain()
        for envelope in envelopes:
            if self._san is not None:
                self._san.recv(envelope)
            if envelope.kind == KIND_BATCH:
                if self._journal is not None:
                    self._journal.apply_batch(envelope.payload.updates)
                else:
                    self.peer.receive_batch(envelope.payload.updates)
            elif envelope.kind == KIND_ACK:
                self.tracker.on_ack(envelope.payload)
        if envelopes:
            self.mailbox.done(len(envelopes))
