"""Concurrent peer runtime: the paper's protocol as live asyncio tasks.

Where :mod:`repro.p2p` executes the Distributed Pagerank protocol in
synchronised passes and :mod:`repro.simulation.events` replays it
through a discrete-event queue, this package *runs* it: every peer is
an asyncio task behind a :class:`Mailbox`, exchanging the same priced
wire messages (:mod:`repro.p2p.messages`) over a pluggable
:class:`Transport` with reliable delivery — acks, capped backoff, a
retry budget — matching :class:`repro.faults.ReliableTransport`
semantics (docs/PROTOCOL.md §13, §14).

Entry point is :class:`AsyncPeerRuntime`, with two scheduler modes:

* :meth:`AsyncPeerRuntime.run` — seeded deterministic mode (virtual
  clock, totally ordered delivery and draining); reproducible, and
  differential-tested against the pass-based simulator within the
  paper's error bound.
* :meth:`AsyncPeerRuntime.run_realtime` — free-running mode (real
  clock; optionally :class:`TcpTransport` over loopback sockets).

See docs/ARCHITECTURE.md for where this layer sits, and
docs/OBSERVABILITY.md for the ``runtime.*`` metric family it emits.
"""

from repro.runtime.clock import RealClock, VirtualClock
from repro.runtime.mailbox import Mailbox, WorkTracker
from repro.runtime.node import PeerNode
from repro.runtime.reliability import AsyncFlight, FlightTracker
from repro.runtime.runtime import AsyncPeerRuntime, RuntimeReport
from repro.runtime.tcp import TcpTransport
from repro.runtime.transport import (
    Envelope,
    InMemoryTransport,
    Transport,
    decode_envelope,
    encode_envelope,
)

__all__ = [
    "AsyncPeerRuntime",
    "RuntimeReport",
    "Transport",
    "InMemoryTransport",
    "TcpTransport",
    "Envelope",
    "Mailbox",
    "WorkTracker",
    "PeerNode",
    "FlightTracker",
    "AsyncFlight",
    "VirtualClock",
    "RealClock",
    "encode_envelope",
    "decode_envelope",
]
