"""Sender-side reliable delivery for the concurrent runtime.

The pass-based engines get reliability from
:class:`repro.faults.transport.ReliableTransport`; the runtime needs
the same semantics — positive acks, capped exponential backoff, a
retry budget, abandonment bookkeeping (docs/PROTOCOL.md §13, §14) —
but driven by a clock instead of a pass counter.  This module is that
translation: a :class:`FlightTracker` lives on each
:class:`~repro.runtime.node.PeerNode` and tracks every batch the node
has launched until the matching :class:`~repro.p2p.messages.BatchAck`
arrives.

The knobs are the *same* :class:`~repro.faults.ReliabilityConfig` the
pass engines use; its pass-denominated timeouts are scaled onto the
runtime clock by ``pass_time`` (time units per pass-equivalent), so a
config tuned for the simulator behaves identically here.  A flight
still unacked after ``max_retries`` retransmissions is abandoned and
its updates counted as undeliverable mass — the runtime's quiescence
check then reports non-convergence instead of retrying forever,
mirroring the pass engines' graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.transport import ReliabilityConfig
from repro.p2p.messages import BatchAck, MessageBatch

__all__ = ["AsyncFlight", "FlightTracker"]


@dataclass
class AsyncFlight:
    """One batch transfer awaiting acknowledgement (clock-timed).

    Attributes
    ----------
    flight_id:
        Transport-level transfer id (unique per sending node).
    batch:
        The payload under delivery.
    first_sent:
        Clock reading of the first transmission.
    attempts:
        Transmissions so far (1 = original send).
    next_retry:
        Clock reading at which an unacked flight times out and is
        retransmitted (or abandoned once over budget).
    """

    flight_id: int
    batch: MessageBatch
    first_sent: float
    attempts: int = 1
    next_retry: float = 0.0


class FlightTracker:
    """Per-sender flight table: launch, ack, retry, abandon.

    Parameters
    ----------
    config:
        The shared ack/retry/backoff parameters
        (:class:`~repro.faults.ReliabilityConfig`).
    pass_time:
        Time units equivalent to one pass — the scale factor applied
        to the config's pass-denominated timeouts.
    """

    def __init__(self, config: ReliabilityConfig, *, pass_time: float = 1.0) -> None:
        if pass_time <= 0:
            raise ValueError(f"pass_time must be > 0, got {pass_time}")
        self.config = config
        self.pass_time = float(pass_time)
        self._flights: Dict[int, AsyncFlight] = {}
        self._next_fid = 0
        self.retries = 0
        self.abandoned_updates = 0
        self.abandoned_mass = 0.0
        # Per-receiver abandonment ledger, so a supervised restart can
        # forgive exactly the mass its re-publish heals (§15.4).
        self._abandoned_by_receiver: Dict[int, int] = {}
        self._abandoned_mass_by_receiver: Dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def unacked_flights(self) -> int:
        return len(self._flights)

    @property
    def unacked_updates(self) -> int:
        """Updates in flights still awaiting acknowledgement."""
        return sum(len(f.batch) for f in self._flights.values())

    @property
    def undeliverable_updates(self) -> int:
        """Abandoned plus still-unacked updates (convergence blockers)."""
        return self.abandoned_updates + self.unacked_updates

    def _timeout(self, attempts: int) -> float:
        """Clock delay before the next retransmission of a flight that
        has been attempted ``attempts`` times (capped backoff)."""
        return self.config.retry_delay(attempts) * self.pass_time

    # ------------------------------------------------------------------
    def launch(self, batch: MessageBatch, now: float) -> AsyncFlight:
        """Register a freshly staged batch as a new flight."""
        flight = AsyncFlight(
            flight_id=self._next_fid,
            batch=batch,
            first_sent=now,
            attempts=1,
            next_retry=now + self._timeout(1),
        )
        self._next_fid += 1
        self._flights[flight.flight_id] = flight
        return flight

    def on_ack(self, ack: BatchAck) -> bool:
        """Clear the acknowledged flight; False if it was unknown
        (a duplicate ack for an already-cleared flight)."""
        return self._flights.pop(ack.flight_id, None) is not None

    def due(self, now: float) -> List[AsyncFlight]:
        """Flights whose ack timeout has expired at ``now``.

        Flights still within their retry budget are returned for
        retransmission with ``attempts`` incremented and their next
        timeout re-armed; flights over budget are abandoned (removed,
        their updates counted as undeliverable) and *not* returned.
        """
        out: List[AsyncFlight] = []
        for fid in sorted(self._flights):
            flight = self._flights[fid]
            if flight.next_retry > now:
                continue
            if flight.attempts > self.config.max_retries:
                receiver = flight.batch.receiver_peer
                mass = sum(abs(u.value) for u in flight.batch)
                self.abandoned_updates += len(flight.batch)
                self.abandoned_mass += mass
                self._abandoned_by_receiver[receiver] = (
                    self._abandoned_by_receiver.get(receiver, 0)
                    + len(flight.batch)
                )
                self._abandoned_mass_by_receiver[receiver] = (
                    self._abandoned_mass_by_receiver.get(receiver, 0.0) + mass
                )
                del self._flights[fid]
                continue
            flight.attempts += 1
            flight.next_retry = now + self._timeout(flight.attempts)
            self.retries += 1
            out.append(flight)
        return out

    def next_due(self) -> Optional[float]:
        """Earliest retry/abandon deadline among unacked flights."""
        if not self._flights:
            return None
        return min(f.next_retry for f in self._flights.values())

    # ------------------------------------------------------------------
    # Crash-recovery hooks (docs/PROTOCOL.md §15)
    # ------------------------------------------------------------------
    def wipe(self) -> int:
        """Crash-with-state-loss: drop every in-flight batch without
        abandonment accounting (the flights died *with* the sender;
        the restarted peer re-publishes instead).  Returns the number
        of updates destroyed, for state-loss bookkeeping."""
        lost = sum(len(f.batch) for f in self._flights.values())
        self._flights.clear()
        return lost

    def forgive(self, receiver: int) -> int:
        """Clear the abandonment ledger toward one receiver.

        Called after anti-entropy re-publish toward a restarted peer:
        the re-publish stages the current value of every edge into the
        receiver at ≥ the abandoned versions, so the abandoned updates
        are superseded, not lost — they stop blocking convergence.
        Returns the number of updates forgiven.
        """
        count = self._abandoned_by_receiver.pop(receiver, 0)
        mass = self._abandoned_mass_by_receiver.pop(receiver, 0.0)
        self.abandoned_updates -= count
        self.abandoned_mass -= mass
        return count
