"""The concurrent peer runtime: asyncio tasks, two scheduler modes.

:class:`AsyncPeerRuntime` executes the paper's protocol the way §6's
future work imagines it deployed: every peer is an asyncio task behind
a mailbox, exchanging the priced wire messages over a pluggable
transport with reliable delivery (acks, capped backoff, retry budget —
docs/PROTOCOL.md §13, §14).  Two ways to drive it:

* :meth:`AsyncPeerRuntime.run` — **deterministic scheduler mode**.  A
  coordinator owns a :class:`~repro.runtime.clock.VirtualClock` and
  repeats one round: deliver every envelope due now (in the seeded
  ``(deliver_time, sequence)`` order), wake each peer task in
  ascending peer id and wait for it to drain its mailbox and service
  its retry timers, then advance the clock to the next scheduled
  event.  Same seed → same event order → byte-identical ranks, which
  is what lets the differential tests hold this runtime to the
  pass-based simulator's results within the paper's error bound.
* :meth:`AsyncPeerRuntime.run_realtime` — **free-running mode**.  Peers
  drain whenever the transport feeds them (real clock, optionally the
  local TCP transport); convergence is declared after the system has
  been quiescent for a configurable quiet window.  Not reproducible
  byte-for-byte; exists to run the protocol over real sockets.

Termination is the distributed computation's natural quiescence plus a
**bounded-staleness check**: no envelope queued or in flight, no
unacknowledged flight outstanding, and every remote consumer's view of
every published rank within ε of the publisher's value (the staleness
bound the ε publish gate promises — see
:meth:`repro.p2p.peer.Peer.recompute_document`).  A run that quiesces
with abandoned flights (retry budget exhausted under heavy loss)
reports ``converged=False`` instead of spinning, mirroring the pass
engines' graceful degradation.  ``runtime.*`` metrics are emitted
through :mod:`repro.obs` (catalogue: docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._util import check_positive, check_threshold
from repro._util.rng import SeedLike, as_generator
from repro.core.pagerank import DEFAULT_DAMPING
from repro.faults.plan import FaultPlan
from repro.faults.transport import ReliabilityConfig
from repro.graphs.linkgraph import LinkGraph
from repro.obs import get_registry
from repro.p2p.network import P2PNetwork
from repro.p2p.peer import Peer
from repro.runtime.clock import RealClock, VirtualClock
from repro.runtime.mailbox import Mailbox, WorkTracker
from repro.runtime.node import PeerNode
from repro.runtime.transport import InMemoryTransport, Transport
from repro.simulation.events import OnOffSchedule

__all__ = ["RuntimeReport", "AsyncPeerRuntime"]


class _RuntimeInstruments:
    """Registry handles for the runtime's emissions (no-op singletons
    under the default disabled registry).  Catalogued in
    docs/OBSERVABILITY.md §9."""

    __slots__ = (
        "messages", "batches", "delivered", "acks", "retries", "suppressed",
        "recomputes", "abandoned", "deferred", "rounds", "backlog",
        "overflow", "quiesce_time",
    )

    def __init__(self, reg) -> None:
        self.messages = reg.counter(
            "runtime.messages_sent", unit="messages",
            description="update messages handed to the transport (first attempts)",
        )
        self.batches = reg.counter(
            "runtime.batches_sent", unit="batches",
            description="batch flights launched by peer nodes",
        )
        self.delivered = reg.counter(
            "runtime.messages_delivered", unit="messages",
            description="updates delivered into peer mailboxes",
        )
        self.acks = reg.counter(
            "runtime.acks_sent", unit="acks",
            description="batch acknowledgements sent by receiving nodes",
        )
        self.retries = reg.counter(
            "runtime.retries", unit="batches",
            description="flight retransmissions after ack timeout",
        )
        self.suppressed = reg.counter(
            "runtime.redeliveries_suppressed", unit="messages",
            description="duplicate updates absorbed by receiver version dedup",
        )
        self.recomputes = reg.counter(
            "runtime.recomputes", unit="documents",
            description="event-driven document recomputations",
        )
        self.abandoned = reg.counter(
            "runtime.abandoned_updates", unit="messages",
            description="updates whose flight exhausted the retry budget",
        )
        self.deferred = reg.counter(
            "runtime.deferred_deliveries", unit="envelopes",
            description="deliveries held for peers in a down spell (churn)",
        )
        self.rounds = reg.counter(
            "runtime.scheduler_rounds", unit="rounds",
            description="deterministic scheduler rounds executed",
        )
        self.backlog = reg.histogram(
            "runtime.mailbox_backlog", unit="envelopes",
            description="mailbox depth observed at each drain",
        )
        self.overflow = reg.counter(
            "runtime.mailbox_overflow", unit="envelopes",
            description="envelopes refused by bounded mailboxes at capacity",
        )
        self.quiesce_time = reg.gauge(
            "runtime.quiesce_time", unit="time",
            description="clock reading at quiescence (virtual units or seconds)",
        )


@dataclass(frozen=True)
class RuntimeReport:
    """Outcome of one concurrent-runtime run.

    Attributes
    ----------
    ranks:
        Final per-document ranks.
    converged:
        Quiesced with nothing undeliverable and every consumer within
        the ε staleness bound.
    quiesced:
        The event system drained naturally (False on budget/timeout).
    clock_time:
        Clock reading at termination (virtual units or seconds).
    rounds:
        Deterministic scheduler rounds executed (0 in free-running
        mode).
    messages:
        Cross-peer update messages sent (first attempts; the paper's
        traffic accounting, retransmits excluded).
    batches:
        Batch flights launched.
    acks:
        Acknowledgements sent by receivers.
    retries:
        Flight retransmissions after ack timeout.
    recomputes:
        Event-driven document recomputations performed.
    redeliveries_suppressed:
        Duplicate updates absorbed by receiver version dedup.
    abandoned_updates:
        Updates whose flight exhausted the retry budget (undelivered).
    deferred_deliveries:
        Deliveries held for peers in a down spell (churn).
    max_staleness:
        Largest relative gap between a published rank and any remote
        consumer's view of it at termination (ε-bounded on a converged
        run).
    epsilon:
        The convergence threshold the run used.
    mailbox_overflow:
        Envelopes refused by bounded mailboxes at capacity (recovered
        end-to-end by sender retransmission).
    crashes:
        Peer crashes the recovery supervisor applied (0 without a
        recovery config).
    restarts:
        Supervised restarts from WAL+snapshot replay.
    """

    ranks: np.ndarray
    converged: bool
    quiesced: bool
    clock_time: float
    rounds: int
    messages: int
    batches: int
    acks: int
    retries: int
    recomputes: int
    redeliveries_suppressed: int
    abandoned_updates: int
    deferred_deliveries: int
    max_staleness: float
    epsilon: float
    mailbox_overflow: int = 0
    crashes: int = 0
    restarts: int = 0


class AsyncPeerRuntime:
    """Concurrent peer runtime over a pluggable transport.

    Parameters
    ----------
    graph:
        Document link graph.
    network:
        P2P network with a document placement attached.
    damping, epsilon, init_rank:
        Algorithm parameters (paper §2.2).
    transport:
        A :class:`~repro.runtime.transport.Transport`; defaults to a
        seeded :class:`~repro.runtime.transport.InMemoryTransport`
        built from ``latency`` / ``faults`` / ``availability``.
        Passing an explicit transport together with those keyword
        arguments is an error (they configure the default only).
    latency:
        Latency model for the default in-memory transport.
    faults:
        Seeded :class:`~repro.faults.plan.FaultPlan` for the default
        transport (loss / duplication / delay / partitions).
    availability:
        :class:`~repro.simulation.events.OnOffSchedule` churn for the
        default transport (down peers receive on return, §3.1).
    reliability:
        Ack/retry/backoff parameters shared with the pass engines'
        :class:`~repro.faults.ReliableTransport`.
    gate:
        Publish gate (see :meth:`repro.p2p.peer.Peer.recompute_document`).
    pass_time:
        Clock units per pass-equivalent; scales reliability timeouts
        and the fault plan's pass-denominated delays.
    seed:
        Seed for the default transport's latency sampling.
    registry:
        Metrics registry (defaults to the process registry).
    recovery:
        Optional :class:`~repro.recovery.supervisor.RecoveryConfig`.
        When set, every peer runs behind a durability journal
        (WAL + snapshots) and a supervisor applies the fault plan's
        crash schedule for real: the peer task dies losing volatile
        state, a heartbeat failure detector notices the silence, and
        the supervisor restarts the task from bitwise WAL replay plus
        anti-entropy re-publish (docs/PROTOCOL.md §15).  Deterministic
        scheduler mode only.
    mailbox_capacity:
        Optional bound on every peer mailbox (overflow envelopes are
        refused and recovered by sender retransmission, §14).
    sanitizer:
        Optional :class:`~repro.sanitize.hb.RuntimeSanitizer` — the
        happens-before race detector.  When ``None``, setting
        ``REPRO_SANITIZE=1`` in the environment auto-creates one, and
        the run *raises* :class:`~repro.sanitize.hb.SanitizeRaceError`
        if it finds unordered conflicting accesses (the CI smoke
        gate); an explicitly passed instance only journals, so tests
        can inspect ``runtime.sanitizer.findings()``.  Observation
        only — results stay byte-identical (docs/STATIC_ANALYSIS.md,
        "Dynamic sanitizer").  Deterministic scheduler mode only.
    tiebreak:
        Optional bijective key over the default transport's submission
        sequence (the interleaving explorer's schedule perturbation —
        :func:`repro.sanitize.explorer.perturbation`).  Like
        ``latency``/``faults``, it configures the default in-memory
        transport only.

    A runtime instance is single-shot: construct a fresh one per run.
    """

    def __init__(
        self,
        graph: LinkGraph,
        network: P2PNetwork,
        *,
        damping: float = DEFAULT_DAMPING,
        epsilon: float = 1e-3,
        init_rank: float = 1.0,
        transport: Optional[Transport] = None,
        latency=None,
        faults: Optional[FaultPlan] = None,
        availability: Optional[OnOffSchedule] = None,
        reliability: Optional[ReliabilityConfig] = None,
        gate: str = "published",
        pass_time: float = 1.0,
        seed: SeedLike = None,
        registry=None,
        recovery=None,
        mailbox_capacity: Optional[int] = None,
        sanitizer=None,
        tiebreak=None,
    ) -> None:
        check_threshold("damping", damping)
        check_threshold("epsilon", epsilon)
        check_positive("init_rank", init_rank)
        check_positive("pass_time", pass_time)
        if network.placement is None:
            raise ValueError("network must have a document placement attached")
        if network.placement.num_docs != graph.num_nodes:
            raise ValueError("placement and graph disagree on document count")
        if gate not in ("published", "rank"):
            raise ValueError(f"gate must be 'published' or 'rank', got {gate!r}")
        if transport is not None and (
            latency is not None
            or faults is not None
            or availability is not None
            or tiebreak is not None
        ):
            raise ValueError(
                "latency/faults/availability/tiebreak configure the default "
                "in-memory transport; attach them to your explicit "
                "transport instead"
            )
        if availability is not None and availability.num_peers != network.num_peers:
            raise ValueError("availability schedule peer count mismatch")
        self.graph = graph
        self.network = network
        self.damping = float(damping)
        self.epsilon = float(epsilon)
        self.init_rank = float(init_rank)
        self.gate = gate
        self.pass_time = float(pass_time)
        # Keep the derived-stream convention: latency sampling gets its
        # own generator so the fault plan's stream is untouched.
        if transport is None:
            transport = InMemoryTransport(
                latency=latency,
                faults=faults,
                availability=availability,
                pass_time=pass_time,
                seed=as_generator(seed),
                tiebreak=tiebreak,
            )
        self.transport = transport
        # Opt-in happens-before race detection (zero-cost when off).
        self._san_owned = False
        if sanitizer is None and os.environ.get("REPRO_SANITIZE") == "1":
            # Imported here: repro.sanitize imports repro.lint, which
            # this module must not depend on unconditionally.
            from repro.sanitize.hb import RuntimeSanitizer

            sanitizer = RuntimeSanitizer(registry=registry)
            self._san_owned = True
        self.sanitizer = sanitizer
        if sanitizer is not None:
            self.transport.sanitizer = sanitizer
        self._clock = VirtualClock()
        self._tracker = WorkTracker()
        self._obs = _RuntimeInstruments(
            registry if registry is not None else get_registry()
        )
        self._peer_of = network.placement.assignment
        self._reliability = reliability
        self.mailbox_capacity = mailbox_capacity
        self._recovery = recovery
        self._supervisor = None
        self._journals: dict = {}
        if recovery is not None:
            # Imported here: repro.recovery's package init pulls in the
            # soak harness, which imports this module.
            from repro.recovery.journal import PeerJournal
            from repro.recovery.supervisor import Supervisor
            from repro.recovery.wal import WriteAheadLog

            plan = getattr(transport, "faults", None)
            events = plan.crash_events() if plan is not None else ()
            self._supervisor = Supervisor(
                network.num_peers,
                events,
                pass_time=pass_time,
                config=recovery,
            )
        docs_by_peer = network.placement.docs_by_peer()
        self.nodes: List[PeerNode] = []
        for pid in range(network.num_peers):
            peer = Peer(pid, docs_by_peer[pid], graph, init_rank=self.init_rank)
            if sanitizer is not None:
                sanitizer.register_task(f"peer{pid}")
                sanitizer.wrap_peer(peer)
            mailbox = Mailbox(pid, self._tracker, capacity=mailbox_capacity)
            transport.connect(pid, mailbox)
            journal = None
            if recovery is not None:
                wal = None
                if recovery.wal_dir is not None:
                    wal = WriteAheadLog(
                        os.path.join(recovery.wal_dir, f"peer{pid}.wal.jsonl")
                    )
                journal = PeerJournal(
                    peer,
                    graph,
                    damping=self.damping,
                    epsilon=self.epsilon,
                    peer_of=self._peer_of,
                    gate=gate,
                    snapshot_interval=recovery.snapshot_interval,
                    wal=wal,
                )
                self._journals[pid] = journal
            self.nodes.append(
                PeerNode(
                    peer,
                    mailbox,
                    transport,
                    self._clock,
                    damping=self.damping,
                    epsilon=self.epsilon,
                    peer_of=self._peer_of,
                    gate=gate,
                    reliability=reliability,
                    pass_time=pass_time,
                    instruments=self._obs,
                    journal=journal,
                    sanitizer=sanitizer,
                )
            )
        self._ran = False
        self._shut_down = False

    # ------------------------------------------------------------------
    # Deterministic scheduler mode
    # ------------------------------------------------------------------
    async def run(
        self,
        *,
        max_time: Optional[float] = None,
        max_rounds: int = 1_000_000,
        round_hook=None,
    ) -> RuntimeReport:
        """Drive the system to quiescence under the virtual clock.

        One round: apply due supervised crashes, deliver due envelopes
        (seeded total order), wake each live peer task in ascending id
        to drain and service timers, heartbeat the survivors, run the
        failure detector and any due supervised restarts, then advance
        the clock to the next scheduled event.  Returns the report
        once nothing is scheduled anywhere (natural quiescence) or a
        budget is exhausted.

        ``round_hook(rounds, runtime)``, if given, is called after
        every round — the soak harness's continuous invariant probe.
        """
        if self._ran:
            raise RuntimeError("a runtime instance is single-shot; build a new one")
        self._ran = True
        if not isinstance(self.transport, InMemoryTransport):
            raise TypeError(
                "deterministic mode requires the in-memory transport; "
                "use run_realtime() for socket transports"
            )
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        sup = self._supervisor
        san = self.sanitizer
        for node in self.nodes:
            node.task = asyncio.create_task(node.run())
        # Startup round: the Fig. 1 concurrent initial pass, ordered by
        # peer id so first-send sequence numbers are reproducible.
        for node in self.nodes:
            await node.step()
        if san is not None:
            san.round_barrier()
        if sup is not None:
            for node in self.nodes:
                sup.detector.heartbeat(node.peer.peer_id, self._clock.now())
        rounds = 0
        quiesced = False
        while rounds < max_rounds:
            now = self._clock.now()
            if sup is not None:
                for pid in sup.crashes_due(now):
                    await self._apply_crash(pid, now)
            self.transport.deliver_due(now)
            for node in self.nodes:
                if sup is not None and sup.is_down(node.peer.peer_id):
                    continue
                if not node.mailbox.empty or node.timer_due(now):
                    await node.step()
            if san is not None:
                # The end-of-steps join: everything this round's steps
                # did happens-before the supervisor phase, the round
                # hook, and every following round.  Same-round steps
                # stay mutually concurrent — that is the race surface.
                san.round_barrier()
            if sup is not None:
                for node in self.nodes:
                    if not sup.is_down(node.peer.peer_id):
                        sup.detector.heartbeat(node.peer.peer_id, now)
                sup.observe(now)
                for pid in sup.restarts_due(now):
                    await self._apply_restart(pid, now)
            rounds += 1
            self._obs.rounds.inc()
            if round_hook is not None:
                round_hook(rounds, self)
            candidates = [self.transport.next_due()]
            candidates.extend(node.tracker.next_due() for node in self.nodes)
            if sup is not None:
                candidates.append(sup.next_event(now))
            times = [t for t in candidates if t is not None]
            if not times:
                quiesced = True
                break
            t_next = min(times)
            if max_time is not None and t_next > max_time:
                break
            self._clock.advance_to(t_next)
        await self.shutdown()
        if san is not None:
            findings = san.finalize()
            if findings and self._san_owned:
                # Env-var mode is the CI gate: fail loudly.  An
                # explicitly passed sanitizer only journals, so tests
                # can inspect runtime.sanitizer.findings().
                from repro.sanitize.hb import SanitizeRaceError

                raise SanitizeRaceError(findings)
        return self._report(quiesced=quiesced, rounds=rounds)

    # ------------------------------------------------------------------
    # Supervised crash/restart mechanics (docs/PROTOCOL.md §15)
    # ------------------------------------------------------------------
    async def _apply_crash(self, pid: int, now: float) -> None:
        """Kill one peer task with state loss: queued envelopes, the
        outbox, the deferred store, and in-flight batches all die; the
        journal (WAL + snapshot) survives."""
        sup = self._supervisor
        assert sup is not None
        node = self.nodes[pid]
        journal = self._journals[pid]
        if self._recovery.verify_replay_on_crash and not journal.verify_replay():
            sup.instruments.state_loss.inc()
        # Queued envelopes die unprocessed (balance the work tracker).
        lost_envelopes = node.mailbox.drain()
        node.mailbox.done(len(lost_envelopes))
        node.peer.crash_volatile()
        node.tracker.wipe()
        node.request_stop()
        if node.task is not None:
            await node.task
            node.task = None
        self.transport.set_down(pid)
        sup.note_crash_applied(pid)

    async def _apply_restart(self, pid: int, now: float) -> None:
        """Resurrect one peer task from bitwise WAL+snapshot replay,
        then heal staleness in both directions: the recovered peer
        re-announces its published values, and live neighbors
        re-publish toward it (forgiving flights they had abandoned
        while it was down — anti-entropy catch-up, §15.4)."""
        sup = self._supervisor
        assert sup is not None
        journal = self._journals[pid]
        old = self.nodes[pid]
        peer = journal.replay()
        journal.rebind(peer)
        # Compact so the next replay starts from the restored state.
        journal.compact()
        if self.sanitizer is not None:
            # The replayed peer carries fresh plain dicts; re-wrap them
            # (its task keeps its clock, so pre-crash edges survive).
            self.sanitizer.wrap_peer(peer)
        mailbox = Mailbox(pid, self._tracker, capacity=self.mailbox_capacity)
        mailbox.overflow_dropped = old.mailbox.overflow_dropped
        self.transport.connect(pid, mailbox)
        node = PeerNode(
            peer,
            mailbox,
            self.transport,
            self._clock,
            damping=self.damping,
            epsilon=self.epsilon,
            peer_of=self._peer_of,
            gate=self.gate,
            reliability=self._reliability,
            pass_time=self.pass_time,
            instruments=self._obs,
            journal=journal,
            sanitizer=self.sanitizer,
        )
        # The crashed node's counters and abandonment ledger carry over
        # (its flight table was wiped at the crash, so reuse is clean).
        node.tracker = old.tracker
        node.messages_sent = old.messages_sent
        node.batches_sent = old.batches_sent
        node.messages_received = old.messages_received
        node.acks_sent = old.acks_sent
        node.recomputes = old.recomputes
        node.redeliveries_suppressed = old.redeliveries_suppressed
        node.mark_resumed()
        self.nodes[pid] = node
        node.task = asyncio.create_task(node.run())
        released = self.transport.clear_down(pid, now)
        if released:
            sup.instruments.parked.inc(released)
        sup.mark_restarted(pid, now)
        # Recovered peer re-announces its persisted published values
        # (equal-version replays are idempotent at receivers).
        staged = peer.reboot_republish(self._peer_of)
        if staged:
            sup.instruments.republished.inc(staged)
            node.flush_outbox(now)
        if self._recovery.neighbor_republish:
            for other in self.nodes:
                opid = other.peer.peer_id
                if opid == pid or sup.is_down(opid):
                    continue
                refreshed = other.peer.republish_to(pid, self._peer_of)
                if refreshed:
                    sup.instruments.republished.inc(refreshed)
                    other.flush_outbox(now)
                healed = other.tracker.forgive(pid)
                if healed:
                    sup.instruments.healed.inc(healed)

    # ------------------------------------------------------------------
    # Free-running mode
    # ------------------------------------------------------------------
    async def run_realtime(
        self,
        *,
        quiet_window: float = 0.05,
        timeout: float = 60.0,
        tick: float = 0.01,
    ) -> RuntimeReport:
        """Free-running execution under the real clock.

        Peers drain as the transport feeds them; a coordinator tick
        services retry timers and (for the in-memory transport) pumps
        due deliveries.  Quiescence is declared once nothing has been
        queued, in flight, or unacknowledged for ``quiet_window``
        seconds; ``timeout`` bounds the whole run.  Results are
        protocol-correct but not byte-reproducible — use :meth:`run`
        for differential testing.
        """
        if self._ran:
            raise RuntimeError("a runtime instance is single-shot; build a new one")
        self._ran = True
        if self._supervisor is not None:
            raise RuntimeError(
                "recovery supervision requires deterministic mode; "
                "free-running restarts are not reproducible"
            )
        if self.sanitizer is not None:
            raise RuntimeError(
                "the happens-before sanitizer requires deterministic "
                "mode; free-running interleavings have no round barrier"
            )
        check_positive("quiet_window", quiet_window)
        check_positive("timeout", timeout)
        check_positive("tick", tick)
        clock = RealClock()
        self._clock = clock
        for node in self.nodes:
            node.clock = clock
            node.mailbox.set_on_put(node.wake)
        await self.transport.start()
        for node in self.nodes:
            node.task = asyncio.create_task(node.run())
            node.wake()  # run the initial pass
        quiesced = False
        quiet_since: Optional[float] = None
        start = clock.now()
        while True:
            await asyncio.sleep(tick)
            now = clock.now()
            if isinstance(self.transport, InMemoryTransport):
                self.transport.deliver_due(now)
            for node in self.nodes:
                if node.timer_due(now):
                    node.wake()
            if self._idle():
                if quiet_since is None:
                    quiet_since = now
                elif now - quiet_since >= quiet_window:
                    quiesced = True
                    break
            else:
                quiet_since = None
            if now - start >= timeout:
                break
        await self.shutdown()
        return self._report(quiesced=quiesced, rounds=0)

    def _idle(self) -> bool:
        """Nothing queued, nothing in flight, nothing unacknowledged."""
        if self._tracker.outstanding:
            return False
        in_flight = getattr(self.transport, "pending", 0)
        if in_flight:
            return False
        return all(
            node.started and node.tracker.unacked_flights == 0
            for node in self.nodes
        )

    # ------------------------------------------------------------------
    # Shutdown / reporting
    # ------------------------------------------------------------------
    async def shutdown(self) -> None:
        """Graceful drain: every node applies its queued envelopes and
        exits; the transport tears down.  Idempotent."""
        if self._shut_down:
            return
        self._shut_down = True
        for node in self.nodes:
            node.request_stop()
        tasks = [node.task for node in self.nodes if node.task is not None]
        if tasks:
            await asyncio.gather(*tasks)
        if self.sanitizer is not None:
            # Join barrier: the final drains happen-before the
            # coordinator's report reads (staleness probe, rank gather).
            self.sanitizer.round_barrier()
        await self.transport.stop()

    @property
    def clock_now(self) -> float:
        """Current scheduler clock reading (virtual units in
        deterministic mode, seconds in free-running mode) — the time
        base ``round_hook`` observers share with the run."""
        return float(self._clock.now())

    def staleness_probe(self) -> float:
        """Largest relative gap between any published rank and a remote
        consumer's view of it — the bounded-staleness invariant (≤ ε on
        a fully delivered run)."""
        worst = 0.0
        for node in self.nodes:
            peer = node.peer
            for doc in peer.documents:
                doc = int(doc)
                value = peer.published[doc]
                denom = abs(value) if value != 0 else 1.0
                for target in self.graph.out_links(doc):
                    consumer = int(self._peer_of[int(target)])
                    if consumer == peer.peer_id:
                        continue
                    seen = self.nodes[consumer].peer.visible_value(doc)
                    gap = abs(value - seen) / denom
                    if gap > worst:
                        worst = gap
        return worst

    def gather_ranks(self) -> np.ndarray:
        """Final per-document ranks across all peers."""
        out = np.empty(self.graph.num_nodes, dtype=np.float64)
        for node in self.nodes:
            for doc, value in node.peer.rank.items():
                out[doc] = value
        return out

    def _report(self, *, quiesced: bool, rounds: int) -> RuntimeReport:
        messages = sum(n.messages_sent for n in self.nodes)
        batches = sum(n.batches_sent for n in self.nodes)
        acks = sum(n.acks_sent for n in self.nodes)
        retries = sum(n.tracker.retries for n in self.nodes)
        recomputes = sum(n.recomputes for n in self.nodes)
        suppressed = sum(n.redeliveries_suppressed for n in self.nodes)
        abandoned = sum(n.tracker.abandoned_updates for n in self.nodes)
        deferred = int(getattr(self.transport, "deferred_deliveries", 0))
        delivered = int(getattr(self.transport, "delivered_messages", 0))
        overflow = sum(n.mailbox.overflow_dropped for n in self.nodes)
        staleness = self.staleness_probe()
        clock_time = float(self._clock.now())
        converged = bool(
            quiesced and abandoned == 0 and staleness <= self.epsilon
        )
        obs = self._obs
        obs.messages.inc(messages)
        obs.batches.inc(batches)
        obs.delivered.inc(delivered)
        obs.acks.inc(acks)
        obs.retries.inc(retries)
        obs.suppressed.inc(suppressed)
        obs.recomputes.inc(recomputes)
        obs.abandoned.inc(abandoned)
        obs.deferred.inc(deferred)
        obs.overflow.inc(overflow)
        if quiesced:
            obs.quiesce_time.set(clock_time)
        crashes = restarts = 0
        sup = self._supervisor
        if sup is not None:
            crashes = sup.crashes_applied
            restarts = sup.restarts_applied
            journals = self._journals.values()
            sup.instruments.wal_records.inc(
                sum(j.records_appended for j in journals)
            )
            sup.instruments.snapshots.inc(
                sum(j.snapshots_taken for j in journals)
            )
            sup.instruments.replayed.inc(
                sum(j.replayed_records for j in journals)
            )
        return RuntimeReport(
            ranks=self.gather_ranks(),
            converged=converged,
            quiesced=quiesced,
            clock_time=clock_time,
            rounds=rounds,
            messages=messages,
            batches=batches,
            acks=acks,
            retries=retries,
            recomputes=recomputes,
            redeliveries_suppressed=suppressed,
            abandoned_updates=abandoned,
            deferred_deliveries=deferred,
            max_staleness=staleness,
            epsilon=self.epsilon,
            mailbox_overflow=overflow,
            crashes=crashes,
            restarts=restarts,
        )
