"""Per-peer mailboxes for the concurrent runtime (Fig. 1's inbox).

The paper's peer pseudocode is a message loop — ``while pagerank
update message received`` — and the runtime gives every peer exactly
that: a :class:`Mailbox` its task drains, fed by the transport.  The
mailbox is a plain FIFO: envelopes are processed in arrival order,
which in deterministic mode is the transport's seeded
``(deliver_time, sequence)`` order (docs/PROTOCOL.md §14).

Quiescence — the distributed computation's natural termination — is
detected through the shared :class:`WorkTracker`: every enqueued
envelope increments it, every fully processed envelope decrements it,
and the runtime's convergence check requires it to sit at zero with no
unacknowledged flights outstanding.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.runtime.transport import Envelope

__all__ = ["Mailbox", "WorkTracker"]


class WorkTracker:
    """Count of envelopes enqueued but not yet fully processed.

    Shared across all mailboxes of one runtime; ``wait_idle`` is the
    awaitable the free-running mode's convergence probe uses.
    """

    def __init__(self) -> None:
        self._outstanding = 0
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def inc(self, n: int = 1) -> None:
        self._outstanding += n
        if self._outstanding:
            self._idle.clear()

    def dec(self, n: int = 1) -> None:
        self._outstanding -= n
        if self._outstanding < 0:
            raise RuntimeError("work tracker went negative")
        if self._outstanding == 0:
            self._idle.set()

    async def wait_idle(self) -> None:
        """Block until no envelope is enqueued anywhere."""
        await self._idle.wait()


class Mailbox:
    """FIFO envelope queue behind one peer task.

    ``put`` is synchronous (the transport calls it from the event
    loop); the owning :class:`~repro.runtime.node.PeerNode` drains with
    :meth:`drain`, processing envelopes strictly in arrival order.  An
    optional ``on_put`` callback wakes the owner (free-running mode).

    ``capacity`` bounds the queue: a ``put`` against a full mailbox is
    *refused* — the envelope is dropped at the receiver's door and
    counted in ``overflow_dropped``, exactly like a bounded socket
    buffer.  Reliability recovers it end-to-end: no ack is generated
    for the lost copy, so the sender's flight times out and
    retransmits (docs/PROTOCOL.md §14).  Unbounded by default.
    """

    def __init__(
        self,
        owner_peer: int,
        tracker: Optional[WorkTracker] = None,
        *,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.owner_peer = int(owner_peer)
        self.tracker = tracker
        self.capacity = capacity
        self._queue: Deque["Envelope"] = deque()
        self._on_put: Optional[Callable[[], None]] = None
        #: Envelopes refused because the mailbox was full.
        self.overflow_dropped = 0

    def set_on_put(self, callback: Callable[[], None]) -> None:
        """Install the wake-up callback (called on every ``put``)."""
        self._on_put = callback

    def put(self, envelope: "Envelope") -> bool:
        """Enqueue one envelope (arrival order is processing order).

        Returns False — without touching the work tracker — when a
        bounded mailbox is full and the envelope was refused.
        """
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.overflow_dropped += 1
            return False
        self._queue.append(envelope)
        if self.tracker is not None:
            self.tracker.inc()
        if self._on_put is not None:
            self._on_put()
        return True

    def drain(self) -> List["Envelope"]:
        """Remove and return everything queued, in arrival order.

        The caller must call :meth:`done` once per drained envelope
        after processing it, so the work tracker stays balanced.
        """
        out = list(self._queue)
        self._queue.clear()
        return out

    def done(self, n: int = 1) -> None:
        """Mark ``n`` drained envelopes as fully processed."""
        if self.tracker is not None:
            self.tracker.dec(n)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue
