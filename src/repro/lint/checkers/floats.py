"""Float-safety rules (FLT*): no exact equality on convergence floats.

The convergence machinery is built on relative-change thresholds
(paper Figure 1's ε rule); an exact ``==``/``!=`` between floats in
those paths silently encodes "these two binary64 values are
bit-identical", which survives refactors only by luck — a fused
multiply-add, a different summation order, or a numpy upgrade changes
the low bits and flips the branch.  Two rules:

* FLT001 — ``==``/``!=`` against a float *literal* (``x == 0.0``,
  ``res != 1e-3``).  Exact-zero sentinels are occasionally legitimate
  (a rate of exactly 0.0 means "feature off"); suppress those with
  ``# repro: noqa[FLT001]`` and a comment saying why exactness is the
  point.
* FLT002 — ``==``/``!=`` where *every* operand is a float-flavored
  name (``residual``, ``epsilon``, ``rank`` …) inside the convergence-
  critical layers.  There is no legitimate reading of
  ``residual == epsilon``; the fix is a tolerance or an inequality.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional

from repro.lint.base import Checker, FileContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["FloatSafetyChecker"]

FLT001 = Rule(
    id="FLT001",
    name="float-literal-equality",
    summary="== / != comparison against a float literal",
    hint="compare with a tolerance (abs(x - c) <= tol) or an integer "
    "sentinel; noqa only where bit-exactness is the point",
)
FLT002 = Rule(
    id="FLT002",
    name="float-name-equality",
    summary="== / != between float-valued convergence quantities "
    "(residual, epsilon, rank, ...)",
    hint="use an inequality or a tolerance-based check "
    "(math.isclose / abs diff)",
)

#: Layers whose float comparisons decide convergence (FLT002 scope).
CONVERGENCE_PREFIXES = (
    "repro.core",
    "repro.simulation",
    "repro.analysis",
    "repro.faults",
)

#: Identifier fragments that mark a value as convergence-path float.
_FLOATY_NAME = re.compile(
    r"(residual|epsilon|\beps\b|rank|tol|err|rel_change|change|delta|damping)",
    re.IGNORECASE,
)


def _identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _eq_comparisons(tree: ast.Module) -> Iterator[ast.Compare]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            yield node


@register
class FloatSafetyChecker(Checker):
    """FLT001-FLT002: tolerance-based comparison in convergence paths."""

    rules = (FLT001, FLT002)
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        in_convergence_layer = ctx.module.startswith(CONVERGENCE_PREFIXES)
        findings: List[Finding] = []
        for cmp in _eq_comparisons(ctx.tree):
            operands = [cmp.left] + list(cmp.comparators)
            literal = next(
                (
                    o
                    for o in operands
                    if isinstance(o, ast.Constant) and isinstance(o.value, float)
                ),
                None,
            )
            if literal is not None:
                findings.append(
                    self.finding(
                        FLT001,
                        ctx.path,
                        cmp.lineno,
                        f"exact comparison against float literal "
                        f"{literal.value!r}",
                        col=cmp.col_offset,
                    )
                )
                continue
            if not in_convergence_layer:
                continue
            names = [_identifier(o) for o in operands]
            if all(name and _FLOATY_NAME.search(name) for name in names):
                joined = " == ".join(str(n) for n in names)
                findings.append(
                    self.finding(
                        FLT002,
                        ctx.path,
                        cmp.lineno,
                        f"exact equality between convergence floats ({joined})",
                        col=cmp.col_offset,
                    )
                )
        return findings
