"""Concurrency rules (CNC*): await-safety for the async peer runtime.

Rule catalogue and examples: ``docs/STATIC_ANALYSIS.md``.

The asyncio runtime (:mod:`repro.runtime`) keeps the paper's §4
exactly-once mutation ordering only because every peer's state is
touched by exactly one task and never across a yield point unguarded.
Awaits are the seams where that claim can silently tear: between
``await`` and the next statement *any* other task may have run.  These
rules flag the async anti-patterns that break the single-writer
discipline the dynamic sanitizer (:mod:`repro.sanitize`) checks at
runtime:

* CNC001 — a value read from ``self``/nonlocal shared state *before*
  an ``await`` is written back *after* it without being re-read in
  between (a stale read-modify-write spanning a yield point).
* CNC002 — blocking calls (``time.sleep``, synchronous sockets,
  ``queue.Queue``, ``subprocess``) inside ``async def``: they stall
  the entire event loop, not one task.
* CNC003 — a coroutine called as a bare statement: the coroutine
  object is created and discarded, the body never runs.
* CNC004 — the same shared runtime object (peer / mailbox / WAL /
  journal / outbox) captured into more than one ``create_task``
  closure — two tasks aliasing single-writer state.
* CNC005 — an asyncio primitive created at import time (module or
  class scope): it binds whatever loop is current *then*, not the
  runtime's loop (loop affinity must be established inside the
  owning task or constructor).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.base import Checker, FileContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["ConcurrencyChecker"]

CNC001 = Rule(
    id="CNC001",
    name="stale-write-across-await",
    summary="shared state read before an await is written back after it "
    "without re-validation",
    hint="re-read the attribute after the await (other tasks may have "
    "run) or restructure so the read-modify-write has no yield point",
)
CNC002 = Rule(
    id="CNC002",
    name="blocking-call-in-async",
    summary="blocking call inside async def stalls the whole event loop",
    hint="use the asyncio equivalent (asyncio.sleep, streams, "
    "asyncio.Queue) or push the work through a thread executor",
)
CNC003 = Rule(
    id="CNC003",
    name="unawaited-coroutine",
    summary="coroutine called as a bare statement — the body never runs",
    hint="await it, or wrap it in asyncio.create_task(...) if it should "
    "run concurrently",
)
CNC004 = Rule(
    id="CNC004",
    name="cross-task-aliasing",
    summary="the same peer/mailbox/WAL object is captured into more than "
    "one create_task closure",
    hint="single-writer discipline: give each task its own objects, or "
    "route cross-task access through messages",
)
CNC005 = Rule(
    id="CNC005",
    name="primitive-outside-loop",
    summary="asyncio primitive created at import time (module/class "
    "scope) binds the wrong event loop",
    hint="construct Event/Lock/Queue inside the owning task or the "
    "runtime constructor, where the loop is the runtime's own",
)

#: Fully-qualified callables that block the event loop (CNC002).
_BLOCKING_CALLS = {
    "time.sleep",
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "socket.socket",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "os.system",
    "os.waitpid",
}

#: asyncio coroutine functions a bare-statement call silently discards.
_ASYNC_STDLIB = {
    "asyncio.sleep",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.wait_for",
    "asyncio.shield",
    "asyncio.to_thread",
    "asyncio.open_connection",
    "asyncio.start_server",
}

#: Task-spawning entry points whose closures CNC004 inspects.
_SPAWN_ATTRS = {"create_task", "ensure_future"}

#: Identifier stems naming single-writer runtime state (CNC004).
_SHARED_STEMS = ("peer", "mailbox", "wal", "journal", "outbox")

#: asyncio primitives with loop affinity (CNC005).
_LOOP_PRIMITIVES = {
    "asyncio.Event",
    "asyncio.Lock",
    "asyncio.Condition",
    "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
    "asyncio.Queue",
    "asyncio.LifoQueue",
    "asyncio.PriorityQueue",
    "asyncio.Barrier",
}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified module/object path."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a fully-qualified dotted path."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    return ".".join([root] + parts[::-1])


def _shared_chain(expr: ast.expr, roots: Set[str]) -> Optional[str]:
    """Dotted chain for an attribute/subscript path rooted at a shared
    name (``self`` or a ``nonlocal``/``global`` binding).  Subscripts
    collapse onto their base (``self.rank[d]`` -> ``self.rank``)."""
    parts: List[str] = []
    node: ast.AST = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id in roots:
        return ".".join([node.id] + parts[::-1])
    return None


class _Event:
    """One ordered occurrence inside an async body: a shared-state load,
    a shared-state store, a local binding, or an await (yield point).

    ``value`` carries the assigned expression for ``store`` and
    ``bind`` events so the stale-write analysis can trace which reads
    flow into which writes.
    """

    __slots__ = ("kind", "chain", "node", "value")

    def __init__(
        self,
        kind: str,
        chain: Optional[str],
        node: ast.AST,
        value: Optional[ast.expr] = None,
    ) -> None:
        self.kind = kind
        self.chain = chain
        self.node = node
        self.value = value


class _AsyncBodyScanner:
    """Linearise an async function body into load/store/await events.

    Statements are visited in source order; nested function/class
    definitions are opaque (their bodies run in another frame).  The
    linearisation is an approximation — loop bodies are traversed once
    — but it is exactly the order a single fall-through execution sees,
    which is what the stale-read rule reasons about.
    """

    def __init__(self, roots: Set[str]) -> None:
        self.roots = roots
        self.events: List[_Event] = []

    # -- statements -----------------------------------------------------
    def scan_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.scan_stmt(stmt)

    def scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # another frame
        if isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value)
            for target in stmt.targets:
                self.scan_target(target, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.scan_expr(stmt.value)
            # Read-modify-write with no yield point in between: emit the
            # load immediately before the store so CNC001 sees it as
            # revalidated.
            self.scan_expr(stmt.target, load_only=True)
            self.scan_target(stmt.target, value=stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
                self.scan_target(stmt.target, value=stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self.scan_target(target)
        elif isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                self.scan_expr(value)
        elif isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.scan_expr(stmt.test)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self.events.append(_Event("await", None, stmt))
            self.scan_target(stmt.target, value=stmt.iter)
            self.scan_body(stmt.body)
            self.scan_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr)
                if item.optional_vars is not None:
                    self.scan_target(item.optional_vars, value=item.context_expr)
            if isinstance(stmt, ast.AsyncWith):
                self.events.append(_Event("await", None, stmt))
            self.scan_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.scan_body(stmt.body)
            for handler in stmt.handlers:
                self.scan_body(handler.body)
            self.scan_body(stmt.orelse)
            self.scan_body(stmt.finalbody)
        elif isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test)
            if stmt.msg is not None:
                self.scan_expr(stmt.msg)
        # Pass/Break/Continue/Import/Global/Nonlocal: no events.

    # -- expressions ----------------------------------------------------
    def scan_expr(self, expr: ast.expr, *, load_only: bool = False) -> None:
        if isinstance(expr, ast.Await):
            self.scan_expr(expr.value)
            if not load_only:
                self.events.append(_Event("await", None, expr))
            return
        if isinstance(expr, _FUNC_NODES):
            return  # another frame
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Name)):
            chain = _shared_chain(expr, self.roots)
            if chain is not None and "." in chain:
                self.events.append(_Event("load", chain, expr))
            # Still scan subscript indices and non-rooted bases.
            if isinstance(expr, ast.Subscript):
                if chain is None:
                    self.scan_expr(expr.value, load_only=load_only)
                self.scan_expr(expr.slice, load_only=load_only)
            elif isinstance(expr, ast.Attribute) and chain is None:
                self.scan_expr(expr.value, load_only=load_only)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.scan_expr(child, load_only=load_only)
            elif isinstance(child, ast.keyword):
                self.scan_expr(child.value, load_only=load_only)
            elif isinstance(child, ast.comprehension):
                self.scan_expr(child.iter, load_only=load_only)
                for cond in child.ifs:
                    self.scan_expr(cond, load_only=load_only)

    def scan_target(
        self, target: ast.expr, value: Optional[ast.expr] = None
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.scan_target(element, value=value)
            return
        if isinstance(target, ast.Starred):
            self.scan_target(target.value, value=value)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            chain = _shared_chain(target, self.roots)
            if chain is not None:
                # Subscript indices are reads even in a store position.
                if isinstance(target, ast.Subscript):
                    self.scan_expr(target.slice)
                self.events.append(_Event("store", chain, target, value))
                return
            # Unrooted target: its base expression is still evaluated.
            self.scan_expr(target.value)
            if isinstance(target, ast.Subscript):
                self.scan_expr(target.slice)
            return
        if isinstance(target, ast.Name):
            if target.id in self.roots:
                # Rebinding a nonlocal/global name is a shared-state store.
                self.events.append(_Event("store", target.id, target, value))
            else:
                # Local binding: taint bookkeeping for the stale-write rule.
                self.events.append(_Event("bind", target.id, target, value))


def _declared_shared_names(func: ast.AsyncFunctionDef) -> Set[str]:
    roots = {"self"}
    for stmt in ast.walk(func):
        if isinstance(stmt, (ast.Nonlocal, ast.Global)):
            roots.update(stmt.names)
    return roots


def _walk_function_scope(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested frames."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class ConcurrencyChecker(Checker):
    """CNC001-CNC005: await-safety for asyncio code."""

    rules = (CNC001, CNC002, CNC003, CNC004, CNC005)
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = _collect_import_aliases(ctx.tree)
        async_defs = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        ]
        module_async_names = self._async_callable_names(ctx.tree)
        findings: List[Finding] = []
        for func in async_defs:
            findings.extend(self._check_stale_writes(ctx, func))
            findings.extend(self._check_blocking_calls(ctx, func, aliases))
            findings.extend(
                self._check_bare_coroutines(ctx, func, aliases, module_async_names)
            )
        findings.extend(self._check_cross_task_aliasing(ctx, aliases))
        findings.extend(self._check_import_time_primitives(ctx, aliases))
        return findings

    # -- CNC001 ---------------------------------------------------------
    @staticmethod
    def _matches(load_chain: str, store_chain: str) -> bool:
        """Does reading ``load_chain`` observe the state ``store_chain``
        writes?  Equal, or a deeper path through it."""
        return load_chain == store_chain or load_chain.startswith(
            store_chain + "."
        )

    @classmethod
    def _chains_in(cls, expr: ast.expr, roots: Set[str]) -> Set[str]:
        """Every shared chain referenced anywhere in ``expr``."""
        chains: Set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, (ast.Attribute, ast.Subscript)):
                chain = _shared_chain(node, roots)
                if chain is not None:
                    chains.add(chain)
        return chains

    @staticmethod
    def _names_in(expr: ast.expr) -> Set[str]:
        return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}

    def _check_stale_writes(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        roots = _declared_shared_names(func)
        scanner = _AsyncBodyScanner(roots)
        scanner.scan_body(func.body)
        events = scanner.events
        await_indices = [i for i, e in enumerate(events) if e.kind == "await"]
        if not await_indices:
            return
        last_load: Dict[str, int] = {}
        # Local name -> {shared chain it carries a value of: read position}.
        taint: Dict[str, Dict[str, int]] = {}
        reported: Set[Tuple[int, int]] = set()
        for i, event in enumerate(events):
            if event.kind == "load":
                assert event.chain is not None
                last_load[event.chain] = i
            elif event.kind == "bind":
                name = event.chain
                assert name is not None
                carried: Dict[str, int] = {}
                if event.value is not None:
                    for chain in self._chains_in(event.value, roots):
                        carried[chain] = i
                    for ref in self._names_in(event.value):
                        for chain, pos in taint.get(ref, {}).items():
                            carried[chain] = min(carried.get(chain, pos), pos)
                if carried:
                    taint[name] = carried
                else:
                    taint.pop(name, None)
            elif event.kind == "store":
                chain = event.chain
                assert chain is not None
                # Read positions whose values flow into this write.
                sources: List[int] = []
                if event.value is not None:
                    direct = self._chains_in(event.value, roots)
                    if any(self._matches(c, chain) for c in direct):
                        loads = [
                            idx for c, idx in last_load.items()
                            if self._matches(c, chain)
                        ]
                        if loads:
                            sources.append(max(loads))
                    for ref in self._names_in(event.value):
                        for c, pos in taint.get(ref, {}).items():
                            if self._matches(c, chain):
                                sources.append(pos)
                # A store refreshes what later events see.
                last_load[chain] = i
                if not sources:
                    continue
                # Stale if any contributing read is separated from this
                # write by a yield point.
                if not any(
                    any(src < a < i for a in await_indices) for src in sources
                ):
                    continue
                node = event.node
                key = (node.lineno, node.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    CNC001,
                    ctx.path,
                    node.lineno,
                    f"{chain} is written from a value read before an "
                    "await, with no re-read after it — the value may be "
                    "stale",
                    col=node.col_offset,
                )

    # -- CNC002 ---------------------------------------------------------
    def _check_blocking_calls(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        aliases: Dict[str, str],
    ) -> Iterable[Finding]:
        for node in _walk_function_scope(func):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted(node.func, aliases)
            if path in _BLOCKING_CALLS:
                yield self.finding(
                    CNC002,
                    ctx.path,
                    node.lineno,
                    f"blocking call {path}() inside async def "
                    f"{func.name} stalls the event loop",
                    col=node.col_offset,
                )

    # -- CNC003 ---------------------------------------------------------
    @staticmethod
    def _async_callable_names(tree: ast.Module) -> Set[str]:
        """Names of every async def in the module (functions and
        methods) — the universe a bare call can silently discard."""
        return {
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }

    def _check_bare_coroutines(
        self,
        ctx: FileContext,
        func: ast.AsyncFunctionDef,
        aliases: Dict[str, str],
        async_names: Set[str],
    ) -> Iterable[Finding]:
        for node in _walk_function_scope(func):
            if not isinstance(node, ast.Expr) or not isinstance(
                node.value, ast.Call
            ):
                continue
            call = node.value
            callee = call.func
            coroutine: Optional[str] = None
            path = _dotted(callee, aliases)
            if path in _ASYNC_STDLIB:
                coroutine = path
            elif isinstance(callee, ast.Name) and callee.id in async_names:
                coroutine = callee.id
            elif (
                isinstance(callee, ast.Attribute)
                and callee.attr in async_names
            ):
                coroutine = callee.attr
            if coroutine is None:
                continue
            yield self.finding(
                CNC003,
                ctx.path,
                call.lineno,
                f"coroutine {coroutine}() called without await — the "
                "coroutine object is created and discarded",
                col=call.col_offset,
            )

    # -- CNC004 ---------------------------------------------------------
    @staticmethod
    def _suspect_stems(call: ast.Call) -> Set[str]:
        stems: Set[str] = set()
        for arg in list(call.args) + [k.value for k in call.keywords]:
            for sub in ast.walk(arg):
                name: Optional[str] = None
                if isinstance(sub, ast.Name):
                    name = sub.id
                elif isinstance(sub, ast.Attribute):
                    name = sub.attr
                if name is None:
                    continue
                if name in _SHARED_STEMS or any(
                    name.endswith("_" + stem) for stem in _SHARED_STEMS
                ):
                    stems.add(name)
        return stems

    def _check_cross_task_aliasing(
        self, ctx: FileContext, aliases: Dict[str, str]
    ) -> Iterable[Finding]:
        functions = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            spawned: Dict[str, ast.Call] = {}
            for node in _walk_function_scope(func):
                if not isinstance(node, ast.Call):
                    continue
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else node.func.id if isinstance(node.func, ast.Name) else None
                )
                if attr not in _SPAWN_ATTRS:
                    continue
                for stem in sorted(self._suspect_stems(node)):
                    first = spawned.get(stem)
                    if first is None:
                        spawned[stem] = node
                    elif first is not node:
                        yield self.finding(
                            CNC004,
                            ctx.path,
                            node.lineno,
                            f"shared object {stem!r} is captured by more "
                            "than one spawned task in "
                            f"{func.name} — cross-task aliasing of "
                            "single-writer state",
                            col=node.col_offset,
                        )

    # -- CNC005 ---------------------------------------------------------
    def _check_import_time_primitives(
        self, ctx: FileContext, aliases: Dict[str, str]
    ) -> Iterable[Finding]:
        # Walk with scope tracking: flag calls at module or class scope
        # (executed at import time), skip anything inside a function.
        def visit(body: List[ast.stmt]) -> Iterable[Finding]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, ast.ClassDef):
                    yield from visit(stmt.body)
                    continue
                for node in ast.walk(stmt):
                    if isinstance(node, _FUNC_NODES):
                        continue
                    if not isinstance(node, ast.Call):
                        continue
                    path = _dotted(node.func, aliases)
                    if path in _LOOP_PRIMITIVES:
                        yield self.finding(
                            CNC005,
                            ctx.path,
                            node.lineno,
                            f"{path}() created at import time binds the "
                            "import-time event loop, not the runtime's",
                            col=node.col_offset,
                        )

        return visit(ctx.tree.body)
