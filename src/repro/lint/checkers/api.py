"""API-surface rules (API*): ``__all__`` integrity and docs/API.md.

``docs/API.md`` promises "the public surface, one line per symbol",
and every subpackage re-exports its stable names through ``__all__``.
Nothing enforced either claim; these rules do:

* API001 — a name listed in ``__all__`` is never bound in the module
  (a typo there breaks ``from repro.x import *`` and silently lies to
  readers).
* API002 — a public (non-underscore) top-level function or class is
  missing from the module's ``__all__``; or a public ``repro.*``
  module declares no ``__all__`` at all.  Warning severity: hiding a
  helper is sometimes intentional, so this is the natural candidate
  for an inline suppression with a reason.
* API003 — a symbol exported by a public package ``__init__`` has no
  entry in ``docs/API.md``.
* API004 — ``docs/API.md`` documents a symbol no public package
  exports any more.

API001/API002 are file-scope; API003/API004 need every package plus
the docs tree and therefore run at project scope only.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.base import Checker, FileContext, ProjectContext, register
from repro.lint.findings import Finding, Rule, Severity

__all__ = ["ApiAllChecker", "ApiDocChecker", "exported_names"]

API001 = Rule(
    id="API001",
    name="phantom-export",
    summary="__all__ lists a name the module never binds",
    hint="remove the stale entry or restore the definition",
)
API002 = Rule(
    id="API002",
    name="unexported-public-def",
    summary="public top-level def/class missing from __all__ "
    "(or module lacks __all__ entirely)",
    hint="add the name to __all__, prefix it with an underscore, or "
    "suppress with a reason",
    severity=Severity.WARNING,
)
API003 = Rule(
    id="API003",
    name="undocumented-export",
    summary="package export has no docs/API.md entry",
    hint="add a one-line row to the package's table in docs/API.md",
)
API004 = Rule(
    id="API004",
    name="phantom-api-doc",
    summary="docs/API.md documents a symbol no package exports",
    hint="delete the stale row or restore the export",
)

_DOC_SYMBOL_ROW = re.compile(r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|")


def _is_public_module(module: str) -> bool:
    parts = module.split(".")
    return parts[0] == "repro" and not any(p.startswith("_") for p in parts[1:])


def _all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return node
    return None


def exported_names(tree: ast.Module) -> Optional[List[Tuple[str, int]]]:
    """``__all__`` string entries with their lines, or None if absent."""
    assign = _all_assignment(tree)
    if assign is None or not isinstance(assign.value, (ast.List, ast.Tuple)):
        return None
    out = []
    for elt in assign.value.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append((elt.value, elt.lineno))
    return out


def _bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assignments,
    imports — including inside top-level ``if``/``try`` blocks)."""
    bound: Set[str] = set()

    def visit_block(body: List[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound.add(node.target.id)
            elif isinstance(node, ast.Import):
                for a in node.names:
                    bound.add(a.asname or a.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for a in node.names:
                    if a.name != "*":
                        bound.add(a.asname or a.name)
            elif isinstance(node, ast.If):
                visit_block(node.body)
                visit_block(node.orelse)
            elif isinstance(node, ast.Try):
                visit_block(node.body)
                for handler in node.handlers:
                    visit_block(handler.body)
                visit_block(node.orelse)
                visit_block(node.finalbody)

    visit_block(tree.body)
    return bound


@register
class ApiAllChecker(Checker):
    """API001-API002: ``__all__`` tells the truth, module by module."""

    rules = (API001, API002)
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _is_public_module(ctx.module):
            return ()
        findings: List[Finding] = []
        exported = exported_names(ctx.tree)
        bound = _bound_names(ctx.tree)
        public_defs = [
            node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        ]
        if exported is None:
            if public_defs:
                findings.append(
                    self.finding(
                        API002,
                        ctx.path,
                        public_defs[0].lineno,
                        f"public module {ctx.module} declares no __all__",
                    )
                )
            return findings
        export_set = {name for name, _ in exported}
        for name, line in exported:
            if name not in bound:
                findings.append(
                    self.finding(
                        API001,
                        ctx.path,
                        line,
                        f"__all__ entry {name!r} is never bound in "
                        f"{ctx.module}",
                    )
                )
        for node in public_defs:
            if node.name not in export_set:
                findings.append(
                    self.finding(
                        API002,
                        ctx.path,
                        node.lineno,
                        f"public {type(node).__name__.replace('Def', '').lower()}"
                        f" {node.name!r} is not in __all__",
                    )
                )
        return findings


@register
class ApiDocChecker(Checker):
    """API003-API004: docs/API.md covers exactly the exported surface."""

    rules = (API003, API004)
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        doc = project.read_doc("API.md")
        if doc is None:
            return ()
        doc_path = project.doc_path("API.md")

        documented: Dict[str, int] = {}
        for lineno, line in enumerate(doc.splitlines(), start=1):
            m = _DOC_SYMBOL_ROW.match(line.strip())
            if m and m.group(1) not in documented:
                documented[m.group(1)] = lineno

        findings: List[Finding] = []
        all_exports: Set[str] = set()
        for ctx in project.files:
            if not ctx.path.name == "__init__.py":
                continue
            if not _is_public_module(ctx.module):
                continue
            exported = exported_names(ctx.tree)
            if exported is None:
                continue
            for name, line in exported:
                if name.startswith("__"):  # dunder metadata, not API
                    continue
                all_exports.add(name)
                if name not in documented:
                    findings.append(
                        self.finding(
                            API003,
                            ctx.path,
                            line,
                            f"{ctx.module} exports {name!r} but docs/API.md "
                            "has no row for it",
                        )
                    )
        if all_exports:  # only meaningful when packages were linted
            for name in sorted(documented):
                if name not in all_exports:
                    findings.append(
                        self.finding(
                            API004,
                            doc_path,
                            documented[name],
                            f"docs/API.md documents {name!r} but no public "
                            "package exports it",
                        )
                    )
        return findings
