"""Metrics/doc-drift rules (MET*): emitted names ↔ OBSERVABILITY.md.

``docs/OBSERVABILITY.md`` is the operator's catalogue: every metric the
instrumentation can emit, with unit, meaning and paper mapping.  The
demo cross-check test (``tests/obs/test_obs_demo.py``) already proves
demo-emitted metrics are documented — but it cannot see metrics the
demo never exercises (the ``faults.*`` namespace) and it cannot catch
documented names that no code emits any more.  These rules close both
gaps statically:

* MET001 — a metric name registered in code (a string-literal first
  argument to a ``counter``/``gauge``/``histogram``/``timer`` factory
  call) has no catalogue row in ``docs/OBSERVABILITY.md``.
* MET002 — a catalogue row names a metric no code registers.

Only dotted lowercase names in catalogue *table rows* count — prose
mentions and derived expressions (``a / b``) are ignored.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Tuple

from repro.lint.base import Checker, ProjectContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["MetricsDocChecker"]

MET001 = Rule(
    id="MET001",
    name="undocumented-metric",
    summary="metric registered in code but absent from the "
    "docs/OBSERVABILITY.md catalogue",
    hint="add a catalogue row (name, type, unit, meaning, paper "
    "mapping) to docs/OBSERVABILITY.md",
)
MET002 = Rule(
    id="MET002",
    name="phantom-metric",
    summary="metric documented in docs/OBSERVABILITY.md but never "
    "registered by any code",
    hint="delete the stale catalogue row, or restore the emission site",
)

#: Registry factory methods whose first argument names the metric.
FACTORY_METHODS = ("counter", "gauge", "histogram", "timer")

#: A well-formed metric name: dotted, lowercase, >= 2 segments.
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: A catalogue row: backticked dotted name, then an instrument-type
#: column.  The type column is what separates metric rows from the §5
#: trace-event table (whose second column is ``span``/``event``).
_DOC_ROW = re.compile(
    r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|\s*(?:counter|gauge|histogram|timer)\s*\|"
)


def _emitted_metrics(project: ProjectContext) -> Dict[str, List[Tuple[object, int]]]:
    """Metric name -> [(path, line), ...] over every linted file."""
    emitted: Dict[str, List[Tuple[object, int]]] = {}
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in FACTORY_METHODS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            if not _METRIC_NAME.match(name):
                continue
            emitted.setdefault(name, []).append((ctx.path, node.lineno))
    return emitted


def _documented_metrics(doc: str) -> Dict[str, int]:
    """Catalogue-row metric name -> 1-based doc line."""
    documented: Dict[str, int] = {}
    for lineno, line in enumerate(doc.splitlines(), start=1):
        m = _DOC_ROW.match(line.strip())
        if not m:
            continue
        name = m.group(1)
        if _METRIC_NAME.match(name) and name not in documented:
            documented[name] = lineno
    return documented


@register
class MetricsDocChecker(Checker):
    """MET001-MET002: the metric catalogue cannot drift from the code."""

    rules = (MET001, MET002)
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        doc = project.read_doc("OBSERVABILITY.md")
        if doc is None:
            return ()
        doc_path = project.doc_path("OBSERVABILITY.md")
        emitted = _emitted_metrics(project)
        documented = _documented_metrics(doc)

        findings: List[Finding] = []
        for name in sorted(emitted):
            if name in documented:
                continue
            path, line = emitted[name][0]
            findings.append(
                self.finding(
                    MET001,
                    path,
                    line,
                    f"metric {name!r} is registered here but has no "
                    "docs/OBSERVABILITY.md catalogue row",
                )
            )
        for name in sorted(documented):
            if name not in emitted:
                findings.append(
                    self.finding(
                        MET002,
                        doc_path,
                        documented[name],
                        f"documented metric {name!r} is never registered "
                        "by any linted module",
                    )
                )
        return findings
