"""Documentation rules (DOC*): module docstrings that orient a reader.

The style contract (CONTRIBUTING.md, and the docs map in
``docs/ARCHITECTURE.md``) is that every public module says what it
implements *and where that comes from* — a paper locator (``§2.4``,
``Table 3``, ``Figure 1``, ``Eq. 4``) for the reproduction layers, or
a ``docs/<NAME>.md`` pointer for the infrastructure layers.  Prose
drifts when that link is missing: a reader landing in the file cannot
tell which claim it exists to uphold.

* DOC001 — a public ``repro`` module has no module docstring at all.
* DOC002 — the docstring cites neither a paper section nor a
  ``docs/`` page, so it floats free of the documentation system.

Private modules (any ``_``-prefixed path component, e.g.
``repro._util``) are exempt; dunder modules (``__init__``,
``__main__``) are public and checked.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.lint.base import Checker, FileContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["ModuleDocChecker"]

DOC001 = Rule(
    id="DOC001",
    name="missing-module-docstring",
    summary="public repro module has no module docstring",
    hint="open with a one-paragraph summary plus a paper-section or "
    "docs/ cross-reference (see CONTRIBUTING.md, Style)",
)
DOC002 = Rule(
    id="DOC002",
    name="uncited-module-docstring",
    summary="module docstring cites neither a paper section nor a "
    "docs/ page",
    hint="add the paper locator the module implements (e.g. §3.1, "
    "Table 3, Eq. 4) or the docs/<NAME>.md page that specifies it",
)

#: What counts as a cross-reference: a paper locator or a docs/ page.
_CITATION = re.compile(
    r"§"  # § section sign
    r"|\b(?:Section|Table|Figure|Fig\.|Eq\.|Equation)\s*\d"
    r"|\bHPDC\b"
    r"|\bdocs/[A-Z][A-Z_]*\.md\b"
)


def _is_public_module(module: str) -> bool:
    """Public = no ``_``-prefixed component; dunders stay public."""
    for part in module.split("."):
        if part.startswith("__") and part.endswith("__"):
            continue
        if part.startswith("_"):
            return False
    return True


@register
class ModuleDocChecker(Checker):
    """DOC001-DOC002: public modules carry cited docstrings."""

    rules = (DOC001, DOC002)
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return ()
        if not _is_public_module(ctx.module):
            return ()

        doc = ast.get_docstring(ctx.tree)
        findings: List[Finding] = []
        if doc is None:
            findings.append(
                self.finding(
                    DOC001,
                    ctx.path,
                    1,
                    f"public module {ctx.module} has no module docstring",
                )
            )
        elif not _CITATION.search(doc):
            findings.append(
                self.finding(
                    DOC002,
                    ctx.path,
                    1,
                    f"{ctx.module}'s docstring cites neither a paper "
                    "section nor a docs/ page",
                )
            )
        return findings
