"""Determinism rules (DET*): the byte-identical-runs invariant.

Rule catalogue and layer scoping: ``docs/STATIC_ANALYSIS.md``.

The reproduction's headline guarantee — same seed, same bytes out —
holds only if no code path consults an unseeded RNG, the wall clock,
or an ordering that varies between processes.  These rules flag the
four ways that guarantee has historically been broken in distributed-
systems reproductions:

* DET001 — module-level ``random.*`` / ``numpy.random.*`` calls (the
  global RNG streams), instead of a seeded generator threaded through
  ``repro._util.rng.as_generator``.
* DET002 — wall-clock / OS-entropy reads (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``) inside the
  deterministic layers (``repro.core``, ``repro.p2p``,
  ``repro.simulation``, ``repro.faults``).  Duration measurement via
  ``time.perf_counter`` is allowed: timers report *observability*
  numbers, never feed results.
* DET003 — iterating a ``set`` (or another unordered source) into an
  ordered accumulation without ``sorted(...)``.  Even int-keyed sets
  iterate in table order, which changes with insertion history; float
  summation over such an iteration is not even associative.
* DET004 — ordering by ``id(...)``: CPython addresses differ between
  runs, so any comparison or sort key built on them does too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.base import Checker, FileContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["DeterminismChecker"]

DET001 = Rule(
    id="DET001",
    name="unseeded-global-rng",
    summary="call into the module-level random / numpy.random API "
    "(the unseeded global stream)",
    hint="thread a seeded generator through "
    "repro._util.rng.as_generator(seed) instead",
)
DET002 = Rule(
    id="DET002",
    name="wall-clock-in-deterministic-layer",
    summary="wall-clock or OS-entropy read inside repro.core / repro.p2p "
    "/ repro.simulation / repro.faults",
    hint="deterministic layers must take time/randomness as inputs; "
    "use pass indices or a seeded generator",
)
DET003 = Rule(
    id="DET003",
    name="unordered-iteration-accumulates",
    summary="iteration over an unordered collection feeds an ordered "
    "accumulation",
    hint="wrap the iterable in sorted(...) or accumulate into an "
    "order-insensitive structure",
)
DET004 = Rule(
    id="DET004",
    name="id-based-ordering",
    summary="object identity (id()) used as an ordering",
    hint="order by a stable key (document id, peer id, GUID) instead "
    "of a CPython address",
)

#: Layers where wall-clock reads are forbidden (DET002).
DETERMINISTIC_PREFIXES = (
    "repro.core",
    "repro.p2p",
    "repro.simulation",
    "repro.faults",
)

#: ``numpy.random`` attributes that are seeded-RNG plumbing, not draws.
_NP_RANDOM_SAFE = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "RandomState",  # legacy, but explicit construction is seedable
}

#: Fully-qualified callables DET002 flags.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
}

#: Calls whose result is an unordered / host-dependent sequence (DET003).
_UNORDERED_CALLS = {"set", "frozenset"}
_HOST_ORDER_CALLS = {"os.listdir", "glob.glob", "glob.iglob"}

#: Set methods that return sets (iterating their result is unordered).
_SET_COMBINATORS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}

#: Order-insensitive consumers: a generator over a set inside these is fine.
_ORDER_FREE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "any",
    "all",
    "min",
    "max",
    "dict",
    "Counter",
}


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully qualified module/object path."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a fully-qualified dotted path."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    return ".".join([root] + parts[::-1])


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """Heuristic: does this expression produce an unordered collection?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _UNORDERED_CALLS:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_COMBINATORS and _is_set_expr(
                func.value, set_names
            ):
                return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _is_host_order_call(node: ast.expr, aliases: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    path = _dotted(node.func, aliases)
    return path in _HOST_ORDER_CALLS


def _accumulates(body: List[ast.stmt]) -> bool:
    """Does a loop body feed an ordered accumulation?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("append", "extend", "insert", "write"):
                    return True
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


@register
class DeterminismChecker(Checker):
    """DET001-DET004: seeded-RNG-only, clock-free, order-stable code."""

    rules = (DET001, DET002, DET003, DET004)
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        aliases = _collect_import_aliases(ctx.tree)
        parents = ctx.parent_map()
        set_names = self._set_valued_names(ctx.tree)
        findings: List[Finding] = []
        findings.extend(self._check_rng_and_clock(ctx, aliases))
        findings.extend(self._check_unordered_iteration(ctx, aliases, parents, set_names))
        findings.extend(self._check_id_ordering(ctx, parents))
        return findings

    # -- DET001 / DET002 ------------------------------------------------
    def _check_rng_and_clock(
        self, ctx: FileContext, aliases: Dict[str, str]
    ) -> Iterable[Finding]:
        in_deterministic_layer = ctx.module.startswith(DETERMINISTIC_PREFIXES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = _dotted(node.func, aliases)
            if path is None:
                continue
            if self._is_global_rng(path, node):
                yield self.finding(
                    DET001,
                    ctx.path,
                    node.lineno,
                    f"call to unseeded global RNG API {path}()",
                    col=node.col_offset,
                )
            elif in_deterministic_layer and path in _WALL_CLOCK:
                yield self.finding(
                    DET002,
                    ctx.path,
                    node.lineno,
                    f"{path}() read inside deterministic layer "
                    f"{ctx.module}",
                    col=node.col_offset,
                )

    @staticmethod
    def _is_global_rng(path: str, call: ast.Call) -> bool:
        if path.startswith("random."):
            attr = path.split(".", 1)[1]
            # Explicitly seeded constructions are fine.
            if attr in ("Random", "SystemRandom") and call.args:
                return attr != "SystemRandom"
            return True
        for prefix in ("numpy.random.", "np.random."):
            if path.startswith(prefix):
                attr = path[len(prefix):].split(".")[0]
                if attr in _NP_RANDOM_SAFE:
                    # default_rng() with no seed is still the OS-entropy
                    # path — flag it; default_rng(seed) is the idiom.
                    return attr == "default_rng" and not (
                        call.args or call.keywords
                    )
                return True
        return False

    # -- DET003 ---------------------------------------------------------
    @staticmethod
    def _set_valued_names(tree: ast.Module) -> Set[str]:
        """Names assigned an (unsubscripted) set-producing expression."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not _is_set_expr(value, set()):
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    def _check_unordered_iteration(
        self,
        ctx: FileContext,
        aliases: Dict[str, str],
        parents: Dict[ast.AST, ast.AST],
        set_names: Set[str],
    ) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                if self._unordered(node.iter, aliases, set_names) and _accumulates(
                    node.body
                ):
                    yield self.finding(
                        DET003,
                        ctx.path,
                        node.iter.lineno,
                        "for-loop over an unordered collection accumulates "
                        "in iteration order",
                        col=node.iter.col_offset,
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                gen = node.generators[0]
                if not self._unordered(gen.iter, aliases, set_names):
                    continue
                if isinstance(node, ast.GeneratorExp):
                    parent = parents.get(node)
                    if not (
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in ("list", "tuple", "sum")
                    ):
                        continue
                else:
                    parent = parents.get(node)
                    if (
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in _ORDER_FREE_CONSUMERS
                    ):
                        continue
                yield self.finding(
                    DET003,
                    ctx.path,
                    gen.iter.lineno,
                    "comprehension over an unordered collection builds an "
                    "ordered result",
                    col=gen.iter.col_offset,
                )

    @staticmethod
    def _unordered(
        iter_expr: ast.expr, aliases: Dict[str, str], set_names: Set[str]
    ) -> bool:
        return _is_set_expr(iter_expr, set_names) or _is_host_order_call(
            iter_expr, aliases
        )

    # -- DET004 ---------------------------------------------------------
    def _check_id_ordering(
        self, ctx: FileContext, parents: Dict[ast.AST, ast.AST]
    ) -> Iterable[Finding]:
        def contains_id_call(node: ast.AST) -> Optional[ast.Call]:
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    return sub
            return None

        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            hit: Optional[ast.Call] = None
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                for operand in [node.left] + list(node.comparators):
                    hit = contains_id_call(operand)
                    if hit:
                        break
            elif isinstance(node, ast.Call):
                is_sort = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("sorted", "min", "max")
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if is_sort:
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        hit = contains_id_call(arg)
                        if hit:
                            break
            if hit is None:
                continue
            key = (hit.lineno, hit.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                DET004,
                ctx.path,
                hit.lineno,
                "id() used as an ordering key — CPython addresses differ "
                "between runs",
                col=hit.col_offset,
            )
