"""Protocol-conformance rules (PRO*): code ↔ PROTOCOL.md lockstep.

PR 2 shipped a fix for exactly this failure mode: the §2 message-format
table in ``docs/PROTOCOL.md`` had drifted from the dataclasses in
``repro/p2p/messages.py`` (renamed fields, fields the Eq. 4 cost model
never priced).  These rules make that drift a lint error instead of a
reviewer catch:

* PRO001 — every field of ``PagerankUpdate`` appears in the §2 field
  table, and every documented field exists on the dataclass.
* PRO002 — the *priced* wire sizes in the §2 table (``128 bits``,
  ``64-bit float``; ``0 (unpriced)`` rows are free) must sum to the
  ``MESSAGE_SIZE_BYTES`` constant the whole cost model (§4.6.1)
  prices traffic with.
* PRO003 — every message dataclass in the messages module must expose
  a ``size_bytes`` property, so no message type can escape the cost
  model unpriced.

These are *project*-scope rules: they need both the parsed messages
module and the ``docs/`` tree, so they run only on full-tree lints.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.base import Checker, FileContext, ProjectContext, register
from repro.lint.findings import Finding, Rule

__all__ = ["ProtocolChecker"]

PRO001 = Rule(
    id="PRO001",
    name="message-field-drift",
    summary="PagerankUpdate dataclass fields and the docs/PROTOCOL.md "
    "section 2 field table disagree",
    hint="add the missing row to the table (with a wire size or "
    "'0 (unpriced)') or the missing field to the dataclass",
)
PRO002 = Rule(
    id="PRO002",
    name="message-size-drift",
    summary="priced wire sizes in the PROTOCOL.md field table do not "
    "sum to MESSAGE_SIZE_BYTES",
    hint="reconcile the table's bit widths with the constant the "
    "Eq. 4 cost model prices messages at",
)
PRO003 = Rule(
    id="PRO003",
    name="unpriced-message-type",
    summary="message dataclass lacks a size_bytes property",
    hint="every wire message must be priced: add a size_bytes property "
    "returning its accounting size",
)

#: The dataclass whose fields the section 2 table documents.
UPDATE_CLASS = "PagerankUpdate"

#: Name of the constant the traffic accounting prices updates with.
SIZE_CONSTANT = "MESSAGE_SIZE_BYTES"

_TABLE_ROW = re.compile(r"^\|\s*`(\w+)`\s*\|\s*([^|]+?)\s*\|")
_BITS = re.compile(r"(\d+)[\s-]*bit")


def _message_section(doc: str) -> Tuple[int, str]:
    """(1-based start line, text) of the '## 2. Message format' section."""
    lines = doc.splitlines()
    start = end = None
    for i, line in enumerate(lines):
        if start is None and re.match(r"^##\s+2\.", line):
            start = i
        elif start is not None and line.startswith("## "):
            end = i
            break
    if start is None:
        return 0, ""
    return start + 1, "\n".join(lines[start : end if end is not None else len(lines)])


def _doc_fields(section: str, first_line: int) -> Dict[str, Tuple[int, int]]:
    """Documented field -> (priced wire bytes, 1-based doc line)."""
    fields: Dict[str, Tuple[int, int]] = {}
    for offset, line in enumerate(section.splitlines()):
        m = _TABLE_ROW.match(line.strip())
        if not m:
            continue
        name, size_text = m.group(1), m.group(2)
        bits = _BITS.search(size_text)
        if bits:
            priced = int(bits.group(1)) // 8
        else:
            priced = 0  # '0 (unpriced)' rows and anything unparseable
        fields[name] = (priced, first_line + offset)
    return fields


def _dataclasses(tree: ast.Module) -> List[ast.ClassDef]:
    out = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name == "dataclass":
                out.append(node)
                break
    return out


def _field_names(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    """Annotated dataclass fields (name, line), declaration order."""
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def _has_size_bytes(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "size_bytes":
            return True
    return False


def _int_constant(tree: ast.Module, name: str) -> Optional[Tuple[int, int]]:
    """(value, line) of a module-level integer assignment to ``name``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(node.value, ast.Constant):
                value = node.value.value
                if isinstance(value, int):
                    return value, node.lineno
    return None


@register
class ProtocolChecker(Checker):
    """PRO001-PRO003: message dataclasses priced and documented."""

    rules = (PRO001, PRO002, PRO003)
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        ctx = project.find_module("p2p.messages")
        if ctx is None:
            return ()
        findings: List[Finding] = []
        doc = project.read_doc("PROTOCOL.md")
        doc_path = project.doc_path("PROTOCOL.md")

        update_cls = next(
            (c for c in _dataclasses(ctx.tree) if c.name == UPDATE_CLASS), None
        )

        if doc is not None and update_cls is not None:
            section_line, section = _message_section(doc)
            documented = _doc_fields(section, section_line)
            declared = _field_names(update_cls)
            declared_names = {name for name, _ in declared}
            for name, line in declared:
                if name not in documented:
                    findings.append(
                        self.finding(
                            PRO001,
                            ctx.path,
                            line,
                            f"{UPDATE_CLASS}.{name} has no row in the "
                            "PROTOCOL.md section 2 field table",
                        )
                    )
            for name, (_, doc_line) in sorted(documented.items()):
                if name not in declared_names:
                    findings.append(
                        self.finding(
                            PRO001,
                            doc_path,
                            doc_line,
                            f"documented field `{name}` does not exist on "
                            f"{UPDATE_CLASS}",
                        )
                    )

            constant = _int_constant(ctx.tree, SIZE_CONSTANT)
            if constant is not None and documented:
                priced = sum(size for size, _ in documented.values())
                value, const_line = constant
                if priced != value:
                    findings.append(
                        self.finding(
                            PRO002,
                            ctx.path,
                            const_line,
                            f"{SIZE_CONSTANT} is {value} but the documented "
                            f"priced field widths sum to {priced} bytes",
                        )
                    )

        for cls in _dataclasses(ctx.tree):
            if not _has_size_bytes(cls):
                findings.append(
                    self.finding(
                        PRO003,
                        ctx.path,
                        cls.lineno,
                        f"message dataclass {cls.name} has no size_bytes "
                        "property — the Eq. 4 cost model cannot price it",
                    )
                )
        return findings
