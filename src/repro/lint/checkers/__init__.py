"""Checker plugins.  Importing this package registers every checker.

Each module self-registers its checker classes via
:func:`repro.lint.base.register`; the imports below are therefore
imports-for-effect.  Adding a checker = adding a module here plus its
import, a rule-catalogue entry in ``docs/STATIC_ANALYSIS.md`` (the
lockstep test enforces that), and a fixture test.
"""

from repro.lint.checkers.api import ApiAllChecker, ApiDocChecker
from repro.lint.checkers.concurrency import ConcurrencyChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.docs import ModuleDocChecker
from repro.lint.checkers.floats import FloatSafetyChecker
from repro.lint.checkers.metrics import MetricsDocChecker
from repro.lint.checkers.protocol import ProtocolChecker

__all__ = [
    "ApiAllChecker",
    "ApiDocChecker",
    "ConcurrencyChecker",
    "DeterminismChecker",
    "FloatSafetyChecker",
    "MetricsDocChecker",
    "ModuleDocChecker",
    "ProtocolChecker",
]
