"""The lint engine: collect files, run checkers, filter suppressions.

Orchestration only — rules live in :mod:`repro.lint.checkers` (the
catalogue is ``docs/STATIC_ANALYSIS.md``), data shapes in
:mod:`repro.lint.findings`.  The engine is itself held to
the determinism bar it enforces: files are visited in sorted order and
findings are sorted before they are returned, so two runs over the
same tree emit byte-identical reports.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.base import (
    Checker,
    FileContext,
    ProjectContext,
    all_checkers,
)
from repro.lint.findings import Baseline, Finding, Rule, Severity, sort_findings

__all__ = ["PARSE_RULE", "LintResult", "collect_files", "changed_files", "lint_paths"]

#: Engine-level rule for files the ``ast`` module cannot parse.  Not
#: attached to a checker (nothing can run on an unparsed file) but part
#: of the documented catalogue like every other rule.
PARSE_RULE = Rule(
    id="LNT000",
    name="unparseable-source",
    summary="file could not be parsed as Python",
    hint="fix the syntax error; nothing else can be checked until "
    "the file parses",
)


@dataclass
class LintResult:
    """Outcome of one lint run: surviving findings plus bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    files_linted: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing survived filtering — the exit-0 condition."""
        return not self.findings


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand ``paths`` (files or directories) to a sorted list of
    ``.py`` files, deduplicated, ``__pycache__`` excluded."""
    seen = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for cand in candidates:
            if "__pycache__" in cand.parts:
                continue
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(cand)
    return out


def changed_files(root: Path) -> List[Path]:
    """``git diff --name-only HEAD`` relative to ``root`` — the fast
    pre-commit universe (tracked modifications, staged or not).

    Restricted to ``root/src`` when that directory exists, mirroring
    the full-tree default: test code legitimately asserts exact float
    values and pokes private state, so it is linted only when named
    explicitly.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", "HEAD"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    src = root / "src"
    universe = (src if src.is_dir() else root).resolve()
    out: List[Path] = []
    for line in sorted(proc.stdout.splitlines()):
        candidate = root / line.strip()
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        if universe not in candidate.resolve().parents:
            continue
        out.append(candidate)
    return out


def _relative(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def lint_paths(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    *,
    include_project: bool = True,
    baseline: Optional[Baseline] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Lint ``paths`` (default: ``root/src``) and return the result.

    Parameters
    ----------
    root:
        Repository root — the ``docs/`` tree for cross-file checkers
        hangs off it, and finding paths are reported relative to it.
    paths:
        Files or directories to lint; defaults to ``root/src`` when it
        exists, else ``root`` itself.
    include_project:
        Run the cross-file (project-scope) checkers.  Disabled by
        ``--changed``, whose partial universe would make every
        "never emitted / never exported" rule fire spuriously.
    baseline:
        Optional justified-findings baseline; matching findings are
        counted in ``baselined`` instead of reported.
    checkers:
        Override the registered checker set (tests only).
    """
    if paths is None or not paths:
        src = root / "src"
        paths = [src if src.is_dir() else root]
    files = collect_files([Path(p) for p in paths])

    active = (
        list(checkers) if checkers is not None else [cls() for cls in all_checkers()]
    )
    file_checkers = [c for c in active if c.scope == "file"]
    project_checkers = [c for c in active if c.scope == "project"]

    result = LintResult()
    contexts: List[FileContext] = []
    raw: List[Finding] = []
    for path in files:
        try:
            ctx = FileContext.from_path(path)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    rule=PARSE_RULE.id,
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                    severity=PARSE_RULE.severity,
                    hint=PARSE_RULE.hint,
                )
            )
            result.files_linted += 1
            continue
        contexts.append(ctx)
        result.files_linted += 1
        for checker in file_checkers:
            for finding in checker.check_file(ctx):
                if ctx.is_suppressed(finding.line, finding.rule):
                    result.suppressed += 1
                else:
                    raw.append(finding)

    if include_project and project_checkers:
        project = ProjectContext(root=root, files=contexts)
        by_path = {str(ctx.path): ctx for ctx in contexts}
        for checker in project_checkers:
            for finding in checker.check_project(project):
                ctx = by_path.get(finding.path)
                if ctx is not None and ctx.is_suppressed(finding.line, finding.rule):
                    result.suppressed += 1
                else:
                    raw.append(finding)

    relativized = [
        Finding(
            rule=f.rule,
            path=_relative(Path(f.path), root),
            line=f.line,
            col=f.col,
            message=f.message,
            severity=f.severity,
            hint=f.hint,
        )
        for f in raw
    ]
    if baseline is not None:
        kept: List[Finding] = []
        for finding in relativized:
            if baseline.covers(finding):
                result.baselined += 1
            else:
                kept.append(finding)
        relativized = kept
    result.findings = sort_findings(relativized)
    return result
