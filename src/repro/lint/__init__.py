"""repro.lint — AST-based invariant checking for this repository.

A small checker-plugin framework (``repro lint`` on the command line,
``make lint``, a required CI job) that enforces the reproduction's
*own* invariants statically: seeded-RNG-only determinism, protocol
tables in lockstep with the message dataclasses, the metric catalogue
in lockstep with the emission sites, truthful ``__all__``/API docs,
and tolerance-based float comparison in convergence paths.

Rule catalogue, suppression syntax (``# repro: noqa[RULE]``) and the
how-to-add-a-checker guide live in ``docs/STATIC_ANALYSIS.md``.

>>> from pathlib import Path
>>> from repro.lint import FileContext, all_rules
>>> ctx = FileContext.from_source(Path("x.py"), "import random\\nrandom.random()\\n")
>>> sorted(r.id for r in all_rules())[0]
'API001'
"""

from repro.lint.base import (
    Checker,
    FileContext,
    ProjectContext,
    all_checkers,
    all_rules,
    module_name_for,
    register,
    rule_by_id,
)
from repro.lint.engine import (
    PARSE_RULE,
    LintResult,
    collect_files,
    lint_paths,
)
from repro.lint.findings import (
    SCHEMA_VERSION,
    Baseline,
    BaselineEntry,
    Finding,
    Rule,
    Severity,
    findings_from_json,
    findings_to_json,
    sort_findings,
)

__all__ = [
    "Checker",
    "FileContext",
    "ProjectContext",
    "all_checkers",
    "all_rules",
    "module_name_for",
    "register",
    "rule_by_id",
    "PARSE_RULE",
    "LintResult",
    "collect_files",
    "lint_paths",
    "SCHEMA_VERSION",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Rule",
    "Severity",
    "findings_from_json",
    "findings_to_json",
    "sort_findings",
]
