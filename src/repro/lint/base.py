"""Checker plugin architecture: contexts, base class, rule registry.

Two checker scopes exist:

* **file** — sees one parsed module at a time (:class:`FileContext`);
  determinism and float-safety rules live here.
* **project** — sees every linted module plus the repo's ``docs/``
  tree (:class:`ProjectContext`); the cross-file conformance rules
  (protocol tables, metric catalogue, API docs) live here and only run
  on full-tree lints, where their universe of emission/definition
  sites is actually complete.

Checkers self-register via the :func:`register` decorator at import
time (:mod:`repro.lint.checkers` imports every checker module), so the
engine, the CLI's ``--list-rules``, and the docs-lockstep test all see
one authoritative rule set.  The how-to-add-a-checker walkthrough
lives in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from repro.lint.findings import Finding, Rule

__all__ = [
    "module_name_for",
    "FileContext",
    "ProjectContext",
    "Checker",
    "register",
    "all_checkers",
    "all_rules",
    "rule_by_id",
]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[DET001,FLT002]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


def _parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule ids (None = all)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(lines, start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[i] = None
        else:
            out[i] = {r.strip().upper() for r in m.group(1).split(",") if r.strip()}
    return out


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Uses the *last* ``repro`` component in the path, so it works from
    any checkout location (``src/repro/core/pagerank.py`` →
    ``repro.core.pagerank``).  Files outside a ``repro`` tree fall back
    to their stem, which keeps the file-scope rules usable on loose
    fixture files.
    """
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[idx:-1] + ([] if name == "__init__" else [name])
        return ".".join(dotted)
    return name


@dataclass
class FileContext:
    """One parsed source file plus its suppression map."""

    path: Path
    source: str
    tree: ast.Module
    module: str
    noqa: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, path: Path, source: str, *, module: Optional[str] = None
    ) -> "FileContext":
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module if module is not None else module_name_for(path),
            noqa=_parse_noqa(lines),
        )

    @classmethod
    def from_path(cls, path: Path, *, module: Optional[str] = None) -> "FileContext":
        return cls.from_source(
            path, path.read_text(encoding="utf-8"), module=module
        )

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule_id.upper() in rules

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent for every node (computed on demand)."""
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents


@dataclass
class ProjectContext:
    """Everything a cross-file checker can see.

    ``files`` holds the full set of :class:`FileContext` objects for
    this lint run; ``root`` is the repository root the ``docs/`` tree
    hangs off.
    """

    root: Path
    files: List[FileContext]

    def doc_path(self, name: str) -> Path:
        return self.root / "docs" / name

    def read_doc(self, name: str) -> Optional[str]:
        """Contents of ``docs/<name>`` or ``None`` if absent."""
        p = self.doc_path(name)
        if not p.is_file():
            return None
        return p.read_text(encoding="utf-8")

    def find_module(self, suffix: str) -> Optional[FileContext]:
        """The linted file whose dotted module name ends with ``suffix``."""
        for ctx in self.files:
            if ctx.module == suffix or ctx.module.endswith("." + suffix):
                return ctx
        return None


class Checker:
    """Base class for lint checkers.

    Subclasses set ``rules`` (the :class:`Rule` objects they can emit)
    and ``scope`` (``"file"`` or ``"project"``), then override the
    matching ``check_*`` method.  Emitted findings must use one of the
    declared rule ids — the engine enforces this, so the rule catalogue
    can never silently lag the implementation.
    """

    rules: Sequence[Rule] = ()
    scope: str = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        return ()

    # Convenience for subclasses.
    def finding(
        self,
        rule: Rule,
        path: Path,
        line: int,
        message: str,
        *,
        col: int = 0,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=rule.id,
            path=str(path),
            line=line,
            col=col,
            message=message,
            severity=rule.severity,
            hint=rule.hint if hint is None else hint,
        )


_CHECKERS: List[Type[Checker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the global checker registry."""
    if not issubclass(cls, Checker):
        raise TypeError(f"{cls.__name__} is not a Checker subclass")
    if not cls.rules:
        raise ValueError(f"{cls.__name__} declares no rules")
    if cls.scope not in ("file", "project"):
        raise ValueError(f"{cls.__name__}.scope must be 'file' or 'project'")
    existing = {r.id for c in _CHECKERS for r in c.rules}
    for rule in cls.rules:
        if rule.id in existing:
            raise ValueError(f"duplicate rule id {rule.id} from {cls.__name__}")
    _CHECKERS.append(cls)
    return cls


def all_checkers() -> List[Type[Checker]]:
    """Registered checker classes (importing :mod:`repro.lint.checkers`
    first, so the registry is populated)."""
    import repro.lint.checkers  # noqa: F401  (import-for-effect)

    return list(_CHECKERS)


def all_rules() -> List[Rule]:
    """Every rule from every registered checker, sorted by id."""
    return sorted(
        (r for c in all_checkers() for r in c.rules), key=lambda r: r.id
    )


def rule_by_id(rule_id: str) -> Optional[Rule]:
    for rule in all_rules():
        if rule.id == rule_id:
            return rule
    return None
