"""Structured lint findings and their JSON wire format.

A finding is one rule violation at one source location.  Findings are
plain data end to end: checkers yield them, the engine filters them
(``# repro: noqa[...]`` suppressions, baseline entries), and the CLI
renders the survivors as an aligned table or as JSON whose schema is
stable enough to diff across runs (``schema_version`` guards it).
Baseline and suppression semantics are specified in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "Severity",
    "Rule",
    "Finding",
    "Baseline",
    "BaselineEntry",
    "sort_findings",
    "findings_to_json",
    "findings_from_json",
]

#: Bumped whenever the JSON layout below changes incompatibly.
SCHEMA_VERSION = 1


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings are invariant violations (nondeterminism,
    protocol drift) — they fail the build.  ``WARNING`` findings are
    hygiene issues (missing ``__all__`` entry) that still fail ``repro
    lint`` by default but are the natural candidates for a justified
    baseline entry.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule.

    The full catalogue — one entry per :class:`Rule` registered by a
    checker — lives in ``docs/STATIC_ANALYSIS.md``; a lockstep test
    keeps the two in sync.
    """

    id: str
    name: str
    summary: str
    hint: str = ""
    severity: Severity = Severity.ERROR


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repo-root-relative where possible (the engine
    relativises it); ``line``/``col`` are 1-based/0-based as in the
    ``ast`` module.  ``hint`` carries the rule's fix suggestion,
    possibly specialised by the checker.
    """

    rule: str
    path: str
    line: int
    message: str
    col: int = 0
    severity: Severity = Severity.ERROR
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["severity"] = self.severity.value
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "Finding":
        return cls(
            rule=str(d["rule"]),
            path=str(d["path"]),
            line=int(d["line"]),  # type: ignore[arg-type]
            message=str(d["message"]),
            col=int(d.get("col", 0)),  # type: ignore[arg-type]
            severity=Severity(str(d.get("severity", "error"))),
            hint=str(d.get("hint", "")),
        )


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Stable presentation order: path, line, column, rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def findings_to_json(findings: Sequence[Finding], *, indent: int = 2) -> str:
    """Serialise findings to the versioned JSON document."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "findings": [f.to_dict() for f in sort_findings(findings)],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        },
    }
    return json.dumps(doc, indent=indent)


def findings_from_json(text: str) -> List[Finding]:
    """Parse a document produced by :func:`findings_to_json`."""
    doc = json.loads(text)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported findings schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return [Finding.from_dict(d) for d in doc["findings"]]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted (grandfathered) finding.

    Baselines let ``repro lint`` adopt a rule before the tree is fully
    clean — but every entry must say *why* the violation is acceptable,
    so the baseline cannot silently become a dumping ground.
    """

    rule: str
    path: str
    justification: str
    message_prefix: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.path == self.path
            and finding.message.startswith(self.message_prefix)
        )


@dataclass
class Baseline:
    """A set of justified :class:`BaselineEntry` records (JSON file)."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, text: str) -> "Baseline":
        doc = json.loads(text)
        entries = []
        for raw in doc.get("entries", []):
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"baseline entry for {raw.get('rule')} at {raw.get('path')} "
                    "has no justification — every accepted finding must say why"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    justification=justification,
                    message_prefix=str(raw.get("message_prefix", "")),
                )
            )
        return cls(entries)

    def dump(self) -> str:
        return json.dumps(
            {"entries": [asdict(e) for e in self.entries]}, indent=2
        )

    def covers(self, finding: Finding) -> bool:
        return any(e.matches(finding) for e in self.entries)
