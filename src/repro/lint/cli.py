"""``repro lint`` — the static-analysis entry point (docs/STATIC_ANALYSIS.md).

Kept separate from :mod:`repro.cli` so the top-level CLI stays a thin
dispatcher; that module calls :func:`configure_parser` to mount the
arguments and :func:`run` to execute.  Rendering is plain text (one
finding per line, ``path:line:col``) or the versioned JSON document of
:mod:`repro.lint.findings` — stable enough to diff across runs or feed
a CI annotation step.

Exit codes: 0 = clean (after suppressions and baseline), 1 = findings
survived, 2 = bad invocation (argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.base import all_rules
from repro.lint.engine import PARSE_RULE, LintResult, changed_files, lint_paths
from repro.lint.findings import Baseline, findings_to_json

__all__ = ["configure_parser", "run", "render_table", "DEFAULT_BASELINE_NAME"]

#: Picked up automatically when present at the repo root.
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Mount ``repro lint``'s arguments onto ``parser``."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repository root (docs/ cross-checks and path reporting; "
        "default: current directory)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"justified-findings baseline file (default: "
        f"<root>/{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files reported by `git diff --name-only HEAD` "
        "(file-scope rules only — fast pre-commit mode)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _load_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    path = args.baseline
    if path is None:
        candidate = args.root / DEFAULT_BASELINE_NAME
        if not candidate.is_file():
            return None
        path = candidate
    return Baseline.load(path.read_text(encoding="utf-8"))


def _render_rules() -> str:
    rows = [(r.id, r.severity.value, r.name, r.summary) for r in all_rules()]
    rows.append(
        (PARSE_RULE.id, PARSE_RULE.severity.value, PARSE_RULE.name, PARSE_RULE.summary)
    )
    rows.sort()
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = [
        f"{rid:<{widths[0]}}  {sev:<{widths[1]}}  {name:<{widths[2]}}  {summary}"
        for rid, sev, name, summary in rows
    ]
    lines.append(f"{len(rows)} rules (catalogue: docs/STATIC_ANALYSIS.md)")
    return "\n".join(lines)


def render_table(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines: List[str] = []
    for f in result.findings:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity.value}] {f.message}"
        )
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    summary = (
        f"{result.files_linted} files: {result.errors} errors, "
        f"{result.warnings} warnings"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns exit code."""
    if args.list_rules:
        print(_render_rules())
        return 0
    root = args.root
    paths = list(args.paths)
    if args.changed:
        paths = changed_files(root)
        if not paths:
            print("no changed python files")
            return 0
    try:
        baseline = _load_baseline(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = lint_paths(
        root,
        paths or None,
        include_project=not args.changed,
        baseline=baseline,
    )
    if args.format == "json":
        print(findings_to_json(result.findings))
    else:
        print(render_table(result))
    return 0 if result.ok else 1
