"""Convergence trajectories (paper §4.3's in-text claims).

Beyond Table 1's final pass counts, §4.3 makes two finer-grained
claims about *how* the distributed result approaches the reference:

* "the pagerank R_d converges to within 0.1 % of R_c in as few as 30
  passes";
* "for all the graphs, more than 99 % of the nodes converged to within
  1 % of R_c in less than 10 passes".

:func:`convergence_trajectory` records, for every pass of a chaotic
run, the fraction of documents within a set of error bands of the
reference solution, and :func:`passes_to_quality` extracts the claims'
headline numbers.  The trajectory benchmark asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.core.distributed import AvailabilityModel, ChaoticPagerank
from repro.core.pagerank import pagerank_reference

__all__ = [
    "ConvergenceTrajectory",
    "convergence_trajectory",
    "passes_to_quality",
    "time_to_quality",
]


@dataclass(frozen=True)
class ConvergenceTrajectory:
    """Per-pass error-band occupancy of a distributed run.

    Attributes
    ----------
    bands:
        The relative-error levels tracked (e.g. 0.01 = within 1 %).
    fractions:
        Array of shape ``(passes, len(bands))``;
        ``fractions[t, b]`` = fraction of documents within ``bands[b]``
        of the reference after pass ``t``.
    passes:
        Number of passes recorded.
    """

    bands: Tuple[float, ...]
    fractions: np.ndarray
    passes: int

    def passes_until(self, band: float, fraction: float) -> Optional[int]:
        """First pass (1-based) at which at least ``fraction`` of the
        documents are within ``band`` of the reference — or ``None`` if
        never reached."""
        try:
            b = self.bands.index(band)
        except ValueError as exc:
            raise ValueError(f"band {band} not tracked; have {self.bands}") from exc
        hits = np.flatnonzero(self.fractions[:, b] >= fraction)
        return int(hits[0]) + 1 if hits.size else None

    def render(self, *, every: int = 1) -> str:
        """Tabulate the trajectory (optionally subsampled)."""
        headers = ["pass"] + [f"within {b:g}" for b in self.bands]
        rows = [
            [t + 1] + [float(self.fractions[t, b]) for b in range(len(self.bands))]
            for t in range(0, self.passes, max(every, 1))
        ]
        return format_table(headers, rows, title="Convergence trajectory")


def convergence_trajectory(
    graph,
    assignment=None,
    *,
    epsilon: float = 1e-4,
    damping: float = 0.85,
    bands: Sequence[float] = (0.01, 0.001),
    reference: Optional[np.ndarray] = None,
    max_passes: int = 10_000,
    availability: Optional[AvailabilityModel] = None,
    num_peers: Optional[int] = None,
    return_report: bool = False,
):
    """Run the chaotic engine and record error-band occupancy per pass.

    Parameters
    ----------
    graph, assignment, epsilon, damping, num_peers, availability:
        Engine parameters (see :class:`~repro.core.distributed.
        ChaoticPagerank`).
    bands:
        Relative-error levels to track, e.g. ``(0.01, 0.001)`` for the
        paper's 1 % and 0.1 % claims.
    reference:
        Precomputed ``R_c``; solved tightly here when omitted.
    return_report:
        Also return the engine's :class:`~repro.core.convergence.
        RunReport` (with per-pass history) as a second value — needed
        by :func:`time_to_quality`, which prices passes in bytes.
    """
    bands = tuple(float(b) for b in bands)
    if not bands or any(b <= 0 for b in bands):
        raise ValueError(f"bands must be positive, got {bands}")
    ref = (
        np.asarray(reference, dtype=np.float64)
        if reference is not None
        else pagerank_reference(graph, damping=damping).ranks
    )
    if ref.shape != (graph.num_nodes,):
        raise ValueError("reference has wrong shape")

    rows = []

    def observe(t: int, ranks: np.ndarray) -> None:
        rel = np.abs(ranks - ref) / np.abs(ref)
        rows.append([float((rel <= b).mean()) for b in bands])

    engine = ChaoticPagerank(
        graph, assignment, num_peers=num_peers, epsilon=epsilon, damping=damping
    )
    report = engine.run(
        max_passes=max_passes,
        availability=availability,
        on_pass=observe,
        keep_history=return_report,
    )
    fractions = np.asarray(rows, dtype=np.float64)
    trajectory = ConvergenceTrajectory(
        bands=bands, fractions=fractions, passes=len(rows)
    )
    if return_report:
        return trajectory, report
    return trajectory


def passes_to_quality(
    trajectory: ConvergenceTrajectory,
) -> Dict[str, Optional[int]]:
    """The §4.3 headline numbers from a trajectory.

    Returns a dict with the paper's two claims:
    ``"99pct_within_1pct"`` and ``"all_within_0.1pct"`` (pass indices,
    1-based, or ``None`` if the run never got there).  Requires the
    trajectory to track bands 0.01 and 0.001.
    """
    return {
        "99pct_within_1pct": trajectory.passes_until(0.01, 0.99),
        "all_within_0.1pct": trajectory.passes_until(0.001, 0.999),
    }


def time_to_quality(
    trajectory: ConvergenceTrajectory,
    report,
    *,
    band: float,
    fraction: float,
    rate_bytes_per_s: float,
    message_size_bytes: int = 24,
    compute_time_per_pass: float = 0.0,
) -> Optional[float]:
    """Wall-clock seconds until a quality level, under the §4.6.1 model.

    Combines a :func:`convergence_trajectory` run (``return_report=True``)
    with the Eq. 4 transfer accounting: the cost of pass ``t`` is its
    message bytes divided by the transfer rate, plus the constant
    compute term.  Returns the cumulative time at the first pass where
    at least ``fraction`` of documents are within ``band`` of the
    reference — the quantity behind the paper's "99 % of the graph
    converges in as few as 10 passes which would correspond to
    approximately 4 days" (§4.6.2).

    Returns ``None`` if the run never reached the quality level.
    """
    if rate_bytes_per_s <= 0:
        raise ValueError("rate_bytes_per_s must be > 0")
    target_pass = trajectory.passes_until(band, fraction)
    if target_pass is None:
        return None
    if len(report.history) < target_pass:
        raise ValueError(
            "report has no per-pass history; run convergence_trajectory "
            "with return_report=True"
        )
    bytes_per_pass = report.bytes_by_pass(message_size_bytes=message_size_bytes)
    comm = float(bytes_per_pass[:target_pass].sum()) / rate_bytes_per_s
    return comm + target_pass * compute_time_per_pass
