"""Experiment drivers: one function per table in the paper (§4).

Each ``tableN`` function runs the workload behind the corresponding
table of the evaluation section and returns a structured result with a
``render()`` method printing the same rows the paper reports.  The
benchmark harness (``benchmarks/``) is a thin wrapper over these, and
EXPERIMENTS.md records their output against the paper's numbers.

Scale
-----
The paper's graphs go up to 5,000,000 nodes.  All drivers take explicit
``sizes``; :func:`default_sizes` returns laptop-scale defaults (10k /
30k / 100k) unless the ``REPRO_FULL_SCALE`` environment variable is set
(non-empty), in which case the paper's sizes are used.  The paper's
headline *shape* claims hold at either scale.

Seeding
-------
Every driver takes one integer ``seed``; all randomness (graph
synthesis, placement, churn, insert sampling, corpus, queries) derives
from it via independent spawned streams, so results are exactly
reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import SeedLike, as_generator, spawn_generators
from repro.analysis.error_stats import (
    PAPER_PERCENTILES,
    ErrorDistribution,
    error_distribution,
)
from repro.analysis.tables import format_table
from repro.core.distributed import ChaoticPagerank
from repro.core.incremental import simulate_insert
from repro.core.pagerank import pagerank_reference
from repro.graphs.linkgraph import LinkGraph
from repro.graphs.powerlaw import broder_graph
from repro.p2p.churn import FixedFractionChurn
from repro.p2p.network import DocumentPlacement
from repro.search.baseline import baseline_search
from repro.search.corpus import CorpusConfig, synthesize_corpus
from repro.search.incremental import incremental_search
from repro.search.index import DistributedIndex
from repro.search.query import generate_queries

__all__ = [
    "DEFAULT_SIZES",
    "FULL_SIZES",
    "PAPER_THRESHOLDS",
    "INSERT_THRESHOLDS",
    "default_sizes",
    "make_graph",
    "clear_graph_cache",
    "Table1Result",
    "table1",
    "Table2Result",
    "table2",
    "Table3Result",
    "table3",
    "Table4Result",
    "table4",
    "Table5Result",
    "table5",
    "Table6Result",
    "table6",
]

#: Laptop-scale default graph sizes (paper: 10k/100k/500k/5000k).
DEFAULT_SIZES: Tuple[int, ...] = (10_000, 30_000, 100_000)
#: The paper's sizes, enabled with ``REPRO_FULL_SCALE=1``.
FULL_SIZES: Tuple[int, ...] = (10_000, 100_000, 500_000, 5_000_000)

#: Table 2/3's convergence thresholds ε.
PAPER_THRESHOLDS: Tuple[float, ...] = (0.2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7)
#: Table 4's thresholds (the paper sweeps 0.2 and 1e-2 … 1e-6 there).
INSERT_THRESHOLDS: Tuple[float, ...] = (0.2, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6)

#: The paper's peer count for §4.3–§4.7.
PAPER_NUM_PEERS = 500


def default_sizes() -> Tuple[int, ...]:
    """Graph sizes to run: laptop defaults, or the paper's when the
    ``REPRO_FULL_SCALE`` environment variable is set."""
    return FULL_SIZES if os.environ.get("REPRO_FULL_SCALE") else DEFAULT_SIZES


# ----------------------------------------------------------------------
# Shared fixtures: graphs, placements, references (cached per process)
# ----------------------------------------------------------------------
_graph_cache: Dict[Tuple[int, int], LinkGraph] = {}
_reference_cache: Dict[Tuple[int, int, float], np.ndarray] = {}


def make_graph(size: int, seed: int) -> LinkGraph:
    """Build (or reuse) the §4.1 power-law graph for ``(size, seed)``.

    Tables 1–4 all evaluate on the same synthetic graphs; caching keeps
    a multi-table benchmark session from regenerating them.
    """
    key = (int(size), int(seed))
    g = _graph_cache.get(key)
    if g is None:
        g = _graph_cache[key] = broder_graph(size, seed=seed)
    return g


def _reference_ranks(size: int, seed: int, damping: float) -> np.ndarray:
    key = (int(size), int(seed), float(damping))
    r = _reference_cache.get(key)
    if r is None:
        result = pagerank_reference(make_graph(size, seed), damping=damping)
        r = _reference_cache[key] = result.ranks
    return r


def clear_graph_cache() -> None:
    """Drop cached graphs and reference solutions (frees memory after
    full-scale runs)."""
    _graph_cache.clear()
    _reference_cache.clear()


def _placement(size: int, num_peers: int, seed: int) -> DocumentPlacement:
    return DocumentPlacement.random(size, num_peers, seed=seed)


# ----------------------------------------------------------------------
# Table 1 — convergence passes vs. graph size and peer availability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Result:
    """Passes to convergence per graph size and availability fraction."""

    sizes: Tuple[int, ...]
    fractions: Tuple[float, ...]
    epsilon: float
    num_peers: int
    #: ``passes[(size, fraction)]`` = passes to convergence.
    passes: Dict[Tuple[int, float], int]

    def render(self) -> str:
        headers = ["Graph size"] + [f"{int(f * 100)}% peers" for f in self.fractions]
        rows = [
            [size] + [self.passes[(size, f)] for f in self.fractions]
            for size in self.sizes
        ]
        return format_table(
            headers,
            rows,
            title=(
                f"Table 1: convergence passes ({self.num_peers} peers, "
                f"eps={self.epsilon:g})"
            ),
        )


def table1(
    sizes: Optional[Sequence[int]] = None,
    *,
    fractions: Sequence[float] = (1.0, 0.75, 0.5),
    epsilon: float = 1e-3,
    num_peers: int = PAPER_NUM_PEERS,
    seed: int = 0,
    max_passes: int = 20_000,
    damping: float = 0.85,
) -> Table1Result:
    """Reproduce Table 1: convergence rate vs. size × availability.

    For each graph size, runs the distributed computation with all
    peers present and with :class:`FixedFractionChurn` at the given
    availability fractions, recording passes to the strong convergence
    criterion.
    """
    sizes = tuple(sizes) if sizes is not None else default_sizes()
    passes: Dict[Tuple[int, float], int] = {}
    for size in sizes:
        graph = make_graph(size, seed)
        placement = _placement(size, num_peers, seed + 1)
        engine = ChaoticPagerank(
            graph,
            placement.assignment,
            num_peers=num_peers,
            epsilon=epsilon,
            damping=damping,
        )
        for frac in fractions:
            availability = (
                None
                if frac >= 1.0
                else FixedFractionChurn(num_peers, frac, seed=seed + 2)
            )
            report = engine.run(
                max_passes=max_passes, availability=availability, keep_history=False
            )
            if not report.converged:
                raise RuntimeError(
                    f"table1: no convergence at size={size}, fraction={frac} "
                    f"within {max_passes} passes"
                )
            passes[(size, float(frac))] = report.passes
    return Table1Result(
        sizes=sizes,
        fractions=tuple(float(f) for f in fractions),
        epsilon=float(epsilon),
        num_peers=num_peers,
        passes=passes,
    )


# ----------------------------------------------------------------------
# Table 2 — relative-error distribution vs. threshold
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Result:
    """Error-vs-reference distributions per graph size and ε."""

    sizes: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    #: ``distributions[(size, eps)]`` = the Table 2 column block.
    distributions: Dict[Tuple[int, float], ErrorDistribution]
    percentiles: Tuple[float, ...] = PAPER_PERCENTILES

    def render(self) -> str:
        blocks = []
        for size in self.sizes:
            headers = ["% pages"] + [f"eps={t:g}" for t in self.thresholds]
            labels = [f"{p:g}" for p in self.percentiles] + ["Max.", "Avg."]
            rows = []
            for li, label in enumerate(labels):
                row: List = [label]
                for t in self.thresholds:
                    dist = self.distributions[(size, t)]
                    cells = dist.rows()
                    row.append(cells[li][1])
                rows.append(row)
            blocks.append(
                format_table(
                    headers,
                    rows,
                    title=f"Table 2: relative error distribution, {size} nodes",
                )
            )
        return "\n\n".join(blocks)


def table2(
    sizes: Optional[Sequence[int]] = None,
    *,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    num_peers: int = PAPER_NUM_PEERS,
    seed: int = 0,
    max_passes: int = 20_000,
    damping: float = 0.85,
) -> Table2Result:
    """Reproduce Table 2: pagerank quality vs. convergence threshold.

    Runs the distributed scheme at each ε, solves the synchronous
    reference tightly, and reports the §4.4 error percentiles.
    """
    sizes = tuple(sizes) if sizes is not None else default_sizes()
    distributions: Dict[Tuple[int, float], ErrorDistribution] = {}
    for size in sizes:
        graph = make_graph(size, seed)
        reference = _reference_ranks(size, seed, damping)
        placement = _placement(size, num_peers, seed + 1)
        for eps in thresholds:
            engine = ChaoticPagerank(
                graph,
                placement.assignment,
                num_peers=num_peers,
                epsilon=eps,
                damping=damping,
            )
            report = engine.run(max_passes=max_passes, keep_history=False)
            distributions[(size, float(eps))] = error_distribution(
                report.ranks, reference
            )
    return Table2Result(
        sizes=sizes,
        thresholds=tuple(float(t) for t in thresholds),
        distributions=distributions,
    )


# ----------------------------------------------------------------------
# Table 3 — message traffic and execution-time estimates vs. threshold
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Result:
    """Update-message totals per (size, ε) plus Eq. 4 time estimates."""

    sizes: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    #: ``messages[(size, eps)]`` = (total messages, passes).
    messages: Dict[Tuple[int, float], Tuple[int, int]]
    #: Transfer rates (bytes/s) the time columns are computed for.
    rates: Tuple[int, ...]

    def per_node(self, size: int, eps: float) -> float:
        """Average update messages per document."""
        total, _ = self.messages[(size, eps)]
        return total / size

    def exec_time_hours(self, size: int, eps: float, rate: int) -> float:
        """Fully serialised Eq. 4 estimate, in hours, for the largest
        graph at the given rate (Table 3's last columns)."""
        from repro.simulation.timing import TransferModel, total_time_serialized

        total, passes = self.messages[(size, eps)]
        model = TransferModel(rate_bytes_per_s=rate)
        return total_time_serialized(total, model, passes=passes) / 3600.0

    def render(self) -> str:
        largest = max(self.sizes)
        headers = ["eps"]
        for size in self.sizes:
            headers += [f"{size} total", f"{size} avg"]
        headers += [f"hrs@{r // 1024}KB/s" for r in self.rates]
        rows = []
        for eps in self.thresholds:
            row: List = [f"{eps:g}"]
            for size in self.sizes:
                total, _ = self.messages[(size, eps)]
                row += [total, self.per_node(size, eps)]
            row += [self.exec_time_hours(largest, eps, r) for r in self.rates]
            rows.append(row)
        return format_table(
            headers,
            rows,
            title="Table 3: update-message traffic and execution time "
            f"(time columns for the {largest}-node graph)",
        )


def table3(
    sizes: Optional[Sequence[int]] = None,
    *,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    num_peers: int = PAPER_NUM_PEERS,
    seed: int = 0,
    max_passes: int = 20_000,
    damping: float = 0.85,
    rates: Sequence[int] = (32 * 1024, 200 * 1024),
) -> Table3Result:
    """Reproduce Table 3: total/average update messages per ε, and the
    §4.6.1 execution-time estimates for the largest graph."""
    sizes = tuple(sizes) if sizes is not None else default_sizes()
    messages: Dict[Tuple[int, float], Tuple[int, int]] = {}
    for size in sizes:
        graph = make_graph(size, seed)
        placement = _placement(size, num_peers, seed + 1)
        for eps in thresholds:
            engine = ChaoticPagerank(
                graph,
                placement.assignment,
                num_peers=num_peers,
                epsilon=eps,
                damping=damping,
            )
            report = engine.run(max_passes=max_passes, keep_history=False)
            messages[(size, float(eps))] = (report.total_messages, report.passes)
    return Table3Result(
        sizes=sizes,
        thresholds=tuple(float(t) for t in thresholds),
        messages=messages,
        rates=tuple(int(r) for r in rates),
    )


# ----------------------------------------------------------------------
# Table 4 — insert propagation: path length and node coverage
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table4Result:
    """Mean path length / node coverage per (size, ε)."""

    sizes: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    samples: int
    #: ``path_length[(size, eps)]`` and ``coverage[(size, eps)]``.
    path_length: Dict[Tuple[int, float], float]
    coverage: Dict[Tuple[int, float], float]

    def render(self) -> str:
        headers = ["eps"] + [str(s) for s in self.sizes]
        path_rows = [
            [f"{eps:g}"] + [self.path_length[(s, eps)] for s in self.sizes]
            for eps in self.thresholds
        ]
        cov_rows = [
            [f"{eps:g}"] + [self.coverage[(s, eps)] for s in self.sizes]
            for eps in self.thresholds
        ]
        return (
            format_table(
                headers,
                path_rows,
                title=f"Table 4a: insert path length (mean of {self.samples} inserts)",
            )
            + "\n\n"
            + format_table(
                headers,
                cov_rows,
                title=f"Table 4b: insert node coverage (mean of {self.samples} inserts)",
            )
        )


def table4(
    sizes: Optional[Sequence[int]] = None,
    *,
    thresholds: Sequence[float] = INSERT_THRESHOLDS,
    samples: int = 200,
    seed: int = 0,
    damping: float = 0.85,
) -> Table4Result:
    """Reproduce Table 4: document-insert update propagation.

    For each graph, converged reference ranks are computed, then
    ``samples`` random nodes are "inserted" (rank reset to 1.0 and
    propagated, the paper's §4.7 methodology; the paper averages 1000
    nodes) and the mean path length / node coverage recorded per ε.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    sizes = tuple(sizes) if sizes is not None else default_sizes()
    path_length: Dict[Tuple[int, float], float] = {}
    coverage: Dict[Tuple[int, float], float] = {}
    for size in sizes:
        graph = make_graph(size, seed)
        base = _reference_ranks(size, seed, damping)
        rng = as_generator(seed + 3)
        nodes = rng.choice(size, size=min(samples, size), replace=False)
        for eps in thresholds:
            paths = np.empty(nodes.size, dtype=np.float64)
            covs = np.empty(nodes.size, dtype=np.float64)
            for i, node in enumerate(nodes):
                result = simulate_insert(
                    graph,
                    int(node),
                    damping=damping,
                    epsilon=eps,
                    base_ranks=base,
                )
                paths[i] = result.path_length
                covs[i] = result.node_coverage
            path_length[(size, float(eps))] = float(paths.mean())
            coverage[(size, float(eps))] = float(covs.mean())
    return Table4Result(
        sizes=sizes,
        thresholds=tuple(float(t) for t in thresholds),
        samples=samples,
        path_length=path_length,
        coverage=coverage,
    )


# ----------------------------------------------------------------------
# Table 5 — qualitative summary backed by measured numbers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table5Result:
    """The paper's summary table, each claim annotated with a measured
    quantity from the other drivers' results."""

    rows: Tuple[Tuple[str, str], ...]

    def render(self) -> str:
        return format_table(["Aspect", "Finding"], self.rows, title="Table 5: summary")


def table5(
    t1: Table1Result,
    t2: Table2Result,
    t3: Table3Result,
    t4: Table4Result,
) -> Table5Result:
    """Assemble Table 5's claims from measured results.

    Each qualitative row of the paper's summary is restated with the
    numbers this reproduction measured, so the claim is checkable.
    """
    smallest, largest = min(t1.sizes), max(t1.sizes)
    full = t1.passes[(largest, 1.0)]
    half_key = min(t1.fractions)
    half = t1.passes[(largest, half_key)]
    growth = t1.passes[(largest, 1.0)] / t1.passes[(smallest, 1.0)]

    eps_star = 1e-4 if (largest, 1e-4) in t2.distributions else t2.thresholds[-1]
    dist = t2.distributions[(largest, eps_star)]
    p999 = dist.percentile_errors.get(99.9, dist.max_error)

    lo_eps, hi_eps = max(t3.thresholds), min(t3.thresholds)
    msg_growth = (
        t3.messages[(largest, hi_eps)][0] / max(t3.messages[(largest, lo_eps)][0], 1)
    )

    t4_eps = min(t4.thresholds)
    rows = (
        (
            "Convergence",
            f"{full} passes at {largest} nodes (x{growth:.2f} vs {smallest} nodes); "
            f"{half} passes with {int(half_key * 100)}% peers "
            f"(x{half / full:.2f} slowdown)",
        ),
        (
            "Pagerank quality",
            f"99.9% of pages within {p999:.2e} relative error at eps={eps_star:g}",
        ),
        (
            "Message traffic",
            f"{t3.per_node(largest, lo_eps):.0f} msgs/node at eps={lo_eps:g} -> "
            f"{t3.per_node(largest, hi_eps):.0f} at eps={hi_eps:g} "
            f"(x{msg_growth:.1f} for {lo_eps / hi_eps:.0e}x tighter eps: "
            "logarithmic growth)",
        ),
        (
            "Execution time",
            f"{t3.exec_time_hours(largest, 1e-3 if (largest, 1e-3) in t3.messages else lo_eps, t3.rates[0]):.1f} h "
            f"at {t3.rates[0] // 1024} KB/s (communication-dominated)",
        ),
        (
            "Insert/delete",
            f"mean path length {t4.path_length[(largest, t4_eps)]:.1f}, "
            f"coverage {t4.coverage[(largest, t4_eps)]:.0f} nodes at eps={t4_eps:g}: "
            "no global recompute",
        ),
    )
    return Table5Result(rows=rows)


# ----------------------------------------------------------------------
# Table 6 — incremental search traffic reduction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table6Result:
    """Search traffic reduction and hits returned per configuration."""

    fractions: Tuple[float, ...]
    arities: Tuple[int, ...]
    #: ``reduction[(fraction, arity)]`` = baseline traffic / incremental.
    reduction: Dict[Tuple[float, int], float]
    #: ``hits[(fraction, arity)]`` = mean final hits returned.
    hits: Dict[Tuple[float, int], float]
    #: ``baseline_hits[arity]`` = mean hits the baseline returns.
    baseline_hits: Dict[int, float]

    def render(self) -> str:
        headers = ["Scheme"] + [f"{a}-term" for a in self.arities]
        red_rows = [
            [f"Top {int(f * 100)}% forwarded"]
            + [self.reduction[(f, a)] for a in self.arities]
            for f in self.fractions
        ]
        hit_rows = [
            [f"Top {int(f * 100)}% forwarded"]
            + [self.hits[(f, a)] for a in self.arities]
            for f in self.fractions
        ]
        hit_rows.append(["Baseline"] + [self.baseline_hits[a] for a in self.arities])
        return (
            format_table(headers, red_rows, title="Table 6a: average traffic reduction")
            + "\n\n"
            + format_table(headers, hit_rows, title="Table 6b: average # hits returned")
        )


def table6(
    *,
    corpus_config: Optional[CorpusConfig] = None,
    fractions: Sequence[float] = (0.1, 0.2),
    arities: Sequence[int] = (2, 3),
    queries_per_arity: int = 20,
    num_peers: int = 50,
    epsilon: float = 1e-4,
    seed: int = 0,
) -> Table6Result:
    """Reproduce Table 6: incremental search vs. full forwarding.

    Builds the synthetic corpus (§4.9 substitute), computes its
    pageranks with the *distributed* scheme on ``num_peers`` peers (as
    the paper did), builds the pagerank-carrying index, and runs the
    synthetic query mix under the baseline and each top-x% policy.
    """
    rng_corpus, rng_place, rng_queries = spawn_generators(seed, 3)
    corpus = synthesize_corpus(corpus_config, seed=rng_corpus, with_links=True)
    assert corpus.link_graph is not None
    placement = DocumentPlacement.random(
        corpus.num_documents, num_peers, seed=rng_place
    )
    engine = ChaoticPagerank(
        corpus.link_graph,
        placement.assignment,
        num_peers=num_peers,
        epsilon=epsilon,
    )
    ranks = engine.run(keep_history=False).ranks
    index = DistributedIndex(corpus, ranks, num_peers)

    reduction: Dict[Tuple[float, int], float] = {}
    hits: Dict[Tuple[float, int], float] = {}
    baseline_hits: Dict[int, float] = {}
    for arity_i, arity in enumerate(arities):
        qs = generate_queries(
            corpus,
            num_queries=queries_per_arity,
            terms_per_query=arity,
            seed=rng_queries.spawn(1)[0],
        )
        base = [baseline_search(index, q) for q in qs]
        baseline_hits[arity] = float(np.mean([b.num_hits for b in base]))
        for frac in fractions:
            inc = [incremental_search(index, q, fraction=frac) for q in qs]
            ratios = [
                b.traffic_doc_ids / max(i.traffic_doc_ids, 1)
                for b, i in zip(base, inc)
            ]
            reduction[(float(frac), arity)] = float(np.mean(ratios))
            hits[(float(frac), arity)] = float(np.mean([i.num_hits for i in inc]))
    return Table6Result(
        fractions=tuple(float(f) for f in fractions),
        arities=tuple(int(a) for a in arities),
        reduction=reduction,
        hits=hits,
        baseline_hits=baseline_hits,
    )
