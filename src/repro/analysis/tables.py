"""Plain-text table rendering for the experiment drivers.

The benchmark harness prints the same rows the paper's §4–§5 tables
(Table 1 through Table 6) report; this module is the one formatter
they all share, so every table in the output reads consistently and
EXPERIMENTS.md can paste them verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_value", "format_table"]


def format_value(value, *, precision: int = 3) -> str:
    """Human-friendly cell formatting.

    Floats use general formatting with the given significant digits
    (scientific for very small/large magnitudes, as in the paper's
    error tables); ints print with thousands grouping; NumPy scalars
    format like their Python equivalents; everything else via ``str``.
    """
    if isinstance(value, (bool, np.bool_)):
        return str(bool(value))
    if isinstance(value, np.integer):
        value = int(value)
    elif isinstance(value, np.floating):
        value = float(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        # Exact-zero display sentinel: only a true 0.0 renders as "0".
        if value == 0.0:  # repro: noqa[FLT001]
            return "0"
        a = abs(value)
        if a >= 1e5 or a < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row value sequences (formatted with :func:`format_value`).
    title:
        Optional title line above the table.
    precision:
        Significant digits for float cells.

    Returns
    -------
    str
        The rendered table, newline-joined, no trailing newline.
    """
    str_rows: List[List[str]] = [
        [format_value(v, precision=precision) for v in row] for row in rows
    ]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(
                f"row has {len(r)} cells, expected {ncols}: {r!r}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[c]) for c, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in str_rows:
        lines.append("  ".join(r[c].rjust(widths[c]) for c in range(ncols)))
    return "\n".join(lines)
