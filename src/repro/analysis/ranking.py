"""Rank-ordering quality metrics.

Table 2 measures *value* error, but what keyword search consumes is the
*ordering* of documents (§2.4.2 sorts hit lists by pagerank) — a result
can be several percent off in value yet order-identical where it
matters.  These metrics quantify that directly:

* :func:`top_k_overlap` — fraction of the reference's top-k the
  distributed result also puts in its top-k (the hits a §2.4.3 search
  would actually forward);
* :func:`kendall_tau` — global pairwise-order agreement (via scipy);
* :func:`precision_at_k` — for search outcomes: how much of the
  baseline's rank-ordered top-k an approximate scheme returned.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_overlap", "kendall_tau", "precision_at_k"]


def top_k_overlap(approx: np.ndarray, reference: np.ndarray, k: int) -> float:
    """|top-k(approx) ∩ top-k(reference)| / k.

    Parameters
    ----------
    approx, reference:
        Score vectors of equal length (higher = better).
    k:
        Prefix size; clipped to the vector length.
    """
    approx = np.asarray(approx)
    reference = np.asarray(reference)
    if approx.shape != reference.shape or approx.ndim != 1:
        raise ValueError("approx and reference must be equal-length 1-D arrays")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, approx.size)
    if k == 0:
        return 1.0
    top_a = set(np.argpartition(-approx, k - 1)[:k].tolist())
    top_r = set(np.argpartition(-reference, k - 1)[:k].tolist())
    return len(top_a & top_r) / k


def kendall_tau(approx: np.ndarray, reference: np.ndarray) -> float:
    """Kendall's tau-b between two score vectors (1.0 = same order)."""
    from scipy.stats import kendalltau

    approx = np.asarray(approx)
    reference = np.asarray(reference)
    if approx.shape != reference.shape or approx.ndim != 1:
        raise ValueError("approx and reference must be equal-length 1-D arrays")
    if approx.size < 2:
        return 1.0
    tau, _ = kendalltau(approx, reference)
    return float(tau)


def precision_at_k(returned: np.ndarray, ideal: np.ndarray, k: int) -> float:
    """Fraction of the ideal top-k present in the first k returned.

    Both arguments are document-id sequences already in ranked order
    (e.g. ``SearchOutcome.hits``); the ideal is typically the baseline
    search's result for the same query.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    returned = np.asarray(returned)
    ideal = np.asarray(ideal)
    k = min(k, ideal.size)
    if k == 0:
        return 1.0
    return len(set(returned[:k].tolist()) & set(ideal[:k].tolist())) / k
