"""One-shot reproduction report: every paper table in one call.

``pytest benchmarks/ --benchmark-only`` is the full harness (it also
*asserts* the shape claims); this module is the lighter entry point for
users who just want the tables — the paper's full §4–§5 evaluation
(Table 1 through Table 6) rendered in one run:

>>> from repro.analysis.report import generate_report    # doctest: +SKIP
>>> text = generate_report()                             # doctest: +SKIP

or from the shell: ``python -m repro report``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.experiments import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.analysis.trajectory import convergence_trajectory, passes_to_quality
from repro.p2p.network import DocumentPlacement

__all__ = ["generate_report"]


def generate_report(
    *,
    sizes: Optional[Sequence[int]] = None,
    num_peers: int = 500,
    insert_samples: int = 200,
    seed: int = 0,
    corpus_config=None,
    out_path=None,
    progress=print,
) -> str:
    """Regenerate Tables 1-6 plus the §4.3 trajectory, as one document.

    Parameters
    ----------
    sizes:
        Graph sizes (default: the scaled sizes, or the paper's under
        ``REPRO_FULL_SCALE``).
    num_peers, insert_samples, seed:
        Experiment parameters (paper defaults where applicable).
    corpus_config:
        Optional :class:`~repro.search.corpus.CorpusConfig` for the
        Table 6 experiment (default: the paper-scale corpus).
    out_path:
        Optional file to write the report to.
    progress:
        Callable receiving one status line per section (silence with
        ``lambda _: None``).

    Returns
    -------
    str
        The rendered report.
    """
    sections = []

    progress("Table 1 (convergence) ...")
    t1 = table1(sizes, num_peers=num_peers, seed=seed)
    sections.append(t1.render())

    progress("Table 2 (quality) ...")
    t2 = table2(sizes, num_peers=num_peers, seed=seed)
    sections.append(t2.render())

    progress("Table 3 (traffic) ...")
    t3 = table3(sizes, num_peers=num_peers, seed=seed)
    sections.append(t3.render())

    progress("Table 4 (inserts) ...")
    t4 = table4(sizes, samples=insert_samples, seed=seed)
    sections.append(t4.render())

    progress("Table 5 (summary) ...")
    sections.append(table5(t1, t2, t3, t4).render())

    progress("Table 6 (search) ...")
    t6 = table6(seed=seed, corpus_config=corpus_config)
    sections.append(t6.render())

    progress("Convergence trajectory (section 4.3) ...")
    size = max(t1.sizes)
    from repro.analysis.experiments import make_graph

    placement = DocumentPlacement.random(size, num_peers, seed=seed + 1)
    traj = convergence_trajectory(
        make_graph(size, seed), placement.assignment, num_peers=num_peers,
        epsilon=1e-4,
    )
    numbers = passes_to_quality(traj)
    sections.append(
        "Section 4.3 trajectory claims "
        f"({size} nodes): 99% of documents within 1% of R_c by pass "
        f"{numbers['99pct_within_1pct']}; within 0.1% by pass "
        f"{numbers['all_within_0.1pct']} (paper: <10 and ~30)."
    )

    report = "\n\n".join(sections) + "\n"
    if out_path is not None:
        Path(out_path).write_text(report)
        progress(f"wrote {out_path}")
    return report
