"""Relative-error distribution machinery (paper §4.4, Table 2).

The quality of the distributed result ``R_d`` is measured against the
synchronous reference ``R_c`` by the per-document relative error
``|R_d − R_c| / R_c``.  Table 2 reports the error level that bounds
50 / 75 / 90 / 99 / 99.9 % of the documents, plus the maximum and the
average — :func:`error_distribution` computes exactly those statistics,
and :func:`count_above` supports the table's side notes ("only 10 nodes
have error > 1e-2").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "PAPER_PERCENTILES",
    "ErrorDistribution",
    "relative_error",
    "error_distribution",
    "count_above",
]

#: The page-fraction levels Table 2 reports.
PAPER_PERCENTILES: Tuple[float, ...] = (50.0, 75.0, 90.0, 99.0, 99.9)


def relative_error(distributed: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Per-document ``|R_d − R_c| / R_c``.

    Reference ranks are bounded below by ``1 − d > 0`` on any graph,
    so the division is well-defined; a zero reference entry (possible
    only for degenerate inputs) yields ``inf`` where the distributed
    value differs and 0 where it agrees.
    """
    distributed = np.asarray(distributed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if distributed.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {distributed.shape} vs {reference.shape}"
        )
    diff = np.abs(distributed - reference)
    with np.errstate(divide="ignore", invalid="ignore"):
        err = diff / np.abs(reference)
    err[(reference == 0) & (diff == 0)] = 0.0
    err[(reference == 0) & (diff != 0)] = np.inf
    return err


@dataclass(frozen=True)
class ErrorDistribution:
    """Table 2's row block for one (graph, ε) cell.

    Attributes
    ----------
    percentile_errors:
        Mapping from page-percentage (e.g. 99.9) to the error bound
        covering that fraction of documents.
    max_error:
        Maximum relative error over all documents.
    mean_error:
        Average relative error.
    """

    percentile_errors: Dict[float, float]
    max_error: float
    mean_error: float

    def rows(self) -> list:
        """Render as Table 2-style ``(label, value)`` rows."""
        out = [(f"{p:g}", v) for p, v in self.percentile_errors.items()]
        out.append(("Max.", self.max_error))
        out.append(("Avg.", self.mean_error))
        return out


def error_distribution(
    distributed: np.ndarray,
    reference: np.ndarray,
    *,
    percentiles: Sequence[float] = PAPER_PERCENTILES,
) -> ErrorDistribution:
    """Compute Table 2's statistics for one run.

    Percentiles use the lower interpolation (the value such that at
    least that fraction of documents has error ≤ it), matching the
    table's "up to x % of the pages had error less than v" reading.
    """
    for p in percentiles:
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentiles must be in (0, 100], got {p}")
    err = relative_error(distributed, reference)
    values = np.percentile(err, list(percentiles), method="lower")
    return ErrorDistribution(
        percentile_errors={float(p): float(v) for p, v in zip(percentiles, values)},
        max_error=float(err.max()) if err.size else 0.0,
        mean_error=float(err.mean()) if err.size else 0.0,
    )


def count_above(
    distributed: np.ndarray, reference: np.ndarray, threshold: float
) -> int:
    """How many documents exceed a relative-error level — the side
    notes of Table 2 ("only 100 nodes have error > 1e-3")."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    return int((relative_error(distributed, reference) > threshold).sum())
