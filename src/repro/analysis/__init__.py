"""Analysis layer: error statistics, table rendering, and the
experiment drivers that regenerate every table of the paper (§4)."""

from repro.analysis.error_stats import (
    PAPER_PERCENTILES,
    ErrorDistribution,
    count_above,
    error_distribution,
    relative_error,
)
from repro.analysis.experiments import (
    DEFAULT_SIZES,
    FULL_SIZES,
    INSERT_THRESHOLDS,
    PAPER_THRESHOLDS,
    Table1Result,
    Table2Result,
    Table3Result,
    Table4Result,
    Table5Result,
    Table6Result,
    clear_graph_cache,
    default_sizes,
    make_graph,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.analysis.ranking import kendall_tau, precision_at_k, top_k_overlap
from repro.analysis.report import generate_report
from repro.analysis.tables import format_table, format_value
from repro.analysis.trajectory import (
    ConvergenceTrajectory,
    convergence_trajectory,
    passes_to_quality,
    time_to_quality,
)

__all__ = [
    "relative_error",
    "error_distribution",
    "count_above",
    "ErrorDistribution",
    "PAPER_PERCENTILES",
    "format_table",
    "format_value",
    "top_k_overlap",
    "kendall_tau",
    "precision_at_k",
    "generate_report",
    "ConvergenceTrajectory",
    "convergence_trajectory",
    "passes_to_quality",
    "time_to_quality",
    "default_sizes",
    "make_graph",
    "clear_graph_cache",
    "DEFAULT_SIZES",
    "FULL_SIZES",
    "PAPER_THRESHOLDS",
    "INSERT_THRESHOLDS",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "Table5Result",
    "Table6Result",
]
