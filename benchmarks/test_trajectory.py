"""Regenerates the paper's §4.3 in-text convergence-quality claims:

* "more than 99 % of the nodes converged to within 1 % of R_c in less
  than 10 passes";
* "the pagerank R_d converges to within 0.1 % of R_c in as few as 30
  passes".

We assert the same regime at benchmark scale (allowing a small constant
factor: our graphs are denser in outdeg-1 chains, which slow the tail).
"""

import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import (
    convergence_trajectory,
    format_table,
    make_graph,
    passes_to_quality,
)
from repro.p2p import DocumentPlacement


def test_convergence_trajectory(benchmark, bench_sizes, record_table):
    size = max(bench_sizes)

    def run():
        graph = make_graph(size, BENCH_SEED)
        placement = DocumentPlacement.random(size, BENCH_PEERS, seed=BENCH_SEED + 1)
        return convergence_trajectory(
            graph,
            placement.assignment,
            num_peers=BENCH_PEERS,
            epsilon=1e-4,
            bands=(0.01, 0.001),
        )

    traj = benchmark.pedantic(run, rounds=1, iterations=1)
    numbers = passes_to_quality(traj)

    rows = [
        ("99% of nodes within 1% of R_c", "< 10 passes",
         f"{numbers['99pct_within_1pct']} passes"),
        ("99.9% of nodes within 0.1% of R_c", "~30 passes",
         f"{numbers['all_within_0.1pct']} passes"),
        ("full strong convergence (eps=1e-4)", "-", f"{traj.passes} passes"),
    ]
    record_table(
        "Trajectory section 4.3",
        format_table(
            ["claim", "paper", "measured"],
            rows,
            title=f"Convergence trajectory, {size} nodes, {BENCH_PEERS} peers",
        ),
    )

    assert numbers["99pct_within_1pct"] is not None
    assert numbers["99pct_within_1pct"] <= 40  # paper: <10; same regime
    assert numbers["all_within_0.1pct"] is not None
    assert numbers["all_within_0.1pct"] <= 90  # paper: ~30
    # the bulk converges long before the strong criterion fires
    assert numbers["99pct_within_1pct"] < traj.passes


def test_time_to_quality(benchmark, bench_sizes, record_table):
    """§4.6.2's combined claim: 99 % of the graph converging in ~10
    passes corresponds to a fraction of the full-convergence time.
    Price the trajectory's quality milestones with the Eq. 4 model."""
    from repro.analysis import convergence_trajectory, time_to_quality
    from repro.simulation import RATE_32KBPS, RATE_200KBPS

    size = max(bench_sizes)

    def run():
        graph = make_graph(size, BENCH_SEED)
        placement = DocumentPlacement.random(size, BENCH_PEERS, seed=BENCH_SEED + 1)
        return convergence_trajectory(
            graph, placement.assignment, num_peers=BENCH_PEERS,
            epsilon=1e-4, return_report=True,
        )

    traj, report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for band, frac, label in [
        (0.01, 0.99, "99% of docs within 1%"),
        (0.001, 0.999, "99.9% within 0.1%"),
    ]:
        t32 = time_to_quality(
            traj, report, band=band, fraction=frac, rate_bytes_per_s=RATE_32KBPS
        )
        t200 = time_to_quality(
            traj, report, band=band, fraction=frac, rate_bytes_per_s=RATE_200KBPS
        )
        rows.append((label, traj.passes_until(band, frac),
                     f"{t32:.1f}", f"{t200:.1f}"))
    full32 = report.total_messages * 24 / RATE_32KBPS
    rows.append(("full strong convergence", report.passes, f"{full32:.1f}", "-"))
    record_table(
        "Trajectory time to quality",
        format_table(
            ["milestone", "passes", "secs @32KB/s", "secs @200KB/s"],
            rows,
            title=f"Time-to-quality, {size} nodes (Eq. 4 serialized model)",
        ),
    )

    early = time_to_quality(
        traj, report, band=0.01, fraction=0.99, rate_bytes_per_s=RATE_32KBPS
    )
    assert early is not None
    assert early < full32
    # Nuance the measurement surfaces: the quality milestone arrives in
    # a small fraction of the PASSES but a large fraction of the TIME —
    # message traffic is front-loaded (early passes are all-active), so
    # the §4.6.2 "10 passes ≈ 4 days out of 14" extrapolation, which
    # divides time by passes uniformly, overstates the early-exit
    # saving.  Assert both facts.
    p99 = traj.passes_until(0.01, 0.99)
    assert p99 / traj.passes < 0.5          # few passes...
    assert early / full32 > 0.5             # ...but most of the bytes
