"""Micro-benchmarks of the computational kernels.

These are the pieces whose cost the paper's Eq. 4 folds into the
per-pass compute term C_p (estimated at about a minute for the 5000k
graph on 2003 hardware): one pull pass over all links, the selective
per-row recompute, the reference solve, and graph synthesis.  Tracked
so performance regressions in the vectorized kernels are caught.

The kernel benchmarks are pinned to the CSR workspace — the default
``csr`` backend that :func:`repro.core.make_workspace` selects — so a
stray ``REPRO_KERNEL=naive`` environment cannot silently change what
is being measured.  Each measured timing (best observed call) is also
written to ``BENCH_pagerank.micro.json`` at the repo root, a sidecar
of the ``repro bench`` harness's ``BENCH_pagerank.json`` (see
docs/PERFORMANCE.md).
"""

import json
import time
from pathlib import Path
from typing import Dict

import numpy as np
import pytest

from repro.core import ChaoticPagerank, pagerank_reference
from repro.core.kernels import CSRWorkspace
from repro.graphs import broder_graph

#: Best observed wall-time per benchmark, flushed to the sidecar.
_TIMINGS: Dict[str, float] = {}

_SIDECAR = Path(__file__).resolve().parent.parent / "BENCH_pagerank.micro.json"


@pytest.fixture(scope="module", autouse=True)
def _micro_sidecar():
    """Write measured timings next to the harness JSON on teardown."""
    yield
    if not _TIMINGS:
        return
    payload = {
        "schema": 1,
        "source": "benchmarks/test_kernels_scaling.py",
        "timings_s": dict(sorted(_TIMINGS.items())),
    }
    _SIDECAR.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timed(name, fn):
    """Record the best observed call time under ``name``."""

    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        best = _TIMINGS.get(name)
        if best is None or elapsed < best:
            _TIMINGS[name] = elapsed
        return result

    return wrapper


@pytest.fixture(scope="module")
def graph100k():
    return broder_graph(100_000, seed=0)


def test_bench_pull_pass(benchmark, graph100k):
    """One full pull pass over a 100k-node / ~250k-link graph (the
    CSR reverse-bincount kernel)."""
    ws = CSRWorkspace.from_graph(graph100k)
    values = np.ones(graph100k.num_nodes)
    out = np.empty_like(values)
    benchmark(_timed("pull_pass_100k", lambda: ws.pull(values, 0.85, out=out)))


def test_bench_pull_rows(benchmark, graph100k):
    """Selective recompute of a 5% row frontier (the sharded path the
    chaotic engine takes once activity localises)."""
    ws = CSRWorkspace.from_graph(graph100k)
    values = np.ones(graph100k.num_nodes)
    rng = np.random.default_rng(1)
    rows = np.unique(rng.integers(0, graph100k.num_nodes, size=5_000))
    benchmark(_timed("pull_rows_5pct_100k", lambda: ws.pull_rows(values, 0.85, rows)))


def test_bench_reference_solver(benchmark, graph100k):
    """Full synchronous solve at practical tolerance."""
    benchmark.pedantic(
        _timed(
            "reference_solve_100k",
            lambda: pagerank_reference(graph100k, tol=1e-10),
        ),
        rounds=2,
        iterations=1,
    )


def test_bench_chaotic_run(benchmark, graph100k):
    """Full distributed run at the paper's recommended eps."""
    benchmark.pedantic(
        _timed(
            "chaotic_run_100k",
            lambda: ChaoticPagerank(graph100k, epsilon=1e-4).run(
                keep_history=False
            ),
        ),
        rounds=2,
        iterations=1,
    )


def test_bench_graph_synthesis(benchmark):
    """Power-law graph generation throughput (100k nodes)."""
    seeds = iter(range(10_000))
    benchmark.pedantic(
        _timed(
            "broder_synthesis_100k",
            lambda: broder_graph(100_000, seed=next(seeds)),
        ),
        rounds=3,
        iterations=1,
    )


def test_bench_reverse_build(benchmark, graph100k):
    """Building the in-link CSR (needed once per reference solve)."""

    def build():
        # defeat the cache by constructing a fresh equal graph
        g = type(graph100k)(graph100k.indptr, graph100k.indices, validate=False)
        return g.reverse()

    benchmark.pedantic(_timed("reverse_build_100k", build), rounds=3, iterations=1)
