"""Micro-benchmarks of the computational kernels.

These are the pieces whose cost the paper's Eq. 4 folds into the
per-pass compute term C_p (estimated at about a minute for the 5000k
graph on 2003 hardware): one pull pass over all links, the reference
solve, and graph synthesis.  Tracked so performance regressions in the
vectorized kernels are caught.
"""

import numpy as np
import pytest

from repro.core import ChaoticPagerank, EdgeWorkspace, pagerank_reference
from repro.graphs import broder_graph


@pytest.fixture(scope="module")
def graph100k():
    return broder_graph(100_000, seed=0)


def test_bench_pull_pass(benchmark, graph100k):
    """One full pull pass over a 100k-node / ~250k-link graph."""
    ws = EdgeWorkspace.from_graph(graph100k)
    values = np.ones(graph100k.num_nodes)
    out = np.empty_like(values)
    benchmark(lambda: ws.pull(values, 0.85, out=out))


def test_bench_reference_solver(benchmark, graph100k):
    """Full synchronous solve at practical tolerance."""
    benchmark.pedantic(
        lambda: pagerank_reference(graph100k, tol=1e-10),
        rounds=2,
        iterations=1,
    )


def test_bench_chaotic_run(benchmark, graph100k):
    """Full distributed run at the paper's recommended eps."""
    benchmark.pedantic(
        lambda: ChaoticPagerank(graph100k, epsilon=1e-4).run(keep_history=False),
        rounds=2,
        iterations=1,
    )


def test_bench_graph_synthesis(benchmark):
    """Power-law graph generation throughput (100k nodes)."""
    seeds = iter(range(10_000))
    benchmark.pedantic(
        lambda: broder_graph(100_000, seed=next(seeds)),
        rounds=3,
        iterations=1,
    )


def test_bench_reverse_build(benchmark, graph100k):
    """Building the in-link CSR (needed once per reference solve)."""
    def build():
        # defeat the cache by constructing a fresh equal graph
        g = type(graph100k)(graph100k.indptr, graph100k.indices, validate=False)
        return g.reverse()

    benchmark.pedantic(build, rounds=3, iterations=1)
