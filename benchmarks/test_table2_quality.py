"""Regenerates paper Table 2: relative-error distribution of the
distributed pagerank vs. the synchronous reference, across thresholds
eps in {0.2, 1e-3 ... 1e-7}.

Shape claims asserted (paper §4.4):
* quality improves monotonically (in mean) as eps tightens;
* eps = 1e-4 — the paper's recommended operating point — bounds 99 %
  of pages under 1 % relative error;
* even the very loose eps = 0.2 keeps *most* pages accurate (median
  well under 10 %), the paper's "remarkable" observation.
"""

import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import PAPER_THRESHOLDS, table2


def test_table2_error_distribution(benchmark, bench_sizes, record_table):
    result = benchmark.pedantic(
        lambda: table2(
            bench_sizes,
            thresholds=PAPER_THRESHOLDS,
            num_peers=BENCH_PEERS,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("Table 2 quality", result.render())

    for size in bench_sizes:
        means = [result.distributions[(size, e)].mean_error for e in PAPER_THRESHOLDS]
        # Monotone mean improvement from 0.2 down to 1e-7.
        assert means[0] > means[-1]
        assert all(m >= 0 for m in means)

        # eps=1e-4: 99% of pages within 1% (the paper's headline).
        dist = result.distributions[(size, 1e-4)]
        assert dist.percentile_errors[99.0] < 0.01

        # eps=1e-7: essentially exact.
        tight = result.distributions[(size, 1e-7)]
        assert tight.percentile_errors[99.9] < 1e-4

        # Even eps=0.2 keeps the median page accurate.
        loose = result.distributions[(size, 0.2)]
        assert loose.percentile_errors[50.0] < 0.1


def test_table2b_ordering_quality(benchmark, bench_sizes, record_table):
    """Extension of Table 2: what search consumes is the rank ORDER.

    Even at thresholds where value error is visible, the ordering of
    the top documents — the hits a section 2.4.3 search forwards — is
    almost untouched.  This is the quantitative reason the paper's
    search results (Table 6) are insensitive to the pagerank epsilon.
    """
    from repro.analysis import format_table, kendall_tau, make_graph, top_k_overlap
    from repro.analysis.experiments import _reference_ranks
    from repro.core import ChaoticPagerank
    from repro.p2p import DocumentPlacement

    size = max(bench_sizes)

    def run():
        graph = make_graph(size, BENCH_SEED)
        ref = _reference_ranks(size, BENCH_SEED, 0.85)
        placement = DocumentPlacement.random(size, BENCH_PEERS, seed=BENCH_SEED + 1)
        out = {}
        for eps in (0.2, 1e-3, 1e-4):
            ranks = ChaoticPagerank(
                graph, placement.assignment, num_peers=BENCH_PEERS, epsilon=eps
            ).run(keep_history=False).ranks
            out[eps] = (
                top_k_overlap(ranks, ref, 100),
                top_k_overlap(ranks, ref, 1000),
                kendall_tau(ranks, ref),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (f"{eps:g}", f"{o100:.3f}", f"{o1000:.3f}", f"{tau:.4f}")
        for eps, (o100, o1000, tau) in results.items()
    ]
    record_table(
        "Table 2b ordering",
        format_table(
            ["eps", "top-100 overlap", "top-1000 overlap", "kendall tau"],
            rows,
            title=f"Rank-ordering agreement with R_c ({size} nodes)",
        ),
    )

    # Ordering survives even the loosest threshold in the paper.
    assert results[0.2][0] >= 0.9
    # At the recommended operating point it is essentially perfect.
    assert results[1e-4][0] >= 0.99
    assert results[1e-4][2] > 0.99
