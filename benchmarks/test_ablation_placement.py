"""Ablation: document placement and peer count (extends paper §6).

The paper's future work asks whether link-aware document-to-peer
mapping could reduce network overhead: only cross-peer links generate
messages, so placements that co-locate linked documents save traffic.
This benchmark measures update-message totals for

* uniform random placement (the paper's methodology) at several peer
  counts — fewer peers means more intra-peer (free) links;
* GUID/consistent-hashing placement (what a real DHT does), which is
  statistically equivalent to random;
* an oracle link-clustered placement (greedy BFS blocks), a cheap
  stand-in for the link-aware mapping the paper hypothesises.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import format_table
from repro.core import ChaoticPagerank
from repro.graphs import broder_graph
from repro.p2p import (
    DocumentPlacement,
    P2PNetwork,
    link_clustered_placement,
    refine_placement,
)


def test_ablation_placement(benchmark, record_table):
    g = broder_graph(10_000, seed=BENCH_SEED)
    eps = 1e-3

    def run(placement):
        engine = ChaoticPagerank(
            g, placement.assignment, num_peers=placement.num_peers, epsilon=eps
        )
        return engine.run(keep_history=False)

    def build_all():
        results = {}
        for peers in (50, 500, 5000):
            pl = DocumentPlacement.random(g.num_nodes, peers, seed=1)
            results[f"random, {peers} peers"] = (pl, run(pl))
        net = P2PNetwork(500)
        pl_guid = net.place_documents(g.num_nodes, strategy="guid")
        results["guid (consistent hash), 500 peers"] = (pl_guid, run(pl_guid))
        pl_bfs = link_clustered_placement(g, 500, seed=2)
        results["link-clustered (BFS), 500 peers"] = (pl_bfs, run(pl_bfs))
        pl_ref = refine_placement(g, pl_bfs, seed=3)
        results["BFS + gain refinement, 500 peers"] = (pl_ref, run(pl_ref))
        return results

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for label, (pl, report) in results.items():
        net = P2PNetwork(pl.num_peers, pl, build_ring=False)
        cross = net.cross_peer_edge_count(g)
        rows.append(
            (label, cross, report.total_messages, report.passes)
        )
    record_table(
        "Ablation placement",
        format_table(
            ["placement", "cross-peer links", "messages", "passes"],
            rows,
            title=f"Placement vs update traffic (10k docs, eps={eps:g})",
        ),
    )

    # Fewer peers -> more intra-peer links -> fewer messages.
    assert (
        results["random, 50 peers"][1].total_messages
        < results["random, 500 peers"][1].total_messages
        < results["random, 5000 peers"][1].total_messages
    )
    # GUID placement is statistically equivalent to random.
    r500 = results["random, 500 peers"][1].total_messages
    guid = results["guid (consistent hash), 500 peers"][1].total_messages
    assert abs(guid - r500) / r500 < 0.15
    # Link-clustering answers the paper's future-work question: yes,
    # link-aware mapping cuts traffic materially.
    clustered = results["link-clustered (BFS), 500 peers"][1].total_messages
    assert clustered < 0.9 * r500
    # ...and local-search refinement buys a further cut.
    refined = results["BFS + gain refinement, 500 peers"][1].total_messages
    assert refined < clustered
    # All placements converge to the same ranks regardless.
    base = results["random, 500 peers"][1].ranks
    for label, (_, report) in results.items():
        assert np.allclose(report.ranks, base, rtol=1e-6), label
