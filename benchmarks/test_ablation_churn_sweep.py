"""Ablation: convergence cost across the full availability range.

Table 1 samples three availability levels (100/75/50 %).  This sweep
runs the whole curve down to 30 % — where the paper never went — and
also contrasts the i.i.d.-redraw churn model with correlated Markov
churn of equal stationary availability, checking that the paper's
"only a factor of two slowdown" headline is a property of the
availability *level* rather than the churn *model*.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import format_table, make_graph
from repro.core import ChaoticPagerank
from repro.p2p import DocumentPlacement, FixedFractionChurn, MarkovChurn


def test_ablation_churn_sweep(benchmark, record_table):
    size = 10_000
    eps = 1e-3
    fractions = (1.0, 0.9, 0.75, 0.5, 0.3)

    def run_all():
        graph = make_graph(size, BENCH_SEED)
        placement = DocumentPlacement.random(size, BENCH_PEERS, seed=BENCH_SEED + 1)
        engine = ChaoticPagerank(
            graph, placement.assignment, num_peers=BENCH_PEERS, epsilon=eps
        )
        out = {}
        for frac in fractions:
            availability = (
                None if frac >= 1.0
                else FixedFractionChurn(BENCH_PEERS, frac, seed=BENCH_SEED + 2)
            )
            out[("iid", frac)] = engine.run(
                availability=availability, max_passes=50_000, keep_history=False
            )
        # Markov churn at 75% and 50% stationary availability.
        for frac, (p_leave, p_join) in [(0.75, (0.1, 0.3)), (0.5, (0.2, 0.2))]:
            model = MarkovChurn(BENCH_PEERS, p_leave, p_join, seed=BENCH_SEED + 3)
            out[("markov", frac)] = engine.run(
                availability=model, max_passes=50_000, keep_history=False
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base = results[("iid", 1.0)].passes
    rows = []
    for (model, frac), report in sorted(
        results.items(), key=lambda kv: (-kv[0][1], kv[0][0])
    ):
        rows.append((
            f"{model}, {int(frac * 100)}% available",
            report.passes,
            f"x{report.passes / base:.2f}",
            report.total_messages,
            "yes" if report.converged else "NO",
        ))
    record_table(
        "Ablation churn sweep",
        format_table(
            ["availability model", "passes", "slowdown", "messages", "converged"],
            rows,
            title=f"Convergence vs availability ({size} nodes, eps={eps:g})",
        ),
    )

    # Every configuration converges.
    for report in results.values():
        assert report.converged
    # Slowdown grows monotonically as availability falls (iid family).
    iid = [results[("iid", f)].passes for f in fractions]
    assert all(a <= b for a, b in zip(iid, iid[1:]))
    # Even 30% availability stays within a constant factor (~13x
    # measured; the paper's 2x at 50% extends smoothly, no cliff).
    assert results[("iid", 0.3)].passes < 25 * base
    # Churn DECREASES total messages: stored updates coalesce to the
    # newest value while the receiver is away, an unadvertised benefit
    # of the section 3.1 protocol.
    assert (
        results[("iid", 0.5)].total_messages
        < results[("iid", 1.0)].total_messages
    )
    # The correlated model lands in the same cost band as iid at equal
    # stationary availability (within 3x either way).
    for frac in (0.75, 0.5):
        ratio = results[("markov", frac)].passes / results[("iid", frac)].passes
        assert 1 / 3 < ratio < 3.0, f"markov/iid ratio {ratio:.2f} at {frac}"
