"""Ablation: chaotic iteration vs centralized acceleration (paper §7).

The paper's related-work section conjectures that "the asynchronous
iteration may converge more rapidly than the acceleration methods
studied in [14]" (Kamvar et al.'s extrapolation).  This benchmark runs
the honest comparison on a §4.1 graph:

* plain synchronous power iteration (the R_c solver);
* Aitken Δ² extrapolation;
* Kamvar-style quadratic extrapolation;
* the chaotic distributed engine at matched solution quality.

Measured finding: on power-law web graphs the extrapolants do *not*
reduce sweep counts (the error spectrum carries several complex modes
of magnitude ≈ d, which single-real-mode extrapolation overcorrects),
while the chaotic engine reaches working accuracy in a comparable
number of passes with zero synchronization — supporting the paper's
conjecture.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import format_table
from repro.core import (
    ChaoticPagerank,
    aitken_pagerank,
    pagerank_reference,
    quadratic_extrapolation_pagerank,
)
from repro.graphs import broder_graph


def test_ablation_acceleration(benchmark, record_table):
    g = broder_graph(20_000, seed=BENCH_SEED)
    tol = 1e-10

    def run_all():
        truth = pagerank_reference(g, tol=1e-14)
        plain = pagerank_reference(g, tol=tol)
        aitken = aitken_pagerank(g, tol=tol)
        quad = quadratic_extrapolation_pagerank(g, tol=tol)
        chaotic = ChaoticPagerank(g, epsilon=1e-4).run(keep_history=False)
        return truth, plain, aitken, quad, chaotic

    truth, plain, aitken, quad, chaotic = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    def err(ranks):
        return float(np.max(np.abs(ranks - truth.ranks) / truth.ranks))

    rows = [
        ("plain power iteration", plain.iterations, f"{err(plain.ranks):.1e}", "global"),
        ("Aitken extrapolation", aitken.iterations, f"{err(aitken.ranks):.1e}", "global"),
        ("quadratic extrapolation [14]", quad.iterations, f"{err(quad.ranks):.1e}", "global"),
        ("chaotic distributed (eps=1e-4)", chaotic.passes, f"{err(chaotic.ranks):.1e}", "none"),
    ]
    record_table(
        "Ablation acceleration",
        format_table(
            ["method", "sweeps/passes", "max err vs truth", "synchronization"],
            rows,
            title="Centralized acceleration vs chaotic iteration (20k nodes)",
        ),
    )

    # All centralized methods hit the same fixed point.
    for result in (plain, aitken, quad):
        assert result.converged
        assert err(result.ranks) < 1e-6
    # Extrapolation does not beat plain iteration here (paper's
    # conjecture direction) — bound the regression loosely; the exact
    # slowdown depends on how often a failed extrapolation resets the
    # iterate history.
    assert aitken.iterations <= 2 * plain.iterations
    assert quad.iterations <= 3 * plain.iterations
    assert aitken.iterations >= 0.9 * plain.iterations  # no magic wins either
    # The chaotic engine reaches working accuracy in the same order of
    # passes with zero synchronization.
    assert chaotic.converged
    assert err(chaotic.ranks) < 1e-2
    assert chaotic.passes < 2 * plain.iterations
