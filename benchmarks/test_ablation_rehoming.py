"""Ablation: DHT re-homing under permanent peer departure (extension).

§3.1's store-and-resend assumes every absent peer eventually returns.
When one never does, the stored updates addressed to it can never
drain: the computation quiesces but cannot certify convergence, and
the dead peer's documents hold stale ranks forever.  The reproduction
adds the standard DHT fix — after N consecutive absent passes, a
peer's documents (with their state and in-link knowledge) migrate to
their ring successors — and this benchmark quantifies what it buys.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import format_table
from repro.core import pagerank_reference
from repro.graphs import broder_graph
from repro.p2p import DocumentPlacement, P2PNetwork
from repro.simulation import P2PPagerankSimulation


class OnePeerDead:
    def __init__(self, num_peers: int) -> None:
        self.num_peers = num_peers

    def sample(self, t):
        mask = np.ones(self.num_peers, dtype=bool)
        mask[0] = False
        return mask


def test_ablation_rehoming(benchmark, record_table):
    num_peers = 8
    g = broder_graph(600, seed=BENCH_SEED)
    pl = DocumentPlacement.random(g.num_nodes, num_peers, seed=BENCH_SEED + 1)
    ref = pagerank_reference(g).ranks

    def run_both():
        out = {}
        for label, kwargs in [
            ("no re-homing (paper section 3.1)", {}),
            ("re-homing after 3 absent passes", {"rehoming_after": 3}),
        ]:
            net = P2PNetwork(num_peers, pl)
            sim = P2PPagerankSimulation(g, net, epsilon=1e-4, **kwargs)
            report = sim.run(
                availability=OnePeerDead(num_peers), max_passes=1500
            )
            out[label] = (report, sim.traffic)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, (report, traffic) in results.items():
        rel = np.abs(report.ranks - ref) / ref
        rows.append((
            label,
            "yes" if report.converged else "NO",
            report.passes,
            traffic.migrations,
            f"{np.percentile(rel, 99):.1e}",
            f"{rel.max():.1e}",
        ))
    record_table(
        "Ablation rehoming",
        format_table(
            ["protocol", "converged", "passes", "migrations", "p99 err", "max err"],
            rows,
            title="One peer permanently dead (600 docs, 8 peers, eps=1e-4)",
        ),
    )

    plain, plain_traffic = results["no re-homing (paper section 3.1)"]
    fixed, fixed_traffic = results["re-homing after 3 absent passes"]
    # The paper's protocol cannot certify convergence...
    assert not plain.converged
    # ...and leaves the dead peer's documents badly stale.
    plain_rel = np.abs(plain.ranks - ref) / ref
    fixed_rel = np.abs(fixed.ranks - ref) / ref
    # Re-homing restores both convergence and accuracy.
    assert fixed.converged
    assert fixed_traffic.migrations > 0
    assert np.percentile(fixed_rel, 99) < 0.01
    assert float(plain_rel.max()) > 10 * float(fixed_rel.max())
