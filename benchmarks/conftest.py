"""Shared infrastructure for the benchmark harness.

Every ``benchmarks/test_table*.py`` module regenerates one table of the
paper: it runs the corresponding :mod:`repro.analysis.experiments`
driver once (timed via ``benchmark.pedantic`` so ``--benchmark-only``
reports the cost), asserts the paper's *shape* claims hold, and records
the rendered table.  All recorded tables are printed in the terminal
summary and written to ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` run
leaves the full reproduction output on disk.

Scale: graph sizes default to (10_000, 30_000); set ``REPRO_FULL_SCALE``
to run the paper's sizes (up to 5,000,000 nodes — budget hours).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Tuple

import pytest

from repro import obs

RESULTS_DIR = Path(__file__).parent / "results"

#: (title, rendered text) pairs accumulated across the session.
_RECORDED: List[Tuple[str, str]] = []

#: Benchmark-default graph sizes (kept modest so the whole harness
#: completes in minutes; REPRO_FULL_SCALE switches to paper sizes).
BENCH_SIZES: Tuple[int, ...] = (
    (10_000, 100_000, 500_000, 5_000_000)
    if os.environ.get("REPRO_FULL_SCALE")
    else (10_000, 30_000)
)

#: The paper's 500-peer population.
BENCH_PEERS = 500

#: Common seed for every benchmark.
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_sizes() -> Tuple[int, ...]:
    return BENCH_SIZES


@pytest.fixture(scope="session", autouse=True)
def _bench_metrics_registry():
    """Collect observability metrics for the whole benchmark session.

    Each recorded table's results file gets a sibling
    ``<name>.metrics.json`` snapshot (cumulative up to that table) so a
    benchmark run leaves the measured instrumentation — messages,
    passes, hops, bytes — on disk next to the rendered numbers.
    """
    with obs.use_registry() as reg:
        yield reg


@pytest.fixture()
def record_table():
    """Record a rendered table for the terminal summary and results
    dir, attaching the current metrics snapshot alongside."""

    def _record(name: str, text: str) -> None:
        _RECORDED.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        safe = name.lower().replace(" ", "_").replace("/", "-")
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")
        reg = obs.get_registry()
        if reg.enabled and len(reg):
            (RESULTS_DIR / f"{safe}.metrics.json").write_text(
                obs.snapshot_to_json(reg.snapshot()) + "\n"
            )

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RECORDED:
        return
    terminalreporter.section("reproduced paper tables")
    for name, text in _RECORDED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {name}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
