"""Ablation: asynchronous deployment hazards (extends paper §6).

The paper simulates batched synchronous passes; its future work is a
real asynchronous deployment.  Reproducing the protocol at message
granularity surfaced three design choices the paper's simulation could
not evaluate, each quantified here on the same workload:

1. **Update versioning** (the load-bearing one).  The paper's 24-byte
   message carries no ordering; under latency jitter an old update can
   arrive after — and permanently overwrite — a newer one.  Unversioned
   runs both corrupt the result (≈0.6-1.2 max relative error in our
   runs) and, in the fully literal mode, send an order of magnitude
   more messages as stale values keep re-perturbing the system.
2. **Receiver batching.**  Coalescing arrivals per document before
   recomputing (``batch_window``) saves a further constant factor over
   per-message recomputes.
3. **Publish gating.**  Gating sends on the last *published* value
   bounds consumer staleness by ε; the Figure-1-literal gate on the
   last computed rank admits unbounded sub-ε drift.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import pagerank_reference
from repro.graphs import broder_graph
from repro.p2p import DocumentPlacement, P2PNetwork
from repro.simulation import AsyncEventSimulation, ExponentialLatency


@pytest.fixture(scope="module")
def setting():
    g = broder_graph(400, seed=0)
    pl = DocumentPlacement.random(g.num_nodes, 10, seed=1)
    ref = pagerank_reference(g).ranks
    return g, pl, ref


def run_async(g, pl, **kwargs):
    net = P2PNetwork(pl.num_peers, pl, build_ring=False)
    kwargs.setdefault("latency", ExponentialLatency(1.0))
    sim = AsyncEventSimulation(g, net, **kwargs)
    return sim.run(max_events=2_000_000)


def max_err(report, ref):
    return float((np.abs(report.ranks - ref) / ref).max())


def test_ablation_versioning(benchmark, setting, record_table):
    g, pl, ref = setting
    eps = 1e-3

    def run_all():
        return {
            "versioned (library default)": run_async(
                g, pl, epsilon=eps, seed=2
            ),
            "unversioned, batched": run_async(
                g, pl, epsilon=eps, versioned_updates=False, seed=2
            ),
            "unversioned, fully literal": run_async(
                g, pl, epsilon=eps, versioned_updates=False,
                batch_window=0.0, publish_gate="rank", seed=2,
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (label, r.messages, f"{max_err(r, ref):.3f}",
         "yes" if r.quiesced else "budget hit")
        for label, r in results.items()
    ]
    record_table(
        "Ablation versioning",
        format_table(
            ["protocol", "messages", "max rel err", "quiesced"],
            rows,
            title=f"Unordered updates under latency jitter (eps={eps:g}, 400 docs)",
        ),
    )

    good = results["versioned (library default)"]
    stale = results["unversioned, batched"]
    blowup = results["unversioned, fully literal"]
    # Versioned runs are accurate.
    assert max_err(good, ref) < 0.05
    # Dropping versions corrupts the result even with batching...
    assert max_err(stale, ref) > 0.1
    # ...and in the literal mode also multiplies the traffic.
    assert (not blowup.quiesced) or blowup.messages > 5 * good.messages


def test_ablation_receiver_batching(benchmark, setting, record_table):
    g, pl, ref = setting
    eps = 1e-3

    def run_both():
        batched = run_async(g, pl, epsilon=eps, batch_window=0.5, seed=2)
        per_msg = run_async(g, pl, epsilon=eps, batch_window=0.0, seed=2)
        return batched, per_msg

    batched, per_msg = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ("batched (window=0.5)", batched.messages, batched.recomputes,
         "yes" if batched.quiesced else "budget hit"),
        ("per-message (window=0)", per_msg.messages, per_msg.recomputes,
         "yes" if per_msg.quiesced else "budget hit"),
    ]
    record_table(
        "Ablation async batching",
        format_table(
            ["mode", "messages", "recomputes", "quiesced"],
            rows,
            title=f"Receiver-side coalescing (eps={eps:g}, 400 docs, versioned)",
        ),
    )
    assert batched.quiesced and per_msg.quiesced
    # Batching strictly reduces both recomputes and messages.
    assert per_msg.recomputes > batched.recomputes
    assert per_msg.messages > batched.messages
    # Both are accurate — batching is a pure traffic optimisation.
    assert max_err(batched, ref) < 0.05
    assert max_err(per_msg, ref) < 0.05


def test_ablation_publish_gate(benchmark, setting, record_table):
    g, pl, ref = setting
    eps = 1e-4

    def run_both():
        robust = run_async(
            g, pl, epsilon=eps, publish_gate="published", seed=3
        )
        literal = run_async(
            g, pl, epsilon=eps, publish_gate="rank", seed=3
        )
        return robust, literal

    robust, literal = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ("gate on published value", f"{max_err(robust, ref):.2e}", robust.messages),
        ("gate on computed rank (Fig. 1)", f"{max_err(literal, ref):.2e}", literal.messages),
    ]
    record_table(
        "Ablation publish gate",
        format_table(
            ["gating rule", "max rel. error vs R_c", "messages"],
            rows,
            title=f"Send-gating rule under async interleaving (eps={eps:g})",
        ),
    )
    # The robust gate bounds the worst-case error near eps; the literal
    # gate's drift is unbounded in principle (usually mild in practice).
    assert max_err(robust, ref) < 50 * eps
