#!/usr/bin/env python
"""Standalone entry point for the benchmark harness.

Equivalent to ``python -m repro bench``; kept runnable directly from a
source checkout (``python benchmarks/harness.py [--smoke] [--compare]``)
without installing the package.  The implementation lives in
:mod:`repro.bench`; see docs/PERFORMANCE.md for usage and the JSON
schema.
"""

import argparse
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import configure_parser, main  # noqa: E402


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        prog="benchmarks/harness.py",
        description="Pinned pagerank performance benchmark matrix",
    )
    configure_parser(parser)
    sys.exit(main(parser.parse_args()))
