"""Regenerates paper Table 4: document-insert update propagation —
mean path length and node coverage vs. threshold.

Shape claims asserted (paper §4.7):
* path length grows slowly (roughly additively per decade of eps);
* node coverage grows rapidly (near-multiplicatively per decade) until
  it saturates against hub absorption / graph size;
* both are largely independent of graph size relative to their growth
  in eps (the scalability argument: inserting a document costs the
  same on a 10k and a 5000k network).
"""

import pytest

from benchmarks.conftest import BENCH_SEED
from repro.analysis import INSERT_THRESHOLDS, table4


def test_table4_insert_propagation(benchmark, bench_sizes, record_table):
    result = benchmark.pedantic(
        lambda: table4(
            bench_sizes,
            thresholds=INSERT_THRESHOLDS,
            samples=200,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("Table 4 inserts", result.render())

    for size in bench_sizes:
        paths = [result.path_length[(size, e)] for e in INSERT_THRESHOLDS]
        covs = [result.coverage[(size, e)] for e in INSERT_THRESHOLDS]

        # Monotone growth with tighter eps.
        assert all(a <= b + 1e-9 for a, b in zip(paths, paths[1:]))
        assert all(a <= b + 1e-9 for a, b in zip(covs, covs[1:]))

        # Path length stays short at loose thresholds (paper: 2-3).
        assert paths[0] < 8.0

        # Coverage at the loosest threshold is tiny (paper: 14-34).
        assert covs[0] < 100

        # Coverage grows much faster than path length.
        assert covs[-1] / max(covs[0], 1) > paths[-1] / max(paths[0], 1)

    # Size-independence: path length varies mildly across sizes.
    for eps in (1e-2, 1e-4):
        vals = [result.path_length[(s, eps)] for s in bench_sizes]
        assert max(vals) / max(min(vals), 1e-9) < 3.0
