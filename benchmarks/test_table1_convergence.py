"""Regenerates paper Table 1: convergence passes vs. graph size and
peer availability (100 % / 75 % / 50 %), 500 peers, eps = 1e-3.

Shape claims asserted (paper §4.3):
* convergence is "of the order of 100" passes and grows only slowly
  with graph size (the paper sees +60 % passes for 500x more nodes);
* with half the peers present the slowdown is bounded (the paper sees
  about 2x; we allow up to 4x at benchmark scale).
"""

import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import table1


def test_table1_convergence(benchmark, bench_sizes, record_table):
    result = benchmark.pedantic(
        lambda: table1(
            bench_sizes,
            num_peers=BENCH_PEERS,
            seed=BENCH_SEED,
            epsilon=1e-3,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("Table 1 convergence", result.render())

    smallest, largest = min(bench_sizes), max(bench_sizes)

    # Passes grow slowly with graph size.
    growth = result.passes[(largest, 1.0)] / result.passes[(smallest, 1.0)]
    assert growth < 2.5, f"passes grew {growth:.2f}x across sizes"

    # Churn slows but does not break convergence; bounded slowdown.
    for size in bench_sizes:
        full = result.passes[(size, 1.0)]
        threequarters = result.passes[(size, 0.75)]
        half = result.passes[(size, 0.5)]
        assert full < threequarters < half
        assert half / full < 6.0, (
            f"50% availability slowed {half / full:.1f}x at {size} nodes"
        )

    # Order-of-100 passes at eps=1e-3 (paper: 74-120 across its sizes).
    for size in bench_sizes:
        assert 10 < result.passes[(size, 1.0)] < 400
