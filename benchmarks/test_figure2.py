"""Regenerates paper Figure 2: the insert-increment propagation worked
example (G's unit rank propagating as 1/3 and 1/6 shares), as an exact
check plus a micro-benchmark of the propagation kernel.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import propagate_increment
from repro.graphs import broder_graph, figure2_graph


def test_figure2_exact_shares(benchmark, record_table):
    graph, idx = figure2_graph()
    result = benchmark.pedantic(
        lambda: propagate_increment(graph, idx["G"], 1.0, damping=1.0, epsilon=0.01),
        rounds=1,
        iterations=1,
    )

    names = {v: k for k, v in idx.items()}
    rows = [
        (names[i], f"{result.rank_delta[i]:.4f}")
        for i in range(graph.num_nodes)
        if result.rank_delta[i]
    ]
    record_table(
        "Figure 2 propagation",
        format_table(["Document", "Increment"], rows,
                     title="Figure 2: insert increments (d=1, eps=0.01)"),
    )

    assert result.rank_delta[idx["H"]] == pytest.approx(1 / 3)
    assert result.rank_delta[idx["I"]] == pytest.approx(1 / 3)
    assert result.rank_delta[idx["J"]] == pytest.approx(1 / 3)
    assert result.rank_delta[idx["K"]] == pytest.approx(1 / 6)
    assert result.rank_delta[idx["L"]] == pytest.approx(1 / 6)
    assert result.rank_delta[idx["M"]] == pytest.approx(1 / 3)


def test_propagation_kernel_speed(benchmark):
    """Micro-benchmark: one insert propagation on a 50k-node graph —
    the per-insert cost the §4.7 protocol pays at runtime."""
    graph = broder_graph(50_000, seed=0)
    rng = np.random.default_rng(1)
    nodes = iter(rng.integers(0, graph.num_nodes, size=10_000).tolist())

    benchmark(
        lambda: propagate_increment(graph, next(nodes), 1.0, epsilon=1e-4)
    )
