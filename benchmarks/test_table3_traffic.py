"""Regenerates paper Table 3: update-message traffic vs. threshold,
with the Eq. 4 execution-time estimates at 32 KB/s and 200 KB/s, plus
the §4.6.2 Internet-scale extrapolation.

Shape claims asserted (paper §4.5, §4.6):
* traffic grows roughly logarithmically with 1/eps — a 10,000x
  tighter threshold costs well under 10x the messages;
* messages per document are nearly independent of graph size (the
  paper's scalability argument);
* execution time scales inversely with the transfer rate.
"""

import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import PAPER_THRESHOLDS, format_table, table3
from repro.simulation import internet_scale_estimate


def test_table3_message_traffic(benchmark, bench_sizes, record_table):
    result = benchmark.pedantic(
        lambda: table3(
            bench_sizes,
            thresholds=PAPER_THRESHOLDS,
            num_peers=BENCH_PEERS,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    record_table("Table 3 traffic", result.render())

    largest = max(bench_sizes)

    # Logarithmic growth: eps from 1e-3 to 1e-7 (10^4 tighter) costs
    # less than a factor 10 in messages (the paper sees < 3x).
    lo = result.messages[(largest, 1e-3)][0]
    hi = result.messages[(largest, 1e-7)][0]
    assert hi / lo < 10.0, f"traffic grew {hi / lo:.1f}x for 1e4x tighter eps"

    # Monotone nondecreasing traffic with tighter eps.
    for size in bench_sizes:
        series = [result.messages[(size, e)][0] for e in PAPER_THRESHOLDS]
        assert all(a <= b for a, b in zip(series, series[1:]))

    # Per-document traffic roughly size-independent.
    for eps in (1e-3, 1e-5):
        per_node = [result.per_node(s, eps) for s in bench_sizes]
        assert max(per_node) / min(per_node) < 3.0

    # Execution time inversely proportional to rate.
    slow = result.exec_time_hours(largest, 1e-3, 32 * 1024)
    fast = result.exec_time_hours(largest, 1e-3, 200 * 1024)
    assert slow / fast == pytest.approx(200 / 32, rel=1e-6)

    # §4.6.2 extrapolation: 3e9 documents on T3 links lands in the
    # paper's days-not-years window.
    rows = []
    for eps in (1e-3, 1e-4):
        days = internet_scale_estimate(result.per_node(largest, eps))
        rows.append((f"{eps:g}", f"{result.per_node(largest, eps):.1f}", f"{days:.1f}"))
        assert 0.5 < days < 120.0
    record_table(
        "Table 3b internet scale",
        format_table(
            ["eps", "msgs/doc (measured)", "days for 3e9 docs @ T3"],
            rows,
            title="Web-server-scale estimate (paper section 4.6.2)",
        ),
    )
