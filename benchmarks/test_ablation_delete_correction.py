"""Ablation: the paper's delete protocol vs this library's corrected one.

Paper §3.1 deletes a document by sending its negated rank along its
out-links.  Removing the node from the link matrix, however, also
shrinks every in-neighbour's out-degree — their per-link contributions
grow — and the paper's protocol never corrects for that.  This
benchmark deletes a batch of documents under both protocols and
measures the residual error against a full recomputation, quantifying
a correctness gap this reproduction identified.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    delete_document,
    pagerank_reference,
    simulate_delete,
)
from repro.graphs import broder_graph


def test_ablation_delete_correction(benchmark, record_table):
    eps = 1e-6
    num_deletes = 10

    def run_both():
        rng = np.random.default_rng(1)
        # --- corrected protocol (this library) ---
        g1 = broder_graph(2_000, seed=0)
        r1 = pagerank_reference(g1).ranks
        victims = rng.choice(g1.num_nodes, size=num_deletes, replace=False)
        for step, victim in enumerate(sorted(victims.tolist(), reverse=True)):
            g1, r1, _ = delete_document(g1, victim, r1, epsilon=eps)
        ref1 = pagerank_reference(g1).ranks
        corrected = np.abs(r1 - ref1) / np.abs(ref1)

        # --- paper protocol: only the negative increment ---
        g2 = broder_graph(2_000, seed=0)
        r2 = pagerank_reference(g2).ranks
        for victim in sorted(victims.tolist(), reverse=True):
            prop = simulate_delete(g2, victim, r2, epsilon=eps)
            r2 = r2 + prop.rank_delta
            g2 = g2.with_node_removed(victim)
            r2 = np.delete(r2, victim)
        ref2 = pagerank_reference(g2).ranks
        paper = np.abs(r2 - ref2) / np.abs(ref2)
        return corrected, paper

    corrected, paper = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        ("corrected (degree adjustment)",
         f"{np.median(corrected):.2e}", f"{np.percentile(corrected, 95):.2e}",
         f"{corrected.max():.2e}"),
        ("paper section 3.1 (negative increment only)",
         f"{np.median(paper):.2e}", f"{np.percentile(paper, 95):.2e}",
         f"{paper.max():.2e}"),
    ]
    record_table(
        "Ablation delete correction",
        format_table(
            ["protocol", "median err", "p95 err", "max err"],
            rows,
            title=f"Residual error after {num_deletes} deletions vs full recompute",
        ),
    )

    # The corrected protocol tracks the recomputation tightly...
    assert np.percentile(corrected, 95) < 1e-3
    # ...and beats the paper's protocol by orders of magnitude.
    assert np.percentile(paper, 95) > 10 * np.percentile(corrected, 95)
