"""Regenerates paper Table 5: the summary of the distributed pagerank
evaluation, with every qualitative claim backed by a measured number
from this reproduction's Tables 1-4 runs.
"""

import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import table1, table2, table3, table4, table5


def test_table5_summary(benchmark, bench_sizes, record_table):
    def build():
        # Reduced threshold sets keep this summary benchmark cheap;
        # the dedicated table benchmarks sweep the full sets.  Graphs
        # and reference solutions are shared via the driver cache.
        t1 = table1(bench_sizes, num_peers=BENCH_PEERS, seed=BENCH_SEED)
        t2 = table2(
            bench_sizes, thresholds=(0.2, 1e-3, 1e-4), num_peers=BENCH_PEERS,
            seed=BENCH_SEED,
        )
        t3 = table3(
            bench_sizes, thresholds=(0.2, 1e-3, 1e-4), num_peers=BENCH_PEERS,
            seed=BENCH_SEED,
        )
        t4 = table4(
            bench_sizes, thresholds=(0.2, 1e-2, 1e-4), samples=100, seed=BENCH_SEED
        )
        return table5(t1, t2, t3, t4)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    record_table("Table 5 summary", result.render())

    text = result.render()
    assert "Convergence" in text
    assert "Pagerank quality" in text
    assert "Message traffic" in text
    assert "Execution time" in text
    assert "Insert/delete" in text
    assert len(result.rows) == 5
