"""Ablation: index-maintenance traffic (paper §2.4.2).

The paper adds a pagerank column to the distributed keyword index and
keeps it current with index-update messages "when the pagerank has
been computed for a node".  Under the incremental regime (§3.1), every
document insert perturbs some documents' ranks, and each perturbed
document must refresh its postings — one message per index peer that
holds a posting mentioning it.

This benchmark measures, per document insert: how many documents
change rank materially (the §4.7 node coverage), and how many index
messages the refresh costs, compared with the pagerank update traffic
itself.  The refresh threshold matters: updating the index for every
sub-ε wiggle would dwarf the pagerank traffic, so the experiment
sweeps it.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro._util.rng import spawn_generators
from repro.analysis import format_table
from repro.core import ChaoticPagerank, simulate_insert
from repro.p2p import DocumentPlacement
from repro.search import CorpusConfig, DistributedIndex, synthesize_corpus


def test_ablation_index_maintenance(benchmark, record_table):
    def run():
        rng_corpus, rng_place, rng_nodes = spawn_generators(BENCH_SEED, 3)
        cfg = CorpusConfig(num_documents=4_000, vocab_size=800,
                           num_stopwords=60, raw_vocab_size=8_000,
                           mean_terms_per_doc=400.0)
        corpus = synthesize_corpus(cfg, seed=rng_corpus)
        placement = DocumentPlacement.random(corpus.num_documents, 50, seed=rng_place)
        report = ChaoticPagerank(
            corpus.link_graph, placement.assignment, num_peers=50, epsilon=1e-4
        ).run(keep_history=False)
        index = DistributedIndex(corpus, report.ranks, 50)

        inserts = rng_nodes.choice(corpus.num_documents, size=30, replace=False)
        sweep = {}
        for refresh_threshold in (1e-2, 1e-3, 1e-4):
            pagerank_msgs = 0
            index_msgs = 0
            changed_total = 0
            for node in inserts:
                prop = simulate_insert(
                    corpus.link_graph, int(node), epsilon=1e-4,
                    base_ranks=report.ranks,
                )
                pagerank_msgs += prop.messages
                rel = np.abs(prop.rank_delta) / np.abs(report.ranks)
                changed = np.flatnonzero(rel > refresh_threshold)
                changed_total += changed.size
                index_msgs += index.maintenance_messages(changed)
            sweep[refresh_threshold] = (pagerank_msgs, changed_total, index_msgs)
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for thr, (pr_msgs, changed, idx_msgs) in sweep.items():
        rows.append((
            f"{thr:g}",
            pr_msgs // 30,
            changed // 30,
            idx_msgs // 30,
            f"{idx_msgs / max(pr_msgs, 1):.2f}",
        ))
    record_table(
        "Ablation index maintenance",
        format_table(
            ["refresh threshold", "pagerank msgs/insert",
             "docs refreshed/insert", "index msgs/insert",
             "index/pagerank ratio"],
            rows,
            title="Keeping the index's pagerank column current (30 inserts avg)",
        ),
    )

    # Tighter refresh thresholds touch more documents and cost more.
    counts = [sweep[t][2] for t in (1e-2, 1e-3, 1e-4)]
    assert counts[0] <= counts[1] <= counts[2]
    # At a sane refresh threshold (matching the rank-quality target),
    # index upkeep stays within a small multiple of pagerank traffic.
    pr, _, idx = sweep[1e-2]
    assert idx < 10 * max(pr, 1)
