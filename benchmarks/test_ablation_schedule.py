"""Ablation: progressive ε-tightening schedules (extension).

The paper runs every computation at one fixed ε.  Because the stop-
sending rule mutes documents individually, a coarse first stage lets
most of the graph fall silent cheaply, and a warm-started refinement
stage then only pays for the residual — an optimisation the incremental
machinery makes natural.  This benchmark sweeps schedules against the
direct single-ε run at matched final quality.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PEERS, BENCH_SEED
from repro.analysis import error_distribution, format_table, make_graph
from repro.analysis.experiments import _reference_ranks
from repro.core import ChaoticPagerank, scheduled_pagerank
from repro.p2p import DocumentPlacement


def test_ablation_epsilon_schedule(benchmark, record_table):
    size = 20_000
    target = 1e-5

    def run_all():
        graph = make_graph(size, BENCH_SEED)
        placement = DocumentPlacement.random(size, BENCH_PEERS, seed=BENCH_SEED + 1)
        ref = _reference_ranks(size, BENCH_SEED, 0.85)
        out = {}
        direct = ChaoticPagerank(
            graph, placement.assignment, num_peers=BENCH_PEERS, epsilon=target
        ).run(keep_history=False)
        out["direct 1e-5"] = direct
        for label, schedule in [
            ("2-stage 1e-2 -> 1e-5", (1e-2, 1e-5)),
            ("3-stage 1e-1 -> 1e-3 -> 1e-5", (1e-1, 1e-3, 1e-5)),
        ]:
            out[label] = scheduled_pagerank(
                graph,
                placement.assignment,
                num_peers=BENCH_PEERS,
                schedule=schedule,
            )
        return ref, out

    ref, results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, report in results.items():
        dist = error_distribution(report.ranks, ref)
        rows.append((
            label,
            report.passes,
            report.total_messages,
            f"{dist.percentile_errors[99.0]:.1e}",
        ))
    record_table(
        "Ablation epsilon schedule",
        format_table(
            ["strategy", "passes", "messages", "p99 err"],
            rows,
            title=f"Progressive tightening to eps={target:g} ({size} nodes)",
        ),
    )

    direct = results["direct 1e-5"]
    for label, report in results.items():
        assert report.converged, label
        # matched quality across strategies
        dist = error_distribution(report.ranks, ref)
        assert dist.percentile_errors[99.0] < 1e-3, label
    # Both schedules beat the direct run on traffic.
    for label in ("2-stage 1e-2 -> 1e-5", "3-stage 1e-1 -> 1e-3 -> 1e-5"):
        assert results[label].total_messages < direct.total_messages, label
