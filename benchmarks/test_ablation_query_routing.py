"""Ablation: query-term routing order (search extension).

The paper routes a multi-word query in the order its terms appear
(§2.4.3).  The classic IR optimisation — visit the *rarest* term's
index peer first — minimises every forwarded set, and it composes with
the paper's top-x% forwarding.  This benchmark quantifies the stacking
on the Table 6 corpus.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED
from repro._util.rng import spawn_generators
from repro.analysis import format_table
from repro.core import ChaoticPagerank
from repro.p2p import DocumentPlacement
from repro.search import (
    DistributedIndex,
    baseline_search,
    generate_queries,
    incremental_search,
    synthesize_corpus,
)


def test_ablation_query_routing(benchmark, record_table):
    def build_and_run():
        rng_corpus, rng_place, rng_queries = spawn_generators(BENCH_SEED, 3)
        corpus = synthesize_corpus(seed=rng_corpus)
        placement = DocumentPlacement.random(corpus.num_documents, 50, seed=rng_place)
        ranks = ChaoticPagerank(
            corpus.link_graph, placement.assignment, num_peers=50, epsilon=1e-4
        ).run(keep_history=False).ranks
        index = DistributedIndex(corpus, ranks, 50)
        queries = generate_queries(
            corpus, num_queries=20, terms_per_query=3,
            term_pool_size=500, seed=rng_queries,
        )
        totals = {}
        for label, kwargs in [
            ("baseline, query order", dict(fn=baseline_search)),
            ("baseline, rarest first", dict(fn=baseline_search, route_order="rarest_first")),
            ("top-10%, query order", dict(fn=incremental_search, fraction=0.1)),
            ("top-10%, rarest first",
             dict(fn=incremental_search, fraction=0.1, route_order="rarest_first")),
        ]:
            fn = kwargs.pop("fn")
            totals[label] = sum(
                fn(index, q, **kwargs).traffic_doc_ids for q in queries
            )
        return totals

    totals = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    base = totals["baseline, query order"]
    rows = [
        (label, traffic, f"{base / max(traffic, 1):.1f}x")
        for label, traffic in totals.items()
    ]
    record_table(
        "Ablation query routing",
        format_table(
            ["strategy", "doc-IDs moved", "reduction vs baseline"],
            rows,
            title="Routing order x top-x% forwarding (3-term queries, paper corpus)",
        ),
    )

    # Rarest-first never hurts the baseline.
    assert totals["baseline, rarest first"] <= base
    # The paper's top-x% is the bigger lever...
    assert totals["top-10%, query order"] < totals["baseline, rarest first"]
    # ...and the two compose.
    assert totals["top-10%, rarest first"] <= totals["top-10%, query order"]
