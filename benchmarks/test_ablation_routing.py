"""Ablation: §3.2 location caching vs Freenet-style routed delivery.

The paper argues caching document locations turns O(log P)-hop routed
deliveries into single-hop direct sends, at state linear in the peer's
out-links, while anonymity-preserving systems must route every update.
This benchmark runs the protocol-level simulator under both policies
on the same Chord ring and compares total hop traffic.
"""

import pytest

from repro.analysis import format_table
from repro.graphs import broder_graph
from repro.p2p import (
    CachedDirectDelivery,
    DocumentPlacement,
    FreenetDelivery,
    FreenetNetwork,
    P2PNetwork,
    RoutedDelivery,
)
from repro.simulation import P2PPagerankSimulation


def test_ablation_caching_vs_routing(benchmark, record_table):
    g = broder_graph(300, seed=0)
    pl = DocumentPlacement.random(g.num_nodes, 24, seed=1)

    def run_policy(make_policy):
        net = P2PNetwork(24, pl)
        policy = make_policy(net)
        sim = P2PPagerankSimulation(
            g, net, epsilon=1e-3, delivery_policy=policy
        )
        report = sim.run()
        return report, sim.traffic, policy

    def run_all():
        cached = run_policy(lambda net: CachedDirectDelivery(net.ring))
        routed = run_policy(lambda net: RoutedDelivery(net.ring))
        freenet = run_policy(
            lambda net: FreenetDelivery(FreenetNetwork(24, seed=7), seed=8)
        )
        return cached, routed, freenet

    cached, routed, freenet = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report_c, traffic_c, policy_c = cached
    report_r, traffic_r, policy_r = routed
    report_f, traffic_f, policy_f = freenet

    stats = policy_c.total_stats()
    rows = [
        ("cached direct (DHT, section 3.2)", traffic_c.update_messages,
         traffic_c.routing_hops,
         f"{traffic_c.routing_hops / max(traffic_c.update_messages, 1):.2f}"),
        ("DHT-routed every time", traffic_r.update_messages,
         traffic_r.routing_hops,
         f"{traffic_r.routing_hops / max(traffic_r.update_messages, 1):.2f}"),
        ("Freenet greedy key routing", traffic_f.update_messages,
         traffic_f.routing_hops,
         f"{traffic_f.routing_hops / max(traffic_f.update_messages, 1):.2f}"),
    ]
    record_table(
        "Ablation delivery policy",
        format_table(
            ["policy", "update msgs", "total hops", "hops/msg"],
            rows,
            title="Location caching vs per-message routing (24 peers)",
        ),
    )

    # Same message stream in every policy.
    assert traffic_c.update_messages == traffic_r.update_messages
    assert traffic_c.update_messages == traffic_f.update_messages
    # Caching converges to ~1 hop per message; routed modes pay the
    # path every time (§3.2's anonymity tax).
    assert traffic_c.routing_hops < traffic_r.routing_hops
    assert traffic_c.routing_hops < traffic_f.routing_hops
    assert traffic_r.routing_hops / traffic_r.update_messages > 1.2
    # Cache state is bounded by distinct (sender, target) pairs; hit
    # rate climbs towards 1 as the run proceeds.
    assert stats["hits"] > stats["misses"]
